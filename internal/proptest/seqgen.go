package proptest

import (
	"math/rand"

	"github.com/apdeepsense/apdeepsense/internal/conv"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/rnn"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// genHead draws a small dense head with a fixed input dimension (the pooled
// channel count of a conv stack), reusing the dense generator's activation
// and keep-probability coverage.
func genHead(rng *rand.Rand, inDim int) *nn.Network {
	depth := 1 + rng.Intn(3)
	hidden := make([]int, depth-1)
	for i := range hidden {
		hidden[i] = 1 + rng.Intn(12)
	}
	hiddenActs := []nn.Activation{nn.ActReLU, nn.ActLeakyReLU, nn.ActTanh, nn.ActSigmoid}
	outActs := []nn.Activation{nn.ActIdentity, nn.ActIdentity, nn.ActTanh, nn.ActSigmoid}
	keep := 0.5 + 0.5*rng.Float64()
	if rng.Intn(4) == 0 {
		keep = 1
	}
	net, err := nn.New(nn.Config{
		InputDim:         inDim,
		Hidden:           hidden,
		OutputDim:        1 + rng.Intn(6),
		Activation:       hiddenActs[rng.Intn(len(hiddenActs))],
		OutputActivation: outActs[rng.Intn(len(outActs))],
		KeepProb:         keep,
		Seed:             rng.Int63(),
	})
	if err != nil {
		panic("proptest: head generator produced invalid config: " + err.Error())
	}
	return net
}

// GenConvNet draws a random hybrid conv network — 1–3 conv layers with
// small channel counts, kernels 1–3, strides 1–4 (covering stride > kernel),
// the full activation set including leaky-ReLU, keep probabilities with the
// dropout-free corner, and occasional per-layer PWL overrides on rectifier
// layers — plus a dense head. Returns the net and a valid input step count.
func GenConvNet(rng *rand.Rand) (*conv.Net, int) {
	nLayers := 1 + rng.Intn(3)
	acts := []nn.Activation{nn.ActReLU, nn.ActLeakyReLU, nn.ActTanh, nn.ActSigmoid, nn.ActIdentity}
	ch := 1 + rng.Intn(4)
	convs := make([]*conv.Conv1D, nLayers)
	for i := range convs {
		outCh := 1 + rng.Intn(6)
		kernel := 1 + rng.Intn(3)
		stride := 1 + rng.Intn(4)
		keep := 0.5 + 0.5*rng.Float64()
		if rng.Intn(4) == 0 {
			keep = 1
		}
		l, err := conv.NewConv1D(kernel, ch, outCh, stride, acts[rng.Intn(len(acts))], keep, rng)
		if err != nil {
			panic("proptest: conv generator produced invalid config: " + err.Error())
		}
		if _, rect := l.Act.Rectifier(); rect && rng.Intn(4) == 0 {
			l.Moments = nn.MomentsPWL
		}
		convs[i] = l
		ch = outCh
	}
	net, err := conv.NewNet(convs, genHead(rng, ch))
	if err != nil {
		panic("proptest: conv net construction failed: " + err.Error())
	}
	// Minimum input length that yields at least one step everywhere, plus
	// slack.
	need := 1
	for i := nLayers - 1; i >= 0; i-- {
		need = convs[i].Kernel + (need-1)*convs[i].Stride
	}
	return net, need + rng.Intn(8)
}

// GenSeq draws an input sequence with the same corner-heavy value classes
// as GenInput.
func GenSeq(rng *rand.Rand, steps, channels int) *conv.Seq {
	s := conv.NewSeq(steps, channels)
	vals := GenInput(rng, len(s.Data))
	copy(s.Data, vals)
	return s
}

// GenSeqVectors draws a step-major vector sequence for the recurrent paths.
func GenSeqVectors(rng *rand.Rand, steps, dim int) []tensor.Vector {
	xs := make([]tensor.Vector, steps)
	for t := range xs {
		xs[t] = GenInput(rng, dim)
	}
	return xs
}

// GenCell draws a random Elman cell: small dims, tanh/rectifier/sigmoid
// recurrences, keep probabilities with the dropout-free corner, occasional
// PWL override on rectifier recurrences.
func GenCell(rng *rand.Rand) *rnn.Cell {
	acts := []nn.Activation{nn.ActTanh, nn.ActTanh, nn.ActReLU, nn.ActLeakyReLU, nn.ActSigmoid}
	keep := 0.5 + 0.5*rng.Float64()
	if rng.Intn(4) == 0 {
		keep = 1
	}
	c, err := rnn.NewCell(1+rng.Intn(5), 1+rng.Intn(10), 1+rng.Intn(4),
		acts[rng.Intn(len(acts))], keep, rng)
	if err != nil {
		panic("proptest: cell generator produced invalid config: " + err.Error())
	}
	if _, rect := c.Act.Rectifier(); rect && rng.Intn(4) == 0 {
		c.Moments = nn.MomentsPWL
	}
	return c
}

// GenGRU draws a random GRU with small dims.
func GenGRU(rng *rand.Rand) *rnn.GRU {
	keep := 0.5 + 0.5*rng.Float64()
	if rng.Intn(4) == 0 {
		keep = 1
	}
	g, err := rnn.NewGRU(1+rng.Intn(4), 1+rng.Intn(8), 1+rng.Intn(4), keep, rng)
	if err != nil {
		panic("proptest: gru generator produced invalid config: " + err.Error())
	}
	return g
}
