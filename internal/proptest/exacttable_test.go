package proptest

import (
	"math"
	"testing"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/piecewise"
	"github.com/apdeepsense/apdeepsense/internal/stats"
)

// asymMean is the asymptotic expansion of the rectified-Gaussian mean for
// deep negative standardization z = mu/sigma << 0:
//
//	E[max(0,X)] = sigma·phi(z)·(1/z²)·(1 − 3/z² + 15/z⁴ − 105/z⁶ + …)
//
// The truncation error after the 105/z⁶ term is ~945/z⁸ relative, which at
// |z| ≥ 9 is below 2.2e-5 — an independent ground truth precise enough to
// separate a correct tail from a total loss of the result.
func asymMean(mu, sigma float64) float64 {
	z := mu / sigma
	z2 := z * z
	phi := math.Exp(-z2/2) / math.Sqrt(2*math.Pi)
	return sigma * phi / z2 * (1 - 3/z2 + 15/(z2*z2) - 105/(z2*z2*z2))
}

// TestExactBeatsPWLDeepTail is the motivating table for the exact backend:
// at deep negative z the 2-piece PWL assembly computes the surviving
// probability mass via erf, which rounds to −1 below |z| ≈ 8.3 and returns
// a mean of exactly 0 — total relative error 1 — while the erfc-based
// closed form tracks the asymptotic series to ≤ 1e-4 relative. Both
// backends are evaluated through their real kernel entry points.
func TestExactBeatsPWLDeepTail(t *testing.T) {
	relu := piecewise.ReLU()
	pwl := core.NewActKernel(relu)
	exact, err := core.NewExactActKernel(relu)
	if err != nil {
		t.Fatal(err)
	}
	bounds := make([]stats.Boundary, pwl.NumBounds())
	pms := make([]stats.PartialMoments, pwl.NumBounds())

	for _, tc := range []struct {
		mu, sigma float64
	}{
		{-9, 1},
		{-10, 1},
		{-12, 1},
		{-20, 1},
		{-9e-3, 1e-3},
		{-1.1e6, 1e5},
	} {
		truth := asymMean(tc.mu, tc.sigma)
		exM, _ := exact.Moments(tc.mu, tc.sigma*tc.sigma, bounds, pms)
		pwM, _ := pwl.Moments(tc.mu, tc.sigma*tc.sigma, bounds, pms)

		exErr := math.Abs(exM-truth) / truth
		if exErr > 1e-4 {
			t.Errorf("mu=%v sigma=%v: exact mean %v vs series %v, rel err %v > 1e-4",
				tc.mu, tc.sigma, exM, truth, exErr)
		}
		pwErr := math.Abs(pwM-truth) / truth
		if pwErr < 0.5 {
			// If the PWL assembly ever resolves these tails the table is
			// stale and the exact backend's advantage must be re-argued.
			t.Errorf("mu=%v sigma=%v: PWL mean %v unexpectedly accurate (rel err %v)",
				tc.mu, tc.sigma, pwM, pwErr)
		}
	}
}

// TestExactMatchesPWLInterior: away from the tails the two backends agree
// to ~1e-12 relative — the exact backend is a strict conditioning upgrade,
// not a different function.
func TestExactMatchesPWLInterior(t *testing.T) {
	relu := piecewise.ReLU()
	pwl := core.NewActKernel(relu)
	exact, err := core.NewExactActKernel(relu)
	if err != nil {
		t.Fatal(err)
	}
	bounds := make([]stats.Boundary, pwl.NumBounds())
	pms := make([]stats.PartialMoments, pwl.NumBounds())
	for _, z := range []float64{-4, -2, -0.5, 0, 0.5, 2, 4} {
		for _, sigma := range []float64{1e-3, 1, 1e3} {
			mu := z * sigma
			exM, exV := exact.Moments(mu, sigma*sigma, bounds, pms)
			pwM, pwV := pwl.Moments(mu, sigma*sigma, bounds, pms)
			if d := math.Abs(exM - pwM); d > 1e-12*math.Max(sigma, math.Abs(exM)) {
				t.Errorf("z=%v sigma=%v: mean exact %v vs pwl %v", z, sigma, exM, pwM)
			}
			if d := math.Abs(exV - pwV); d > 1e-11*math.Max(sigma*sigma, exV) {
				t.Errorf("z=%v sigma=%v: var exact %v vs pwl %v", z, sigma, exV, pwV)
			}
		}
	}
}
