package proptest

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/apdeepsense/apdeepsense/internal/conv"
	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/mcdrop"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/rnn"
	"github.com/apdeepsense/apdeepsense/internal/stats"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// The MC conformance bounds mirror the PR 2 dense suite in
// internal/core/conformance_test.go: sampling error of the MC moments at
// k = 20000 plus the documented covariance-dropping / re-Gaussianization
// bias, scaled by the number of approximating stages.
const (
	mcK          = 20000
	mcZBound     = 4.0
	mcMeanFrac   = 0.15
	mcMeanAbs    = 0.02
	mcVarRelStep = 0.30
)

// mcCompare checks closed-form moments against an MC estimate under the
// shared tolerance model. stages is the number of moment-matching stages the
// variance bias compounds across (hidden dense layers, conv layers, RNN
// steps).
func mcCompare(t *testing.T, label string, got, mc core.GaussianVec, stages int) {
	t.Helper()
	for j := range got.Mean {
		mcStd := math.Sqrt(mc.Var[j])
		meanTol := mcZBound*mcStd/math.Sqrt(mcK) + mcMeanFrac*mcStd + mcMeanAbs
		if d := math.Abs(got.Mean[j] - mc.Mean[j]); d > meanTol {
			t.Errorf("%s out %d: mean %.6g vs MC %.6g (|Δ|=%.3g > tol %.3g)",
				label, j, got.Mean[j], mc.Mean[j], d, meanTol)
		}
		varTol := mcVarRelStep*float64(stages) + mcZBound*math.Sqrt(2/float64(mcK-1))
		if rel := math.Abs(got.Var[j]-mc.Var[j]) / mc.Var[j]; rel > varTol {
			t.Errorf("%s out %d: var %.6g vs MC %.6g (rel %.3g > tol %.3g)",
				label, j, got.Var[j], mc.Var[j], rel, varTol)
		}
	}
}

// TestMCConformanceExactDense pins the exact rectifier backend (forced, not
// just defaulted) against the MCDrop sampling estimator on dense ReLU and
// leaky-ReLU networks. keep = 1 collapses to a point mass at the
// deterministic forward pass — rectifiers are piecewise linear, so the mean
// must match to float precision and the variance must vanish.
func TestMCConformanceExactDense(t *testing.T) {
	var seed int64 = 900
	for _, act := range []nn.Activation{nn.ActReLU, nn.ActLeakyReLU} {
		for _, keep := range []float64{0.8, 1.0} {
			seed++
			name := fmt.Sprintf("%v/keep=%.1f", act, keep)
			t.Run(name, func(t *testing.T) {
				net, err := nn.New(nn.Config{
					InputDim: 4, Hidden: []int{32, 24}, OutputDim: 2,
					Activation: act, OutputActivation: nn.ActIdentity,
					KeepProb: keep, Seed: seed,
				})
				if err != nil {
					t.Fatal(err)
				}
				ap, err := core.NewApDeepSense(net, core.Options{ActivationMoments: nn.MomentsExact}, 0)
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(seed * 31))
				x := make(tensor.Vector, net.InputDim())
				for i := range x {
					x[i] = rng.NormFloat64()
				}
				got, err := ap.Predict(x)
				if err != nil {
					t.Fatal(err)
				}
				if keep == 1 {
					want, err := net.Forward(x)
					if err != nil {
						t.Fatal(err)
					}
					for j := range got.Mean {
						if d := math.Abs(got.Mean[j] - want[j]); d > 1e-9 {
							t.Errorf("out %d: mean %.6g vs forward %.6g", j, got.Mean[j], want[j])
						}
						if got.Var[j] > 1e-15 {
							t.Errorf("out %d: var %.3g, want 0 without dropout", j, got.Var[j])
						}
					}
					return
				}
				mc, err := mcdrop.New(net, mcK, 0, seed*17)
				if err != nil {
					t.Fatal(err)
				}
				want, err := mc.Predict(x)
				if err != nil {
					t.Fatal(err)
				}
				mcCompare(t, name, got, want, 2)
			})
		}
	}
}

// TestMCConformanceConv pins the conv moment recursion (exact rectifier
// backend on the conv layers) against a 20000-pass sampled forward of the
// same network. keep = 1 is the point-mass anchor.
func TestMCConformanceConv(t *testing.T) {
	for _, keep := range []float64{0.8, 1.0} {
		t.Run(fmt.Sprintf("keep=%.1f", keep), func(t *testing.T) {
			rng := rand.New(rand.NewSource(811))
			c1, err := conv.NewConv1D(3, 2, 12, 1, nn.ActReLU, keep, rng)
			if err != nil {
				t.Fatal(err)
			}
			c2, err := conv.NewConv1D(3, 12, 16, 2, nn.ActLeakyReLU, keep, rng)
			if err != nil {
				t.Fatal(err)
			}
			head, err := nn.New(nn.Config{
				InputDim: 16, Hidden: []int{24}, OutputDim: 2,
				Activation: nn.ActReLU, OutputActivation: nn.ActIdentity,
				KeepProb: keep, Seed: 813,
			})
			if err != nil {
				t.Fatal(err)
			}
			net, err := conv.NewNet([]*conv.Conv1D{c1, c2}, head)
			if err != nil {
				t.Fatal(err)
			}
			const steps = 16
			x := conv.NewSeq(steps, 2)
			for i := range x.Data {
				x.Data[i] = rng.NormFloat64()
			}
			got, err := net.PropagateMoments(x)
			if err != nil {
				t.Fatal(err)
			}
			if keep == 1 {
				want, err := net.Forward(x)
				if err != nil {
					t.Fatal(err)
				}
				for j := range got.Mean {
					if d := math.Abs(got.Mean[j] - want[j]); d > 1e-9 {
						t.Errorf("out %d: mean %.6g vs forward %.6g", j, got.Mean[j], want[j])
					}
					if got.Var[j] > 1e-15 {
						t.Errorf("out %d: var %.3g, want 0 without dropout", j, got.Var[j])
					}
				}
				return
			}
			acc := stats.NewVecWelford(len(got.Mean))
			mcRng := rand.New(rand.NewSource(821))
			for s := 0; s < mcK; s++ {
				y, err := net.ForwardSample(x, mcRng)
				if err != nil {
					t.Fatal(err)
				}
				acc.Add(y)
			}
			mc := core.GaussianVec{Mean: acc.Mean(), Var: acc.SampleVariance()}
			// 2 conv stages + 1 hidden dense stage.
			mcCompare(t, "conv", got, mc, 3)
		})
	}
}

// TestMCConformanceGRU pins the GRU gate/product moment recursion against a
// sampled forward. The per-step mask, gate moment matching, and the
// independence assumption in the elementwise products each contribute bias,
// so the variance allowance compounds over the sequence length.
func TestMCConformanceGRU(t *testing.T) {
	for _, keep := range []float64{0.85, 1.0} {
		t.Run(fmt.Sprintf("keep=%.2f", keep), func(t *testing.T) {
			rng := rand.New(rand.NewSource(831))
			g, err := rnn.NewGRU(3, 16, 2, keep, rng)
			if err != nil {
				t.Fatal(err)
			}
			const steps = 6
			xs := make([]tensor.Vector, steps)
			for ti := range xs {
				xs[ti] = make(tensor.Vector, 3)
				for i := range xs[ti] {
					xs[ti][i] = rng.NormFloat64()
				}
			}
			got, err := g.PropagateMoments(xs)
			if err != nil {
				t.Fatal(err)
			}
			if keep == 1 {
				want, err := g.Forward(xs)
				if err != nil {
					t.Fatal(err)
				}
				// The recurrence is tanh/sigmoid: with no dropout the state
				// is deterministic, but means go through the 7-piece PWL
				// fits, so the anchor is loose on the mean and exact on the
				// (zero) variance.
				for j := range got.Mean {
					if d := math.Abs(got.Mean[j] - want[j]); d > 0.1 {
						t.Errorf("out %d: mean %.6g vs forward %.6g", j, got.Mean[j], want[j])
					}
					if got.Var[j] > 1e-15 {
						t.Errorf("out %d: var %.3g, want 0 without dropout", j, got.Var[j])
					}
				}
				return
			}
			acc := stats.NewVecWelford(len(got.Mean))
			mcRng := rand.New(rand.NewSource(841))
			for s := 0; s < mcK; s++ {
				y, err := g.ForwardSample(xs, mcRng)
				if err != nil {
					t.Fatal(err)
				}
				acc.Add(y)
			}
			mc := core.GaussianVec{Mean: acc.Mean(), Var: acc.SampleVariance()}
			mcCompare(t, "gru", got, mc, steps)
		})
	}
}
