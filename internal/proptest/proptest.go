// Package proptest is the property-based differential test harness tying
// every fast inference path — per-sample Propagate, the blocked
// PropagateBatch, the WithWorkers fan-out, and the serving coalescer — to the
// numerical oracle in internal/oracle under explicit tolerance contracts.
//
// The harness rests on two facts the packages under test document:
//
//  1. The oracle's dense step reproduces the fast dense step's floating-point
//     semantics exactly (same formulas, same ascending accumulation order),
//     so a fast path and the oracle differ only through the activation
//     moments — closed erf/exp forms versus adaptive quadrature. That
//     difference is quadrature + rounding noise, orders of magnitude below
//     RelTight, for every activation and any finite input. This is what
//     makes a tight tolerance safe under fuzzing: there is no input that
//     legitimately widens the gap.
//
//  2. The batched, multi-worker, and coalesced paths are documented
//     bit-identical to the sequential path, so those comparisons use exact
//     equality (CompareBits), the strongest contract available.
//
// For tanh/sigmoid networks a third, model-level contract applies: the
// distance between a fast path and the exact-activation reference
// (oracle.Ref.ForwardTrue) must stay within the a-priori sup-norm budget
// oracle.Ref.ErrorBudget derives from the measured PWL fit errors.
package proptest

import (
	"fmt"
	"math"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/oracle"
)

// RelTight is the fast-path-versus-oracle relative agreement contract:
// mean and variance must match within 1e-9 relative to max(1, |oracle
// value|), plus the absolute conditioning budget the oracle derives for the
// specific input (oracle.CondBudget). The relative term covers quadrature
// and ascending-summation noise; the budget term covers the one legitimate
// scale-dependent divergence — the closed forms assemble variances from
// μ²-scale second moments and means from erf differences between knots, so
// at extreme interior moment scales they round away error proportional to
// those scales, which the oracle's centered, standardized formulation does
// not share. Splitting the contract this way keeps 1e-9 binding on every
// ordinary input while staying fuzz-safe on adversarial ones.
const RelTight = 1e-9

// RelKahan is the contract between the plain and Neumaier-compensated oracle
// passes. Their distance bounds how much of a fast-versus-oracle difference
// plain ascending summation could explain; it must stay far inside RelTight
// for the differential verdicts to be attributable to real kernel bugs.
const RelKahan = 1e-9

// Close reports whether got agrees with want within tol relative to
// max(1, |want|). NaN on either side never agrees with anything.
func Close(got, want, tol float64) bool {
	if math.IsNaN(got) || math.IsNaN(want) {
		return false
	}
	if got == want { // covers ±Inf agreeing with itself
		return true
	}
	return math.Abs(got-want) <= tol*math.Max(1, math.Abs(want))
}

// CompareVec checks got against want element-wise: each mean within
// rel·max(1, |want|) + cond.Mean, each variance within
// rel·max(1, want) + cond.Var. The first violation is reported with enough
// context (hex bits, relative error, the budget in force) to act on. Pass a
// zero CondBudget for a pure relative check.
func CompareVec(got, want core.GaussianVec, rel float64, cond oracle.CondBudget) error {
	if got.Dim() != want.Dim() {
		return fmt.Errorf("dim %d, want %d", got.Dim(), want.Dim())
	}
	for i := range want.Mean {
		if math.IsNaN(got.Mean[i]) || math.IsNaN(got.Var[i]) {
			return fmt.Errorf("element %d: got NaN (mean %v, var %v)", i, got.Mean[i], got.Var[i])
		}
		if d := math.Abs(got.Mean[i] - want.Mean[i]); !(d <= rel*math.Max(1, math.Abs(want.Mean[i]))+cond.Mean) {
			return fmt.Errorf("mean[%d] = %v (%#x), want %v (%#x): |Δ| = %.3g > %.3g·max(1,|want|) + %.3g",
				i, got.Mean[i], math.Float64bits(got.Mean[i]), want.Mean[i], math.Float64bits(want.Mean[i]),
				d, rel, cond.Mean)
		}
		if d := math.Abs(got.Var[i] - want.Var[i]); !(d <= rel*math.Max(1, want.Var[i])+cond.Var) {
			return fmt.Errorf("var[%d] = %v (%#x), want %v (%#x): |Δ| = %.3g > %.3g·max(1,|want|) + %.3g",
				i, got.Var[i], math.Float64bits(got.Var[i]), want.Var[i], math.Float64bits(want.Var[i]),
				d, rel, cond.Var)
		}
	}
	return nil
}

// CompareBits checks got against want for bit-for-bit equality — the
// contract between the sequential path and the batched/worker/coalesced
// paths. Distinguishes +0 from −0 and would flag NaN payload changes: any
// drift in bits means the paths no longer share floating-point semantics.
func CompareBits(got, want core.GaussianVec) error {
	if got.Dim() != want.Dim() {
		return fmt.Errorf("dim %d, want %d", got.Dim(), want.Dim())
	}
	for i := range want.Mean {
		if math.Float64bits(got.Mean[i]) != math.Float64bits(want.Mean[i]) {
			return fmt.Errorf("mean[%d] = %v (%#x), want bit-identical %v (%#x)",
				i, got.Mean[i], math.Float64bits(got.Mean[i]), want.Mean[i], math.Float64bits(want.Mean[i]))
		}
		if math.Float64bits(got.Var[i]) != math.Float64bits(want.Var[i]) {
			return fmt.Errorf("var[%d] = %v (%#x), want bit-identical %v (%#x)",
				i, got.Var[i], math.Float64bits(got.Var[i]), want.Var[i], math.Float64bits(want.Var[i]))
		}
	}
	return nil
}
