package proptest

import (
	"math"
	"math/rand"
	"testing"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/oracle"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// fuzzScale maps an arbitrary fuzzed float64 into the harness input domain
// [0, 1] (a multiplier on GenInput, whose own extreme class already reaches
// 1e6). Unbounded scales would push intermediate moments into overflow and
// the closed forms past any fixed tolerance — that is the documented domain
// boundary of the contract, not territory where disagreement means a bug.
func fuzzScale(raw float64) float64 {
	if math.IsNaN(raw) || math.IsInf(raw, 0) {
		return 1
	}
	return math.Abs(math.Mod(raw, 1))
}

// finite reports whether every moment in g is finite — the precondition for
// a tolerance comparison to be meaningful.
func finite(g core.GaussianVec) bool {
	for i := range g.Mean {
		if math.IsNaN(g.Mean[i]) || math.IsInf(g.Mean[i], 0) ||
			math.IsNaN(g.Var[i]) || math.IsInf(g.Var[i], 0) {
			return false
		}
	}
	return true
}

// FuzzPropagateVsOracle drives the per-sample fast path and the Gaussian-
// input path against the quadrature oracle on fuzzer-chosen random networks
// (bounded widths so the worst-case tolerance amplification through depth
// stays provably inside the contract for every reachable input — a fuzz
// target must never flake legitimately). Every crash or tolerance violation
// this finds is a real closed-form or kernel defect.
func FuzzPropagateVsOracle(f *testing.F) {
	f.Add(uint64(1), 1.0)
	f.Add(uint64(2), 0.0)
	f.Add(uint64(3), 0.5)
	f.Add(uint64(7), 1.0)
	f.Add(uint64(11), 0.25)
	f.Add(uint64(20260806), 1.0)
	f.Fuzz(func(t *testing.T, seed uint64, rawScale float64) {
		scale := fuzzScale(rawScale)
		rng := rand.New(rand.NewSource(int64(seed)))
		net := GenNetworkBounded(rng)
		prop, err := core.NewPropagator(net, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := oracle.NewRef(net, core.Options{}, false)
		if err != nil {
			t.Fatal(err)
		}

		x := GenInput(rng, net.InputDim())
		for i := range x {
			x[i] *= scale
		}
		got, err := prop.Propagate(x)
		if err != nil {
			t.Fatal(err)
		}
		want, cond, err := ref.ForwardCond(x)
		if err != nil {
			t.Fatal(err)
		}
		if !finite(want) {
			t.Skip("oracle output not finite: outside the comparison domain")
		}
		if err := CompareVec(got, want, RelTight, cond); err != nil {
			t.Errorf("seed %d scale %v: Propagate vs oracle: %v\nnet %s", seed, scale, err, net.Summary())
		}

		g := GenGaussian(rng, net.InputDim())
		gotFrom, err := prop.PropagateFrom(g.Clone())
		if err != nil {
			t.Fatal(err)
		}
		wantFrom, condFrom, err := ref.ForwardFromCond(g)
		if err != nil {
			t.Fatal(err)
		}
		if !finite(wantFrom) {
			t.Skip("oracle output not finite: outside the comparison domain")
		}
		if err := CompareVec(gotFrom, wantFrom, RelTight, condFrom); err != nil {
			t.Errorf("seed %d: PropagateFrom vs oracle: %v\nnet %s", seed, err, net.Summary())
		}
	})
}

// FuzzBatchVsSequential fuzzes the bit-identity contract: for any network,
// batch size, and worker count, every row of PropagateBatch must reproduce
// the sequential Propagate result bit for bit. No oracle pass is needed, so
// this target is cheap and explores shapes quickly.
func FuzzBatchVsSequential(f *testing.F) {
	f.Add(uint64(1), uint64(1), uint64(0))
	f.Add(uint64(2), uint64(7), uint64(1))
	f.Add(uint64(3), uint64(16), uint64(3))
	f.Add(uint64(5), uint64(4), uint64(4))
	f.Add(uint64(20260806), uint64(11), uint64(2))
	f.Fuzz(func(t *testing.T, seed, batchRaw, workersRaw uint64) {
		b := int(batchRaw%17) + 1
		workers := int(workersRaw % 5) // 0 selects the GOMAXPROCS default
		rng := rand.New(rand.NewSource(int64(seed)))
		net := GenNetworkBounded(rng)
		prop, err := core.NewPropagator(net, core.Options{}, core.WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		xs := make([]tensor.Vector, b)
		for k := range xs {
			xs[k] = GenInput(rng, net.InputDim())
		}
		gb, err := prop.PropagateBatch(xs)
		if err != nil {
			t.Fatal(err)
		}
		for k := range xs {
			seq, err := prop.Propagate(xs[k])
			if err != nil {
				t.Fatal(err)
			}
			if err := CompareBits(gb.Row(k), seq); err != nil {
				t.Errorf("seed %d batch %d workers %d row %d: %v\nnet %s", seed, b, workers, k, err, net.Summary())
			}
		}
	})
}
