package proptest

import (
	"math/rand"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// GenNetwork draws a random network from the full space the harness covers:
// depth 1–6 dense layers, widths 1–300 (biased toward small so one run
// exercises many shapes, with occasional wide layers hitting the blocked
// kernels' full tiles), hidden activations relu/tanh/sigmoid, output
// identity/tanh/sigmoid, keep probability in [0.5, 1] with both dropout-free
// and input-dropout corners. Construction cannot fail for generated
// configurations, so errors panic: they are generator bugs, not findings.
func GenNetwork(rng *rand.Rand) *nn.Network {
	return genNetwork(rng, 300, 6)
}

// GenNetworkBounded is GenNetwork capped at width ≤ 64. The fuzz targets use
// it so the worst-case error amplification through depth (the product of
// per-layer weight norms) stays provably below the RelTight contract for
// every reachable network — a fuzz target must never flake on a legitimate
// input. The uncapped generator is exercised by the deterministic property
// tests instead.
func GenNetworkBounded(rng *rand.Rand) *nn.Network {
	return genNetwork(rng, 64, 6)
}

func genNetwork(rng *rand.Rand, maxWidth, maxDepth int) *nn.Network {
	width := func() int {
		if rng.Intn(8) == 0 {
			return 1 + rng.Intn(maxWidth)
		}
		w := 1 + rng.Intn(32)
		if w > maxWidth {
			w = maxWidth
		}
		return w
	}
	depth := 1 + rng.Intn(maxDepth)
	hidden := make([]int, depth-1)
	for i := range hidden {
		hidden[i] = width()
	}
	hiddenActs := []nn.Activation{nn.ActReLU, nn.ActTanh, nn.ActSigmoid}
	outActs := []nn.Activation{nn.ActIdentity, nn.ActIdentity, nn.ActTanh, nn.ActSigmoid}
	keep := 0.5 + 0.5*rng.Float64()
	if rng.Intn(4) == 0 {
		keep = 1
	}
	net, err := nn.New(nn.Config{
		InputDim:         width(),
		Hidden:           hidden,
		OutputDim:        width(),
		Activation:       hiddenActs[rng.Intn(len(hiddenActs))],
		OutputActivation: outActs[rng.Intn(len(outActs))],
		KeepProb:         keep,
		DropInput:        rng.Intn(4) == 0,
		Seed:             rng.Int63(),
	})
	if err != nil {
		panic("proptest: generator produced invalid config: " + err.Error())
	}
	return net
}

// GenInput draws an input vector mixing moderate values with the corners the
// closed forms must survive: exact zeros (the kernels' zero-skip paths),
// huge |x| driving every activation deep into saturation (extreme
// standardized |z| in eqs. 23–25), and tiny magnitudes near the point-mass
// regime.
func GenInput(rng *rand.Rand, dim int) tensor.Vector {
	x := tensor.NewVector(dim)
	for i := range x {
		switch rng.Intn(8) {
		case 0:
			x[i] = 0
		case 1:
			x[i] = (rng.Float64()*2 - 1) * 1e6
		case 2:
			x[i] = (rng.Float64()*2 - 1) * 1e-9
		default:
			x[i] = rng.NormFloat64()
		}
	}
	return x
}

// GenGaussian draws an already-Gaussian input for the PropagateFrom paths,
// covering degenerate variances on both sides of the core.SigmaFloor
// point-mass cutoff (exact zero, far below the floor, just above it) and
// very wide distributions, alongside ordinary O(1) spreads.
func GenGaussian(rng *rand.Rand, dim int) core.GaussianVec {
	g := core.NewGaussianVec(dim)
	for i := 0; i < dim; i++ {
		switch rng.Intn(8) {
		case 0:
			g.Mean[i] = 0
		case 1:
			g.Mean[i] = (rng.Float64()*2 - 1) * 1e6
		default:
			g.Mean[i] = rng.NormFloat64()
		}
		switch rng.Intn(6) {
		case 0:
			g.Var[i] = 0
		case 1:
			g.Var[i] = 1e-30 // sigma 1e-15: below the point-mass floor
		case 2:
			g.Var[i] = 1e-18 // sigma 1e-9: just above it for O(1) means
		case 3:
			g.Var[i] = 1e8
		default:
			v := rng.NormFloat64()
			g.Var[i] = v * v
		}
	}
	return g
}
