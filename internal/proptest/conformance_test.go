package proptest

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/oracle"
	"github.com/apdeepsense/apdeepsense/internal/serve"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// conformanceTable pins the deterministic network shapes every path is
// checked on: each hidden activation, single-layer and deep stacks, a
// wide layer hitting full kernel tiles, dropout on and off (including input
// dropout), and non-identity output activations.
var conformanceTable = []struct {
	name string
	cfg  nn.Config
}{
	{"relu-deep", nn.Config{InputDim: 16, Hidden: []int{32, 24, 17, 9}, OutputDim: 8,
		Activation: nn.ActReLU, OutputActivation: nn.ActIdentity, KeepProb: 0.8, Seed: 11}},
	{"relu-single", nn.Config{InputDim: 5, OutputDim: 3,
		Activation: nn.ActReLU, OutputActivation: nn.ActIdentity, KeepProb: 1, Seed: 12}},
	{"tanh-mid", nn.Config{InputDim: 12, Hidden: []int{20, 20}, OutputDim: 6,
		Activation: nn.ActTanh, OutputActivation: nn.ActIdentity, KeepProb: 0.5, DropInput: true, Seed: 13}},
	{"tanh-out-sigmoid", nn.Config{InputDim: 7, Hidden: []int{13}, OutputDim: 4,
		Activation: nn.ActTanh, OutputActivation: nn.ActSigmoid, KeepProb: 0.9, Seed: 14}},
	{"sigmoid-wide", nn.Config{InputDim: 24, Hidden: []int{300}, OutputDim: 10,
		Activation: nn.ActSigmoid, OutputActivation: nn.ActIdentity, KeepProb: 0.7, Seed: 15}},
	{"sigmoid-nodrop", nn.Config{InputDim: 9, Hidden: []int{11, 11, 11}, OutputDim: 2,
		Activation: nn.ActSigmoid, OutputActivation: nn.ActTanh, KeepProb: 1, Seed: 16}},
}

type fixture struct {
	net    *nn.Network
	prop   *core.Propagator
	ref    *oracle.Ref
	inputs []tensor.Vector
	wants  []core.GaussianVec  // oracle Forward per input
	conds  []oracle.CondBudget // conditioning budget per input
}

func buildFixture(t *testing.T, cfg nn.Config) *fixture {
	t.Helper()
	net, err := nn.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prop, err := core.NewPropagator(net, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := oracle.NewRef(net, core.Options{}, false)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(cfg.Seed * 7919))
	fx := &fixture{net: net, prop: prop, ref: ref}
	for k := 0; k < 5; k++ {
		x := GenInput(rng, net.InputDim())
		want, cond, err := ref.ForwardCond(x)
		if err != nil {
			t.Fatal(err)
		}
		fx.inputs = append(fx.inputs, x)
		fx.wants = append(fx.wants, want)
		fx.conds = append(fx.conds, cond)
	}
	return fx
}

// TestPropagateVsOracle is the central differential check: the per-sample
// fast path agrees with the quadrature oracle within RelTight on every table
// entry, and the estimator's Predict (obsVar = 0) adds nothing on top.
func TestPropagateVsOracle(t *testing.T) {
	for _, tc := range conformanceTable {
		t.Run(tc.name, func(t *testing.T) {
			fx := buildFixture(t, tc.cfg)
			for k, x := range fx.inputs {
				got, err := fx.prop.Propagate(x)
				if err != nil {
					t.Fatal(err)
				}
				if err := CompareVec(got, fx.wants[k], RelTight, fx.conds[k]); err != nil {
					t.Errorf("input %d: Propagate vs oracle: %v", k, err)
				}
			}
		})
	}
}

// TestBatchVsOracleAndSequential checks the blocked batch path both ways:
// bit-identical to the sequential path (its documented contract) and within
// RelTight of the oracle (implied, but checked directly so a joint drift of
// both fast paths cannot hide).
func TestBatchVsOracleAndSequential(t *testing.T) {
	for _, tc := range conformanceTable {
		t.Run(tc.name, func(t *testing.T) {
			fx := buildFixture(t, tc.cfg)
			gb, err := fx.prop.PropagateBatch(fx.inputs)
			if err != nil {
				t.Fatal(err)
			}
			for k := range fx.inputs {
				seq, err := fx.prop.Propagate(fx.inputs[k])
				if err != nil {
					t.Fatal(err)
				}
				if err := CompareBits(gb.Row(k), seq); err != nil {
					t.Errorf("row %d: batch vs sequential: %v", k, err)
				}
				if err := CompareVec(gb.Row(k), fx.wants[k], RelTight, fx.conds[k]); err != nil {
					t.Errorf("row %d: batch vs oracle: %v", k, err)
				}
			}
		})
	}
}

// TestWorkersBitIdentical checks that the worker fan-out never changes bits:
// forced single-threaded, a worker pool, and more workers than rows all
// reproduce the default batch result exactly.
func TestWorkersBitIdentical(t *testing.T) {
	for _, tc := range conformanceTable {
		t.Run(tc.name, func(t *testing.T) {
			fx := buildFixture(t, tc.cfg)
			base, err := fx.prop.PropagateBatch(fx.inputs)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 3, 64} {
				pw, err := core.NewPropagator(fx.net, core.Options{}, core.WithWorkers(workers))
				if err != nil {
					t.Fatal(err)
				}
				gb, err := pw.PropagateBatch(fx.inputs)
				if err != nil {
					t.Fatal(err)
				}
				for k := range fx.inputs {
					if err := CompareBits(gb.Row(k), base.Row(k)); err != nil {
						t.Errorf("workers=%d row %d: %v", workers, k, err)
					}
				}
			}
		})
	}
}

// TestCoalescerVsOracle drives concurrent single requests through the
// serving coalescer (small MaxBatch so requests genuinely coalesce into
// shared flushes) and checks every response bit-identical to a direct
// Predict call and within RelTight of the oracle.
func TestCoalescerVsOracle(t *testing.T) {
	for _, tc := range conformanceTable {
		t.Run(tc.name, func(t *testing.T) {
			fx := buildFixture(t, tc.cfg)
			est, err := core.NewApDeepSense(fx.net, core.Options{}, 0)
			if err != nil {
				t.Fatal(err)
			}
			col, err := serve.NewPredict(est, serve.Config{MaxBatch: 2, MaxWait: time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			defer col.Close(context.Background())

			got := make([]core.GaussianVec, len(fx.inputs))
			errs := make([]error, len(fx.inputs))
			var wg sync.WaitGroup
			for k := range fx.inputs {
				wg.Add(1)
				go func(k int) {
					defer wg.Done()
					got[k], errs[k] = col.Do(context.Background(), fx.inputs[k])
				}(k)
			}
			wg.Wait()
			for k := range fx.inputs {
				if errs[k] != nil {
					t.Fatal(errs[k])
				}
				direct, err := est.Predict(fx.inputs[k])
				if err != nil {
					t.Fatal(err)
				}
				if err := CompareBits(got[k], direct); err != nil {
					t.Errorf("request %d: coalescer vs direct Predict: %v", k, err)
				}
				if err := CompareVec(got[k], fx.wants[k], RelTight, fx.conds[k]); err != nil {
					t.Errorf("request %d: coalescer vs oracle: %v", k, err)
				}
			}
		})
	}
}

// TestGaussianInputsVsOracle covers the PropagateFrom path on a fixed grid
// of degenerate and extreme input distributions — exact point masses,
// variances below and just above the SigmaFloor cutoff, and very wide
// spreads — plus random Gaussian inputs from the generator.
func TestGaussianInputsVsOracle(t *testing.T) {
	for _, tc := range conformanceTable {
		t.Run(tc.name, func(t *testing.T) {
			fx := buildFixture(t, tc.cfg)
			dim := fx.net.InputDim()
			var cases []core.GaussianVec
			for _, v := range []float64{0, 1e-30, 1e-18, 1, 1e8} {
				for _, mu := range []float64{0, -3, 1e6} {
					g := core.NewGaussianVec(dim)
					for i := 0; i < dim; i++ {
						g.Mean[i] = mu
						g.Var[i] = v
					}
					cases = append(cases, g)
				}
			}
			rng := rand.New(rand.NewSource(tc.cfg.Seed * 104729))
			for k := 0; k < 4; k++ {
				cases = append(cases, GenGaussian(rng, dim))
			}
			for k, g := range cases {
				got, err := fx.prop.PropagateFrom(g.Clone())
				if err != nil {
					t.Fatal(err)
				}
				want, cond, err := fx.ref.ForwardFromCond(g)
				if err != nil {
					t.Fatal(err)
				}
				if err := CompareVec(got, want, RelTight, cond); err != nil {
					t.Errorf("case %d: PropagateFrom vs oracle: %v", k, err)
				}
			}
		})
	}
}

// TestModelErrorWithinBudget is the second-tier contract: for bounded-hidden
// (tanh/sigmoid) networks, the distance between the fast path and the
// exact-activation reference must stay within the a-priori error budget
// derived from the measured PWL sup-norm fit errors — plus RelTight slack
// for the quadrature itself.
func TestModelErrorWithinBudget(t *testing.T) {
	for _, tc := range conformanceTable {
		if tc.cfg.Activation == nn.ActReLU {
			continue // exactly PWL: tier one already demands 1e-9 agreement
		}
		t.Run(tc.name, func(t *testing.T) {
			fx := buildFixture(t, tc.cfg)
			budget, err := fx.ref.ErrorBudget()
			if err != nil {
				t.Fatal(err)
			}
			if budget.Mean <= 0 || budget.Var <= 0 {
				t.Fatalf("degenerate budget %+v", budget)
			}
			for k, x := range fx.inputs {
				got, err := fx.prop.Propagate(x)
				if err != nil {
					t.Fatal(err)
				}
				exact, err := fx.ref.ForwardTrue(x)
				if err != nil {
					t.Fatal(err)
				}
				for i := range exact.Mean {
					slack := RelTight * math.Max(1, math.Abs(exact.Mean[i]))
					if d := math.Abs(got.Mean[i] - exact.Mean[i]); d > budget.Mean+slack {
						t.Errorf("input %d mean[%d]: |fast−true| = %v exceeds budget %v", k, i, d, budget.Mean)
					}
					slack = RelTight * math.Max(1, exact.Var[i])
					if d := math.Abs(got.Var[i] - exact.Var[i]); d > budget.Var+slack {
						t.Errorf("input %d var[%d]: |fast−true| = %v exceeds budget %v", k, i, d, budget.Var)
					}
				}
			}
		})
	}
}

// TestKahanConsistency bounds how much plain ascending summation can move
// the oracle: the compensated and uncompensated reference passes must agree
// within RelKahan, keeping rounding noise far inside the differential
// contract so disagreements point at kernels, not at summation order.
func TestKahanConsistency(t *testing.T) {
	for _, tc := range conformanceTable {
		t.Run(tc.name, func(t *testing.T) {
			fx := buildFixture(t, tc.cfg)
			kahan, err := oracle.NewRef(fx.net, core.Options{}, true)
			if err != nil {
				t.Fatal(err)
			}
			for k, x := range fx.inputs {
				want, cond, err := kahan.ForwardCond(x)
				if err != nil {
					t.Fatal(err)
				}
				if err := CompareVec(fx.wants[k], want, RelKahan, cond); err != nil {
					t.Errorf("input %d: plain vs Kahan oracle: %v", k, err)
				}
			}
		})
	}
}

// TestRandomNetworksVsOracle is the deterministic property sweep over the
// full generator space (depth 1–6, widths up to 300, all activations,
// dropout corners): every drawn network must satisfy the RelTight contract
// on Propagate and the bit-identity contract on PropagateBatch.
func TestRandomNetworksVsOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("random-network sweep skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(20260806))
	for n := 0; n < 20; n++ {
		net := GenNetwork(rng)
		prop, err := core.NewPropagator(net, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := oracle.NewRef(net, core.Options{}, false)
		if err != nil {
			t.Fatal(err)
		}
		xs := []tensor.Vector{GenInput(rng, net.InputDim()), GenInput(rng, net.InputDim())}
		gb, err := prop.PropagateBatch(xs)
		if err != nil {
			t.Fatal(err)
		}
		for k, x := range xs {
			got, err := prop.Propagate(x)
			if err != nil {
				t.Fatal(err)
			}
			want, cond, err := ref.ForwardCond(x)
			if err != nil {
				t.Fatal(err)
			}
			if err := CompareVec(got, want, RelTight, cond); err != nil {
				t.Errorf("net %d input %d: %s: Propagate vs oracle: %v", n, k, net.Summary(), err)
			}
			if err := CompareBits(gb.Row(k), got); err != nil {
				t.Errorf("net %d input %d: %s: batch vs sequential: %v", n, k, net.Summary(), err)
			}
		}
	}
}
