package proptest

import (
	"math/rand"
	"testing"

	"github.com/apdeepsense/apdeepsense/internal/conv"
	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/oracle"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// TestConvVsOracle holds the conv fast path — strided Conv1D moment
// recursion, global average pooling, dense head, with per-layer exact/PWL
// backends mixed in by the generator — to the naive sequence oracle within
// RelTight plus the a-priori conditioning budget. No hand-tuned epsilons.
func TestConvVsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for iter := 0; iter < 120; iter++ {
		net, steps := GenConvNet(rng)
		ref, err := oracle.NewConvRef(net, core.Options{})
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		x := GenSeq(rng, steps, net.Convs()[0].InCh)
		got, err := net.PropagateMoments(x)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		want, cond, err := ref.ForwardCond(x)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if !finite(want) {
			continue
		}
		if err := CompareVec(got, want, RelTight, cond); err != nil {
			t.Errorf("iter %d (steps=%d): %v", iter, steps, err)
		}
	}
}

// TestConvBatchBitIdentical pins the batched conv entry point against
// per-sample propagation bit-for-bit across generated nets.
func TestConvBatchBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for iter := 0; iter < 40; iter++ {
		net, steps := GenConvNet(rng)
		xs := make([]*conv.Seq, 3)
		for i := range xs {
			xs[i] = GenSeq(rng, steps, net.Convs()[0].InCh)
		}
		batch, err := net.PropagateBatch(xs)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		for i, x := range xs {
			want, err := net.PropagateMoments(x)
			if err != nil {
				t.Fatalf("iter %d: %v", iter, err)
			}
			if err := CompareBits(batch[i], want); err != nil {
				t.Errorf("iter %d sample %d: %v", iter, i, err)
			}
		}
	}
}

// TestRNNVsOracle holds the Elman-cell moment recursion (exact rectifier
// and PWL recurrences, dropout corners including keep=1) to the step-mirrored
// oracle within RelTight plus the recursive conditioning budget.
func TestRNNVsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	for iter := 0; iter < 120; iter++ {
		c := GenCell(rng)
		ref, err := oracle.NewRNNRef(c, core.Options{})
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		steps := 1 + rng.Intn(10)
		xs := GenSeqVectors(rng, steps, c.InDim)
		got, err := c.PropagateMoments(xs)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		want, cond, err := ref.ForwardCond(xs)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if !finite(want) {
			continue
		}
		if err := CompareVec(got, want, RelTight, cond); err != nil {
			t.Errorf("iter %d (steps=%d act=%v): %v", iter, steps, c.Act, err)
		}
	}
}

// TestGRUVsOracle holds the GRU gate/candidate/product moment recursion to
// its mirrored oracle, with the product error bound carried exactly through
// the gate coupling.
func TestGRUVsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	for iter := 0; iter < 120; iter++ {
		g := GenGRU(rng)
		ref, err := oracle.NewGRURef(g, core.Options{})
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		steps := 1 + rng.Intn(8)
		xs := GenSeqVectors(rng, steps, g.InDim)
		got, err := g.PropagateMoments(xs)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		want, cond, err := ref.ForwardCond(xs)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if !finite(want) {
			continue
		}
		if err := CompareVec(got, want, RelTight, cond); err != nil {
			t.Errorf("iter %d (steps=%d): %v", iter, steps, err)
		}
	}
}

// TestRNNBatchBitIdentical pins the batched recurrent entry points against
// sequential propagation bit-for-bit across generated cells and GRUs.
func TestRNNBatchBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	for iter := 0; iter < 30; iter++ {
		c := GenCell(rng)
		cellSeqs := make([][]tensor.Vector, 2+rng.Intn(3))
		for s := range cellSeqs {
			cellSeqs[s] = GenSeqVectors(rng, 1+rng.Intn(7), c.InDim)
		}
		batch, err := c.PropagateMomentsBatch(cellSeqs)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		for s, xs := range cellSeqs {
			want, err := c.PropagateMoments(xs)
			if err != nil {
				t.Fatalf("iter %d: %v", iter, err)
			}
			if err := CompareBits(batch[s], want); err != nil {
				t.Errorf("iter %d cell sample %d: %v", iter, s, err)
			}
		}

		g := GenGRU(rng)
		gruSeqs := make([][]tensor.Vector, 2+rng.Intn(3))
		for s := range gruSeqs {
			gruSeqs[s] = GenSeqVectors(rng, 1+rng.Intn(6), g.InDim)
		}
		gbatch, err := g.PropagateMomentsBatch(gruSeqs)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		for s, xs := range gruSeqs {
			want, err := g.PropagateMoments(xs)
			if err != nil {
				t.Fatalf("iter %d: %v", iter, err)
			}
			if err := CompareBits(gbatch[s], want); err != nil {
				t.Errorf("iter %d gru sample %d: %v", iter, s, err)
			}
		}
	}
}
