package proptest

import (
	"math"
	"math/rand"
	"testing"

	"github.com/apdeepsense/apdeepsense/internal/compile"
	"github.com/apdeepsense/apdeepsense/internal/core"
)

// compiledProp builds a propagator with a warmed compiled program installed,
// the way registry does it for serving pools.
func compiledProp(t testing.TB, seed int64, maxBatch, workers int) (*core.Propagator, int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	net := GenNetworkBounded(rng)
	opts := []core.Option{}
	if workers > 0 {
		opts = append(opts, core.WithWorkers(workers))
	}
	p, err := core.NewPropagator(net, core.Options{}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := compile.Compile(p, maxBatch)
	if err != nil {
		t.Fatal(err)
	}
	if err := pg.Warm(p); err != nil {
		t.Fatal(err)
	}
	p.SetCompiled(pg)
	return p, net.InputDim()
}

// compiledBatch fills a batch with the generator's corner-heavy Gaussians and
// sprinkles hostile moments (NaN, ±Inf, exact zeros) into some rows so the
// comparison exercises the zero-skip and non-finite propagation paths.
func compiledBatch(rng *rand.Rand, b, dim int) core.GaussianBatch {
	in := core.NewGaussianBatch(b, dim)
	hostile := []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0}
	for r := 0; r < b; r++ {
		g := GenGaussian(rng, dim)
		copy(in.Mean.Row(r), g.Mean)
		copy(in.Var.Row(r), g.Var)
		if r%3 == 0 {
			in.Mean.Row(r)[rng.Intn(dim)] = hostile[rng.Intn(len(hostile))]
		}
		if r%4 == 0 {
			in.Var.Row(r)[rng.Intn(dim)] = hostile[rng.Intn(3)]
		}
	}
	return in
}

// compareBatchBits holds the compiled path to the interpreted reference bit
// for bit, row by row, using the same CompareBits contract as the
// batch-versus-sequential gate.
func compareBatchBits(t *testing.T, p *core.Propagator, in core.GaussianBatch, ctx string) {
	t.Helper()
	got, err := p.PropagateBatchFrom(in)
	if err != nil {
		t.Fatalf("%s: compiled: %v", ctx, err)
	}
	want, err := p.PropagateBatchReference(in)
	if err != nil {
		t.Fatalf("%s: reference: %v", ctx, err)
	}
	for r := 0; r < in.Batch(); r++ {
		if err := CompareBits(got.Row(r), want.Row(r)); err != nil {
			t.Errorf("%s: row %d: %v", ctx, r, err)
		}
	}
}

// TestCompiledVsInterpreted is the deterministic half of the compiled-path
// gate at the harness level: random bounded networks, varied worker counts
// and batch sizes, corner-heavy inputs with hostile rows — the compiled
// propagator must reproduce the interpreted one bit for bit everywhere.
func TestCompiledVsInterpreted(t *testing.T) {
	trials := 20
	if testing.Short() {
		trials = 5
	}
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < trials; trial++ {
		maxBatch := 1 + rng.Intn(32)
		workers := rng.Intn(5)
		p, dim := compiledProp(t, int64(1000+trial), maxBatch, workers)
		for _, b := range []int{1, (maxBatch + 1) / 2, maxBatch} {
			in := compiledBatch(rng, b, dim)
			compareBatchBits(t, p, in, "deterministic")
		}
	}
}

// FuzzCompiledVsInterpreted extends the gate to fuzzer-chosen networks,
// batch sizes, worker counts, and compile-time max batches. Like
// FuzzBatchVsSequential it needs no oracle pass, so it explores shapes
// quickly; any violation is a real compile-step defect, never tolerance
// flake.
func FuzzCompiledVsInterpreted(f *testing.F) {
	f.Add(uint64(1), uint64(1), uint64(0), uint64(1))
	f.Add(uint64(2), uint64(7), uint64(1), uint64(8))
	f.Add(uint64(3), uint64(16), uint64(3), uint64(16))
	f.Add(uint64(5), uint64(4), uint64(2), uint64(64))
	f.Add(uint64(20260808), uint64(11), uint64(4), uint64(32))
	f.Fuzz(func(t *testing.T, seed, batchRaw, workersRaw, maxBatchRaw uint64) {
		maxBatch := int(maxBatchRaw%64) + 1
		b := int(batchRaw%uint64(maxBatch)) + 1
		workers := int(workersRaw % 5)
		p, dim := compiledProp(t, int64(seed), maxBatch, workers)
		rng := rand.New(rand.NewSource(int64(seed) ^ 0x5a5a))
		in := compiledBatch(rng, b, dim)
		compareBatchBits(t, p, in, "fuzz")
	})
}
