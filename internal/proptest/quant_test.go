package proptest

import (
	"math"
	"math/rand"
	"testing"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/oracle"
	"github.com/apdeepsense/apdeepsense/internal/qprop"
	"github.com/apdeepsense/apdeepsense/internal/quantize"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// quantFixture quantizes net and builds both the fixed-point propagator and
// the oracle for it.
func quantFixture(t *testing.T, net *nn.Network, extra ...qprop.Option) (*qprop.Propagator, *quantize.Model, *oracle.Ref) {
	t.Helper()
	m, err := quantize.Quantize(net)
	if err != nil {
		t.Fatal(err)
	}
	qp, err := qprop.New(m, core.Options{}, extra...)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := oracle.NewRef(net, core.Options{}, false)
	if err != nil {
		t.Fatal(err)
	}
	return qp, m, ref
}

// asCond adapts the total quantization budget to CompareVec's budget slot.
// QuantBudget already includes the conditioning allowance (see
// oracle.QuantBudget), so it is used alone, never summed with CondBudget.
func asCond(qb oracle.QuantBudget) oracle.CondBudget {
	return oracle.CondBudget{Mean: qb.Mean, Var: qb.Var}
}

// budgetFinite reports whether the budget is usable as a tolerance: an
// overflowed (Inf/NaN) budget marks the input as outside the fixed-point
// comparison domain, exactly like a non-finite oracle output.
func budgetFinite(qb oracle.QuantBudget) bool {
	return !math.IsNaN(qb.Mean) && !math.IsInf(qb.Mean, 0) &&
		!math.IsNaN(qb.Var) && !math.IsInf(qb.Var, 0)
}

// TestQuantizedVsOracle holds the fixed-point path to the a-priori
// quantization error budget over the full random-network space (depths 1–6,
// widths 1–300, relu/tanh/sigmoid, keep ∈ [0.5, 1]) on both hostile plain
// inputs (zeros, ±1e6, near-point-mass) and hostile Gaussian inputs
// (sub-floor variances, 1e8 variances). The tolerance is entirely derived —
// RelTight plus the measured oracle.QuantBudget — with no hand-tuned slack.
func TestQuantizedVsOracle(t *testing.T) {
	trials := 20
	if testing.Short() {
		trials = 5
	}
	rng := rand.New(rand.NewSource(20260808))
	skipped := 0
	for n := 0; n < trials; n++ {
		net := GenNetwork(rng)
		qp, m, ref := quantFixture(t, net)

		x := GenInput(rng, net.InputDim())
		got := qp.Run(core.Deterministic(x))
		want, _, qb, err := ref.ForwardQuantCond(m, x)
		if err != nil {
			t.Fatal(err)
		}
		if finite(want) && budgetFinite(qb) {
			if err := CompareVec(got, want, RelTight, asCond(qb)); err != nil {
				t.Errorf("net %d: %s: quantized vs oracle: %v", n, net.Summary(), err)
			}
		} else {
			skipped++
		}

		g := GenGaussian(rng, net.InputDim())
		gotFrom := qp.Run(g.Clone())
		wantFrom, _, qbFrom, err := ref.ForwardFromQuantCond(m, g)
		if err != nil {
			t.Fatal(err)
		}
		if finite(wantFrom) && budgetFinite(qbFrom) {
			if err := CompareVec(gotFrom, wantFrom, RelTight, asCond(qbFrom)); err != nil {
				t.Errorf("net %d: %s: quantized vs oracle (Gaussian input): %v", n, net.Summary(), err)
			}
		} else {
			skipped++
		}
	}
	// The hostile input classes push some cases past float range — that is
	// the documented domain boundary — but the sweep must not degenerate
	// into skipping everything.
	if skipped > trials {
		t.Fatalf("%d of %d comparisons skipped as non-finite: generator or budget regression", skipped, 2*trials)
	}
}

// TestQuantizedBatchVsSequential pins the fixed-point self-consistency
// contract end to end through the core dispatch: with a quantized program
// installed, every row of PropagateBatch is Float64bits-identical to the
// sequential Propagate result, for any batch size and worker count, and both
// equal qprop.Run directly (proving dispatch actually took the fixed-point
// path on both entry points).
func TestQuantizedBatchVsSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, workers := range []int{0, 1, 2, 4} {
		for _, b := range []int{1, 2, 7, 16, 33} {
			net := GenNetwork(rng)
			qp, _, _ := quantFixture(t, net, qprop.WithWorkers(workers))
			prop, err := core.NewPropagator(net, core.Options{}, core.WithWorkers(workers))
			if err != nil {
				t.Fatal(err)
			}
			prop.SetQuantized(qp)

			xs := make([]tensor.Vector, b)
			for k := range xs {
				xs[k] = GenInput(rng, net.InputDim())
			}
			gb, err := prop.PropagateBatch(xs)
			if err != nil {
				t.Fatal(err)
			}
			for k := range xs {
				seq, err := prop.Propagate(xs[k])
				if err != nil {
					t.Fatal(err)
				}
				if err := CompareBits(gb.Row(k), seq); err != nil {
					t.Errorf("workers %d batch %d row %d: batch vs sequential: %v\nnet %s", workers, b, k, err, net.Summary())
				}
				if err := CompareBits(seq, qp.Run(core.Deterministic(xs[k]))); err != nil {
					t.Errorf("workers %d batch %d row %d: dispatch vs direct Run: %v\nnet %s", workers, b, k, err, net.Summary())
				}
			}
		}
	}
}

// quantTractable propagates a per-layer log2 bound on the moment magnitudes
// the oracle would have to integrate over and reports whether they stay below
// float64 range. Above the bound the derived budget overflows to Inf and the
// comparison is skipped anyway, but the oracle's adaptive PWL quadrature can
// spend minutes subdividing astronomically wide integrands before returning
// the non-finite result — so the fuzz target skips such inputs up front.
// This is purely a tractability heuristic for the fuzz domain; the bound is
// deliberately loose (max |w| · fan-in per column) so it only trips where the
// comparison is out of domain regardless.
func quantTractable(net *nn.Network, x tensor.Vector) bool {
	const limit = 1000 // log2; past here budgets overflow float64 anyway
	lm := 0.0          // log2 bound on max |mean|
	for _, v := range x {
		if l := math.Log2(math.Abs(v)); l > lm {
			lm = l
		}
	}
	lv := math.Inf(-1) // log2 bound on max variance (deterministic input: none)
	for _, l := range net.Layers() {
		lw := math.Inf(-1)
		for _, w := range l.W.Data {
			if lg := math.Log2(math.Abs(w)); lg > lw {
				lw = lg
			}
		}
		fanIn := math.Log2(float64(l.W.Rows)) + 1 // +1 slack for bias/rounding
		// Dropout prep: |pμ| ≤ |μ|, variance term ≤ μ² + σ².
		lvPrep := math.Max(2*lm, lv) + 1
		lm = lm + lw + fanIn
		lv = lvPrep + 2*lw + fanIn
		if math.Max(lm, lv) > limit {
			return false
		}
		switch l.Act {
		case nn.ActTanh, nn.ActSigmoid:
			lm, lv = 1, 1 // bounded output
		}
	}
	return true
}

// FuzzQuantizedVsFloat drives the fixed-point path against the oracle under
// fuzzer-chosen weight scales: rawExp rescales every weight by 2^e for
// e ∈ [-1100, 1100], reaching fully denormal networks (the columnScale and
// rowQuantScale fallback paths), all-zero networks (weights flushed to
// zero), and saturating ones (overflowed weights must be rejected, never
// propagated). Networks are width-bounded and budgets are derived per input,
// so the target never flakes on a legitimate input.
func FuzzQuantizedVsFloat(f *testing.F) {
	f.Add(uint64(1), 1.0, int64(0))
	f.Add(uint64(2), 0.5, int64(-1060))
	f.Add(uint64(3), 1.0, int64(1000))
	f.Add(uint64(5), 0.25, int64(-300))
	f.Add(uint64(7), 0.0, int64(-1100))
	f.Add(uint64(20260808), 1.0, int64(60))
	f.Fuzz(func(t *testing.T, seed uint64, rawScale float64, rawExp int64) {
		scale := fuzzScale(rawScale)
		e := int(rawExp % 1101)
		rng := rand.New(rand.NewSource(int64(seed)))
		net := GenNetworkBounded(rng)
		mul := math.Ldexp(1, e)
		for _, l := range net.Layers() {
			for i := range l.W.Data {
				l.W.Data[i] *= mul
			}
		}

		m, err := quantize.Quantize(net)
		if err != nil {
			if e > 900 {
				t.Skip("overflowed weights rejected by Quantize: documented domain boundary")
			}
			t.Fatalf("seed %d exp %d: Quantize: %v", seed, e, err)
		}
		qp, err := qprop.New(m, core.Options{})
		if err != nil {
			// Squared-weight scales overflow once peaks pass ~1e156; the
			// fixed-point scheme refuses such models (registry falls back
			// to float) rather than propagating 0·Inf.
			if e > 500 {
				t.Skip("squared-scale overflow rejected by qprop.New: documented domain boundary")
			}
			t.Fatalf("seed %d exp %d: qprop.New: %v", seed, e, err)
		}
		ref, err := oracle.NewRef(net, core.Options{}, false)
		if err != nil {
			t.Fatal(err)
		}

		x := GenInput(rng, net.InputDim())
		for i := range x {
			x[i] *= scale
		}
		if !quantTractable(net, x) {
			t.Skip("moment scale bound past float64 range: budget overflows, oracle quadrature intractable")
		}
		got := qp.Run(core.Deterministic(x))
		want, _, qb, err := ref.ForwardQuantCond(m, x)
		if err != nil {
			t.Fatal(err)
		}
		if !finite(want) || !budgetFinite(qb) {
			t.Skip("oracle output or budget not finite: outside the comparison domain")
		}
		if err := CompareVec(got, want, RelTight, asCond(qb)); err != nil {
			t.Errorf("seed %d scale %v exp %d: quantized vs oracle: %v\nnet %s", seed, scale, e, err, net.Summary())
		}
	})
}
