package qprop

import (
	"math/rand"
	"testing"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/nn"
)

// benchSetup builds the reference benchmark network (the same 5-256-256-1
// shape apds-bench -quant measures) and a filled input batch.
func benchSetup(b *testing.B, batch int) (*Propagator, core.GaussianBatch, core.GaussianBatch) {
	b.Helper()
	net, err := nn.New(nn.Config{
		InputDim: 5, Hidden: []int{256, 256}, OutputDim: 1,
		Activation: nn.ActReLU, OutputActivation: nn.ActIdentity,
		KeepProb: 0.9, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	qp, _, err := Build(net, core.Options{}, WithWorkers(1))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	in := core.NewGaussianBatch(batch, net.InputDim())
	for i := range in.Mean.Data {
		in.Mean.Data[i] = rng.NormFloat64()
		in.Var.Data[i] = rng.Float64()
	}
	out := core.NewGaussianBatch(batch, net.OutputDim())
	return qp, in, out
}

func benchRunBatch(b *testing.B, batch int) {
	qp, in, out := benchSetup(b, batch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qp.RunBatch(in, out, nil)
	}
}

func BenchmarkRunBatch1(b *testing.B)  { benchRunBatch(b, 1) }
func BenchmarkRunBatch8(b *testing.B)  { benchRunBatch(b, 8) }
func BenchmarkRunBatch64(b *testing.B) { benchRunBatch(b, 64) }
