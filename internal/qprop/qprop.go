// Package qprop is the fixed-point moment propagator: ApDeepSense inference
// (eqs. 9–10 dense moments, eqs. 12–26 PWL activation moments) run directly
// on int8 weight codes instead of dequantized float64 weights — the speed
// and footprint tier the paper's Edison-class targets motivate.
//
// # Arithmetic scheme
//
// Per layer, the mean matmul uses the quantized model's per-output-channel
// int8 codes q with scales s (w_ij ≈ s_j·q_ij); the variance matmul uses the
// derived 7-bit squared codes q2 with scales s2 (w²_ij ≈ s2_j·q2_ij, see
// quantize.Layer.SquareCodes). Both code panels are widened to int16 and
// packed pair-interleaved for the VPMADDWD-style kernels in internal/tensor.
//
// Activations are quantized per ROW and per layer, dynamically: after the
// dropout prep (μp, (μ²+σ²)p − μ²p²) the row's max magnitudes pick symmetric
// int16 scales, codes are round-clamped, and the dual dot products run in
// exact integer arithmetic — int32 lanes within a tensor.QPairBlock block,
// widened into int64 across blocks, so no accumulation step can overflow
// (the budget is derived on tensor.QPairBlock). The totals dequantize as
// float64(acc)·(rowScale·s_j) + bias and feed the ordinary core.ActKernel
// moment step; the PWL/knot machinery is shared with the float paths, so
// the quantized path differs only in the dense arithmetic.
//
// # Accuracy contract
//
// The path is an approximation with a PROVEN bound, not a tolerance: for a
// given float network and its quantized model, internal/oracle's
// ForwardQuantCond composes an a-priori per-layer error budget (exact
// weight-reconstruction residuals, activation-quantization rounding at the
// dynamic scales, float dequantization rounding, all amplified through the
// remaining depth) and internal/proptest holds |quant − oracle| under it
// across the random-network space, with no hand-tuned epsilons.
//
// Because every row is processed by one shared routine whose quantization
// scales depend only on that row, batch rows are Float64bits-identical to
// sequential Run calls — the same self-consistency contract the float paths
// have, which registry hot-swap hammering relies on.
package qprop

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/edison"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/piecewise"
	"github.com/apdeepsense/apdeepsense/internal/quantize"
	"github.com/apdeepsense/apdeepsense/internal/stats"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// QAMax is the symmetric int16 ceiling for the dynamic per-row activation
// quantization: codes live in [-QAMax, QAMax]. Products against int8-ranged
// weight codes then fit the overflow budget documented on tensor.QPairBlock.
const QAMax = 32767

// Option configures optional Propagator behavior.
type Option func(*Propagator)

// WithWorkers bounds the number of goroutines RunBatch fans its row chunks
// across, mirroring core.WithWorkers: n <= 0 selects GOMAXPROCS, n == 1
// forces single-threaded batches.
func WithWorkers(n int) Option {
	return func(p *Propagator) { p.workers = n }
}

// qlayer is one layer's packed fixed-point state.
type qlayer struct {
	nIn, nOut int
	pairs     int // ceil(nIn/2); odd nIn pads a zero row
	// panelM / panelV are the pair-interleaved int16 panels of the mean
	// codes and the derived squared codes (layout: tensor.QMaddPairs).
	panelM, panelV []int16
	// scaleM / scaleV are the per-output dequantization scales s and s2.
	scaleM, scaleV []float64
	bias           []float64
	keep           float64
}

// Propagator runs fixed-point ApDeepSense inference over one quantized
// model. It implements core.QuantizedProgram; install it on the float
// propagator with SetQuantized. Immutable after New and safe for concurrent
// Run/RunBatch calls.
type Propagator struct {
	model   *quantize.Model
	layers  []qlayer
	kernels []*core.ActKernel
	acts    []*piecewise.Func

	inDim, outDim int
	maxDim        int // widest layer dimension including the input
	maxPairs      int
	maxBounds     int
	workers       int

	scratch  sync.Pool
	cost     edison.Cost
	resident int64
}

// New packs the quantized model into pair-interleaved panels and prepares
// the activation kernels. opts carries the PWL piece counts so the
// quantized path approximates the same activation curves as the float
// propagator it shadows.
func New(m *quantize.Model, opts core.Options, extra ...Option) (*Propagator, error) {
	if m == nil {
		return nil, fmt.Errorf("qprop: nil model")
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("qprop: %w", err)
	}
	p := &Propagator{
		model:  m,
		inDim:  m.Layers[0].InDim,
		outDim: m.Layers[len(m.Layers)-1].OutDim,
		maxDim: m.Layers[0].InDim,
	}
	var optsFilled = opts
	// Zero-valued pieces pick the same defaults as core.Options.
	if optsFilled.TanhPieces == 0 {
		optsFilled.TanhPieces = 7
	}
	if optsFilled.SigmoidPieces == 0 {
		optsFilled.SigmoidPieces = 7
	}
	for li := range m.Layers {
		q := &m.Layers[li]
		var (
			f   *piecewise.Func
			err error
		)
		switch q.Act {
		case nn.ActIdentity:
			f = piecewise.Identity()
		case nn.ActReLU:
			f = piecewise.ReLU()
		case nn.ActTanh:
			f, err = piecewise.Tanh(optsFilled.TanhPieces)
		case nn.ActSigmoid:
			f, err = piecewise.Sigmoid(optsFilled.SigmoidPieces)
		default:
			err = fmt.Errorf("unsupported activation %v", q.Act)
		}
		if err != nil {
			return nil, fmt.Errorf("qprop: prepare layer %d: %w", li, err)
		}
		p.acts = append(p.acts, f)
		p.kernels = append(p.kernels, core.NewActKernel(f))
		if f.NumPieces()+1 > p.maxBounds {
			p.maxBounds = f.NumPieces() + 1
		}

		codes2, scales2 := q.SquareCodes()
		// A squared scale that overflowed (s² beyond float range) has no
		// usable fixed-point representation: dequantizing against it turns
		// zero totals into 0·Inf = NaN. Reject the model instead — the
		// registry's opt-in path falls back to float propagation.
		for j, s2 := range scales2 {
			if math.IsInf(s2, 0) {
				return nil, fmt.Errorf("qprop: layer %d squared-weight scale[%d] overflows float64: weights too large for the fixed-point scheme", li, j)
			}
		}
		ql := qlayer{
			nIn: q.InDim, nOut: q.OutDim,
			pairs:  (q.InDim + 1) / 2,
			scaleM: append([]float64(nil), q.Scales...),
			scaleV: scales2,
			bias:   append([]float64(nil), q.B...),
			keep:   q.KeepProb,
		}
		ql.panelM = packPairs(q.W, q.InDim, q.OutDim)
		ql.panelV = packPairs(codes2, q.InDim, q.OutDim)
		p.layers = append(p.layers, ql)

		if q.OutDim > p.maxDim {
			p.maxDim = q.OutDim
		}
		if ql.pairs > p.maxPairs {
			p.maxPairs = ql.pairs
		}
		p.resident += 2 * int64(len(ql.panelM)+len(ql.panelV))
		p.resident += 8 * int64(len(ql.scaleM)+len(ql.scaleV)+len(ql.bias))
	}
	p.cost = p.computeCost()
	p.scratch.New = func() any { return &rowScratch{} }
	for _, o := range extra {
		o(p)
	}
	return p, nil
}

// Build is the one-call path from a float network to an installable
// program: quantize, pack, and smoke-check on an all-ones input (finite
// moments out). The registry uses it behind the opt-in flag, falling back
// to float on any error.
func Build(net *nn.Network, opts core.Options, extra ...Option) (*Propagator, *quantize.Model, error) {
	m, err := quantize.Quantize(net)
	if err != nil {
		return nil, nil, err
	}
	p, err := New(m, opts, extra...)
	if err != nil {
		return nil, nil, err
	}
	ones := make(tensor.Vector, p.inDim)
	for i := range ones {
		ones[i] = 1
	}
	g := p.Run(core.Deterministic(ones))
	for i := 0; i < g.Dim(); i++ {
		if m, v := g.Mean[i], g.Var[i]; m-m != 0 || v-v != 0 {
			return nil, nil, fmt.Errorf("qprop: smoke check produced non-finite moments at output %d", i)
		}
	}
	return p, m, nil
}

// packPairs lays int8 codes out as the pair-interleaved int16 panel
// tensor.QMaddPairs consumes: element (kk, j) lands at
// panel[(kk/2)·2·nOut + 2j + kk%2]; an odd trailing row pads with zeros.
func packPairs(codes []int8, nIn, nOut int) []int16 {
	pairs := (nIn + 1) / 2
	panel := make([]int16, pairs*2*nOut)
	for kk := 0; kk < nIn; kk++ {
		row := codes[kk*nOut : (kk+1)*nOut]
		dst := panel[(kk/2)*2*nOut+kk%2:]
		for j, c := range row {
			dst[2*j] = int16(c)
		}
	}
	return panel
}

// Model returns the quantized model the program was packed from.
func (p *Propagator) Model() *quantize.Model { return p.model }

// InputDim reports the network input dimension.
func (p *Propagator) InputDim() int { return p.inDim }

// OutputDim reports the network output dimension.
func (p *Propagator) OutputDim() int { return p.outDim }

// MaxBatch implements core.QuantizedProgram: the fixed-point path is
// batch-size-agnostic (scratch is per row), so every batch dispatches here.
func (p *Propagator) MaxBatch() int { return math.MaxInt32 }

// ResidentBytes reports the in-memory footprint of the packed panels and
// scales — the number to compare against the float propagator's resident
// 16 bytes/weight (W plus W², float64 each).
func (p *Propagator) ResidentBytes() int64 { return p.resident }

// FileBytes reports the serialized footprint of the underlying model
// (int8 codes + scales + biases; the squared panel is derived, not stored).
func (p *Propagator) FileBytes() int64 { return p.model.SizeBytes() }

// Cost returns the modeled per-inference cost on the edison scale: the
// dense work counts as integer MACs, everything else as element ops.
func (p *Propagator) Cost() edison.Cost { return p.cost }

func (p *Propagator) computeCost() edison.Cost {
	var c edison.Cost
	for li, l := range p.layers {
		in, out := int64(l.nIn), int64(l.nOut)
		// Mean and variance integer dot products.
		c.IntMACs += 2 * in * out
		// Dropout prep (5 passes), row max scan (2), quantization
		// round+clamp (2×2), dequantize + bias (3 per output, twice).
		c.ElementOps += (5+2+4)*in + 6*out
		for _, piece := range p.acts[li].Pieces() {
			if piece.K == 0 {
				c.ElementOps += out * core.OpsPerConstPiece
			} else {
				c.ElementOps += out * core.OpsPerLinearPiece
			}
		}
	}
	return c
}

// rowScratch is one worker's buffers, sized lazily for the widest layer.
type rowScratch struct {
	curMu, curVar  []float64
	nxtMu, nxtVar  []float64
	qa, qv         []int16
	acc32m, acc32v []int32
	totM, totV     []int64
	bounds         []stats.Boundary
	pms            []stats.PartialMoments
	warm           bool
}

func (s *rowScratch) ensure(dim, pairs, nBounds int) {
	if len(s.curMu) < dim {
		s.curMu = make([]float64, dim)
		s.curVar = make([]float64, dim)
		s.nxtMu = make([]float64, dim)
		s.nxtVar = make([]float64, dim)
		s.acc32m = make([]int32, dim)
		s.acc32v = make([]int32, dim)
		s.totM = make([]int64, dim)
		s.totV = make([]int64, dim)
	}
	if len(s.qa) < 2*pairs {
		s.qa = make([]int16, 2*pairs)
		s.qv = make([]int16, 2*pairs)
	}
	if len(s.bounds) < nBounds {
		s.bounds = make([]stats.Boundary, nBounds)
		s.pms = make([]stats.PartialMoments, nBounds)
	}
}

// Run implements core.QuantizedProgram for a single Gaussian. The caller
// (core.Propagator.PropagateFrom) guarantees the input dimension.
func (p *Propagator) Run(g core.GaussianVec) core.GaussianVec {
	out := core.NewGaussianVec(p.outDim)
	sc := p.scratch.Get().(*rowScratch)
	sc.warm = true
	sc.ensure(p.maxDim, p.maxPairs, p.maxBounds)
	p.runRow(g.Mean, g.Var, out.Mean, out.Var, sc)
	p.scratch.Put(sc)
	return out
}

// RunBatch implements core.QuantizedProgram: rows fan out over workers with
// the interpreted path's MinRowsPerWorker rule, each row running the same
// routine as Run (bit-identical rows regardless of chunking).
func (p *Propagator) RunBatch(in, out core.GaussianBatch, h *core.Hooks) {
	b := in.Batch()
	workers := p.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if max := (b + core.MinRowsPerWorker - 1) / core.MinRowsPerWorker; workers > max {
		workers = max
	}
	if workers <= 1 {
		p.runRows(in, out, 0, b, h)
		return
	}
	chunk := (b + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < b; lo += chunk {
		hi := lo + chunk
		if hi > b {
			hi = b
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			p.runRows(in, out, lo, hi, h)
		}(lo, hi)
	}
	wg.Wait()
}

func (p *Propagator) runRows(in, out core.GaussianBatch, lo, hi int, h *core.Hooks) {
	sc := p.scratch.Get().(*rowScratch)
	if h != nil && h.ScratchGet != nil {
		h.ScratchGet(sc.warm)
	}
	sc.warm = true
	sc.ensure(p.maxDim, p.maxPairs, p.maxBounds)
	for r := lo; r < hi; r++ {
		g := in.Row(r)
		o := out.Row(r)
		p.runRow(g.Mean, g.Var, o.Mean, o.Var, sc)
	}
	p.scratch.Put(sc)
}

// clampQ rounds a quotient to the nearest int16 code, clamping at ±QAMax
// (the quotient can round a hair past QAMax at the row maximum).
func clampQ(x float64) int16 {
	r := math.Round(x)
	if r > QAMax {
		return QAMax
	}
	if r < -QAMax {
		return -QAMax
	}
	return int16(r)
}

// rowQuantScale picks the dynamic symmetric scale for a row maximum: zero
// rows get scale 1 over all-zero codes, and a subnormal maximum whose
// max/QAMax quotient underflows to zero falls back to the maximum itself
// (codes in {-1, 0, 1}; the absolute error is below 1e-318 and inside the
// oracle budget's floor).
func rowQuantScale(max float64) float64 {
	if max == 0 {
		return 1
	}
	if s := max / QAMax; s > 0 {
		return s
	}
	return max
}

// runRow pushes one Gaussian row through every layer. mu/varr are the input
// moments (len p.inDim, not modified); outMu/outVar receive the outputs.
// Rows with non-finite moments at any layer boundary are NaN-filled: the
// fixed-point scheme has no meaningful encoding for Inf activations, and
// the serving stack rejects non-finite inputs before enqueueing.
func (p *Propagator) runRow(mu, varr, outMu, outVar []float64, sc *rowScratch) {
	cur, curV := sc.curMu, sc.curVar
	nxt, nxtV := sc.nxtMu, sc.nxtVar
	copy(cur[:p.inDim], mu)
	copy(curV[:p.inDim], varr)

	for li := range p.layers {
		l := &p.layers[li]
		am := cur[:l.nIn]
		av := curV[:l.nIn]

		// Dropout prep (eqs. 9–10 input moments) fused with the row max
		// scan and the finiteness check: a-a != 0 catches NaN and ±Inf.
		keep := l.keep
		maxA, maxV := 0.0, 0.0
		finite := true
		for i, m := range am {
			s2 := av[i]
			a := m * keep
			v := (m*m+s2)*keep - m*m*keep*keep
			am[i] = a
			av[i] = v
			if a-a != 0 || v-v != 0 {
				finite = false
				break
			}
			if a < 0 {
				a = -a
			}
			if a > maxA {
				maxA = a
			}
			if v < 0 {
				v = -v
			}
			if v > maxV {
				maxV = v
			}
		}
		if !finite {
			for j := range outMu {
				outMu[j] = math.NaN()
				outVar[j] = math.NaN()
			}
			return
		}

		// Dynamic per-row symmetric quantization of both moment vectors.
		aScale := rowQuantScale(maxA)
		vScale := rowQuantScale(maxV)
		qa := sc.qa[:2*l.pairs]
		qv := sc.qv[:2*l.pairs]
		for i := 0; i < l.nIn; i++ {
			qa[i] = clampQ(am[i] / aScale)
			qv[i] = clampQ(av[i] / vScale)
		}
		for i := l.nIn; i < 2*l.pairs; i++ {
			qa[i] = 0
			qv[i] = 0
		}

		// Exact integer dual dot: int32 lanes inside each QPairBlock
		// block, widened into int64 totals across blocks.
		totM := sc.totM[:l.nOut]
		totV := sc.totV[:l.nOut]
		for j := range totM {
			totM[j] = 0
			totV[j] = 0
		}
		for base := 0; base < l.pairs; base += tensor.QPairBlock {
			pb := l.pairs - base
			if pb > tensor.QPairBlock {
				pb = tensor.QPairBlock
			}
			accM := sc.acc32m[:l.nOut]
			accV := sc.acc32v[:l.nOut]
			for j := range accM {
				accM[j] = 0
				accV[j] = 0
			}
			tensor.QMaddPairs(qa[2*base:], l.panelM[base*2*l.nOut:], pb, l.nOut, accM)
			tensor.QMaddPairs(qv[2*base:], l.panelV[base*2*l.nOut:], pb, l.nOut, accV)
			for j := range totM {
				totM[j] += int64(accM[j])
				totV[j] += int64(accV[j])
			}
		}

		// Dequantize at the activation: float64(total)·(rowScale·s_j) + b,
		// variance clamp exactly like the float paths, then the shared
		// ActKernel moment step.
		ak := p.kernels[li]
		for j := 0; j < l.nOut; j++ {
			m := float64(totM[j])*(aScale*l.scaleM[j]) + l.bias[j]
			v := float64(totV[j]) * (vScale * l.scaleV[j])
			if v < 0 {
				v = 0
			}
			nxt[j], nxtV[j] = ak.Moments(m, v, sc.bounds, sc.pms)
		}
		cur, nxt = nxt, cur
		curV, nxtV = nxtV, curV
	}

	copy(outMu, cur[:p.outDim])
	copy(outVar, curV[:p.outDim])
}
