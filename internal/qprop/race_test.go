package qprop

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/nn"
)

// TestConcurrentRunRace drives one shared Propagator from many goroutines
// mixing Run and RunBatch — the serving shape, where every coalescer flush
// and every direct Predict lands on the same program. Under -race this pins
// the rowScratch pool's safety; the bit-comparison against precomputed
// sequential results pins that concurrent reuse never leaks state between
// rows.
func TestConcurrentRunRace(t *testing.T) {
	net, err := nn.New(nn.Config{
		InputDim: 7, Hidden: []int{32, 32}, OutputDim: 3,
		Activation: nn.ActTanh, OutputActivation: nn.ActIdentity,
		KeepProb: 0.8, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	qp, _, err := Build(net, core.Options{}, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(3))
	const nInputs = 16
	inputs := make([]core.GaussianVec, nInputs)
	want := make([]core.GaussianVec, nInputs)
	for i := range inputs {
		g := core.NewGaussianVec(net.InputDim())
		for d := 0; d < net.InputDim(); d++ {
			g.Mean[d] = rng.NormFloat64()
			g.Var[d] = rng.Float64()
		}
		inputs[i] = g
		want[i] = qp.Run(g.Clone())
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				if w%2 == 0 {
					i := (w + iter) % nInputs
					got := qp.Run(inputs[i].Clone())
					if !bitEqual(got, want[i]) {
						errs <- "concurrent Run differs from sequential"
						return
					}
				} else {
					b := 1 + (w+iter)%5
					in := core.NewGaussianBatch(b, net.InputDim())
					for k := 0; k < b; k++ {
						src := inputs[(w+iter+k)%nInputs]
						copy(in.Mean.Data[k*net.InputDim():], src.Mean)
						copy(in.Var.Data[k*net.InputDim():], src.Var)
					}
					out := core.NewGaussianBatch(b, net.OutputDim())
					qp.RunBatch(in, out, nil)
					for k := 0; k < b; k++ {
						if !bitEqual(out.Row(k), want[(w+iter+k)%nInputs]) {
							errs <- "concurrent RunBatch row differs from sequential"
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
}

func bitEqual(a, b core.GaussianVec) bool {
	if len(a.Mean) != len(b.Mean) {
		return false
	}
	for i := range a.Mean {
		if math.Float64bits(a.Mean[i]) != math.Float64bits(b.Mean[i]) ||
			math.Float64bits(a.Var[i]) != math.Float64bits(b.Var[i]) {
			return false
		}
	}
	return true
}
