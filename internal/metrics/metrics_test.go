package metrics

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/stats"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

func vecs(rows ...[]float64) []tensor.Vector {
	out := make([]tensor.Vector, len(rows))
	for i, r := range rows {
		out[i] = tensor.Vector(r)
	}
	return out
}

func TestMAE(t *testing.T) {
	got, err := MAE(vecs([]float64{1, 2}, []float64{3}), vecs([]float64{0, 4}, []float64{3}))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 { // (1+2+0)/3
		t.Errorf("MAE = %v, want 1", got)
	}
	if _, err := MAE(nil, nil); !errors.Is(err, ErrInput) {
		t.Errorf("empty err = %v", err)
	}
	if _, err := MAE(vecs([]float64{1}), vecs([]float64{1, 2})); !errors.Is(err, ErrInput) {
		t.Errorf("ragged err = %v", err)
	}
}

func TestRMSE(t *testing.T) {
	got, err := RMSE(vecs([]float64{3, 0}), vecs([]float64{0, 4}))
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt((9.0 + 16.0) / 2)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("RMSE = %v, want %v", got, want)
	}
	if _, err := RMSE(vecs([]float64{1}), vecs([]float64{1, 2})); !errors.Is(err, ErrInput) {
		t.Errorf("ragged err = %v", err)
	}
}

func TestAccuracy(t *testing.T) {
	probs := vecs([]float64{0.9, 0.1}, []float64{0.2, 0.8}, []float64{0.6, 0.4})
	targets := vecs([]float64{1, 0}, []float64{0, 1}, []float64{0, 1})
	got, err := Accuracy(probs, targets)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("Accuracy = %v, want 2/3", got)
	}
	if _, err := Accuracy(nil, nil); !errors.Is(err, ErrInput) {
		t.Errorf("empty err = %v", err)
	}
}

func TestGaussianNLL(t *testing.T) {
	preds := []core.GaussianVec{
		{Mean: tensor.Vector{0}, Var: tensor.Vector{1}},
	}
	targets := vecs([]float64{0})
	got, err := GaussianNLL(preds, targets, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5 * math.Log(2*math.Pi)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("NLL = %v, want %v", got, want)
	}
	// varFloor shifts the variance.
	got2, err := GaussianNLL(preds, targets, 3)
	if err != nil {
		t.Fatal(err)
	}
	want2 := stats.GaussianNLL(0, 0, 4)
	if math.Abs(got2-want2) > 1e-12 {
		t.Errorf("floored NLL = %v, want %v", got2, want2)
	}
	// Collapsed variance with a miss explodes (the MCDrop-3 pathology).
	collapsed := []core.GaussianVec{{Mean: tensor.Vector{0}, Var: tensor.Vector{1e-8}}}
	big, err := GaussianNLL(collapsed, vecs([]float64{5}), 0)
	if err != nil {
		t.Fatal(err)
	}
	if big < 1e6 {
		t.Errorf("collapsed-variance NLL = %v, want huge", big)
	}
	if _, err := GaussianNLL(preds, targets, -1); !errors.Is(err, ErrInput) {
		t.Errorf("neg floor err = %v", err)
	}
	if _, err := GaussianNLL(preds, vecs([]float64{1, 2}), 0); !errors.Is(err, ErrInput) {
		t.Errorf("dim err = %v", err)
	}
}

func TestCategoricalNLL(t *testing.T) {
	probs := vecs([]float64{0.5, 0.5}, []float64{0.9, 0.1})
	targets := vecs([]float64{1, 0}, []float64{1, 0})
	got, err := CategoricalNLL(probs, targets)
	if err != nil {
		t.Fatal(err)
	}
	want := (-math.Log(0.5) - math.Log(0.9)) / 2
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("NLL = %v, want %v", got, want)
	}
	// Zero probability clamps instead of producing +Inf.
	zero := vecs([]float64{0, 1})
	got2, err := CategoricalNLL(zero, vecs([]float64{1, 0}))
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(got2, 0) || math.IsNaN(got2) {
		t.Errorf("zero-prob NLL = %v, want finite", got2)
	}
	if _, err := CategoricalNLL(nil, nil); !errors.Is(err, ErrInput) {
		t.Errorf("empty err = %v", err)
	}
}

func TestCoverageCalibrated(t *testing.T) {
	// Predictive N(0,1), targets sampled from N(0,1): 90% interval covers
	// ~90%.
	rng := rand.New(rand.NewSource(42))
	var preds []core.GaussianVec
	var targets []tensor.Vector
	for i := 0; i < 20000; i++ {
		preds = append(preds, core.GaussianVec{Mean: tensor.Vector{0}, Var: tensor.Vector{1}})
		targets = append(targets, tensor.Vector{rng.NormFloat64()})
	}
	got, err := Coverage(preds, targets, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.9) > 0.01 {
		t.Errorf("coverage = %v, want ≈ 0.9", got)
	}
	// Overconfident predictions undercover.
	for i := range preds {
		preds[i].Var[0] = 0.25
	}
	low, err := Coverage(preds, targets, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if low >= got {
		t.Errorf("overconfident coverage %v should be below %v", low, got)
	}
	if _, err := Coverage(preds, targets, 1.5); !errors.Is(err, ErrInput) {
		t.Errorf("bad level err = %v", err)
	}
}

func TestECE(t *testing.T) {
	// Perfectly calibrated coin: confidence 0.5 bins with 50% accuracy.
	var probs, targets []tensor.Vector
	for i := 0; i < 100; i++ {
		probs = append(probs, tensor.Vector{0.5 + 1e-9, 0.5 - 1e-9})
		cls := i % 2
		y := tensor.Vector{0, 0}
		y[cls] = 1
		targets = append(targets, y)
	}
	got, err := ECE(probs, targets, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got > 0.01 {
		t.Errorf("calibrated ECE = %v, want ≈ 0", got)
	}
	// Overconfident always-class-0 on a balanced set: ECE ≈ 0.49.
	var probs2 []tensor.Vector
	for range targets {
		probs2 = append(probs2, tensor.Vector{0.99, 0.01})
	}
	got2, err := ECE(probs2, targets, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got2-0.49) > 0.02 {
		t.Errorf("overconfident ECE = %v, want ≈ 0.49", got2)
	}
	if _, err := ECE(probs, targets, 0); !errors.Is(err, ErrInput) {
		t.Errorf("bad bins err = %v", err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	for _, c := range []struct{ q, want float64 }{
		{0, 1}, {0.5, 3}, {1, 5}, {0.25, 2},
	} {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrInput) {
		t.Errorf("empty err = %v", err)
	}
	if _, err := Quantile(xs, 2); !errors.Is(err, ErrInput) {
		t.Errorf("bad q err = %v", err)
	}
	// Input must not be mutated.
	if xs[0] != 3 {
		t.Error("Quantile mutated its input")
	}
}

func TestReliabilityDiagram(t *testing.T) {
	var probs, targets []tensor.Vector
	// 50 confident-correct, 50 confident-wrong at conf 0.95; 100 coin flips
	// at conf 0.55 with 50% accuracy.
	for i := 0; i < 100; i++ {
		probs = append(probs, tensor.Vector{0.95, 0.05})
		y := tensor.Vector{0, 0}
		if i < 50 {
			y[0] = 1
		} else {
			y[1] = 1
		}
		targets = append(targets, y)
	}
	for i := 0; i < 100; i++ {
		probs = append(probs, tensor.Vector{0.55, 0.45})
		y := tensor.Vector{0, 0}
		y[i%2] = 1
		targets = append(targets, y)
	}
	binsOut, err := ReliabilityDiagram(probs, targets, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(binsOut) != 10 {
		t.Fatalf("bins = %d", len(binsOut))
	}
	// Bin [0.9, 1.0): conf 0.95, acc 0.5.
	hi := binsOut[9]
	if hi.Count != 100 || math.Abs(hi.Confidence-0.95) > 1e-9 || math.Abs(hi.Accuracy-0.5) > 1e-9 {
		t.Errorf("high bin = %+v", hi)
	}
	// Bin [0.5, 0.6): conf 0.55, acc 0.5.
	mid := binsOut[5]
	if mid.Count != 100 || math.Abs(mid.Confidence-0.55) > 1e-9 || math.Abs(mid.Accuracy-0.5) > 1e-9 {
		t.Errorf("mid bin = %+v", mid)
	}
	// ECE consistency: weighted |acc−conf| from the diagram equals ECE.
	var fromDiagram float64
	for _, b := range binsOut {
		if b.Count > 0 {
			fromDiagram += float64(b.Count) / 200 * math.Abs(b.Accuracy-b.Confidence)
		}
	}
	ece, err := ECE(probs, targets, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fromDiagram-ece) > 1e-12 {
		t.Errorf("diagram-derived ECE %v != ECE %v", fromDiagram, ece)
	}
	// Errors.
	if _, err := ReliabilityDiagram(nil, nil, 10); !errors.Is(err, ErrInput) {
		t.Errorf("empty err = %v", err)
	}
	if _, err := ReliabilityDiagram(probs, targets, 0); !errors.Is(err, ErrInput) {
		t.Errorf("bins err = %v", err)
	}
}
