// Package metrics implements the evaluation measures of the paper's §IV:
// mean absolute error and negative log-likelihood for regression tasks,
// accuracy and negative log-likelihood for classification tasks, plus the
// calibration diagnostics (interval coverage, expected calibration error)
// this reproduction adds beyond the paper.
package metrics

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/stats"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// ErrInput is returned (wrapped) for invalid metric inputs.
var ErrInput = errors.New("metrics: invalid input")

// probFloor clamps predicted probabilities away from zero in log-likelihoods
// (float64's smallest positive normal is ~2.2e-308).
const probFloor = 1e-300

// MAE returns the mean absolute error between prediction and target vectors,
// averaged over all dimensions of all samples.
func MAE(preds, targets []tensor.Vector) (float64, error) {
	if len(preds) != len(targets) || len(preds) == 0 {
		return 0, fmt.Errorf("mae: %d preds vs %d targets: %w", len(preds), len(targets), ErrInput)
	}
	var sum float64
	var n int
	for i := range preds {
		if len(preds[i]) != len(targets[i]) {
			return 0, fmt.Errorf("mae: sample %d dims %d vs %d: %w", i, len(preds[i]), len(targets[i]), ErrInput)
		}
		for j := range preds[i] {
			sum += math.Abs(preds[i][j] - targets[i][j])
			n++
		}
	}
	return sum / float64(n), nil
}

// RMSE returns the root mean squared error over all dimensions of all
// samples.
func RMSE(preds, targets []tensor.Vector) (float64, error) {
	if len(preds) != len(targets) || len(preds) == 0 {
		return 0, fmt.Errorf("rmse: %d preds vs %d targets: %w", len(preds), len(targets), ErrInput)
	}
	var sum float64
	var n int
	for i := range preds {
		if len(preds[i]) != len(targets[i]) {
			return 0, fmt.Errorf("rmse: sample %d dims %d vs %d: %w", i, len(preds[i]), len(targets[i]), ErrInput)
		}
		for j := range preds[i] {
			d := preds[i][j] - targets[i][j]
			sum += d * d
			n++
		}
	}
	return math.Sqrt(sum / float64(n)), nil
}

// Accuracy returns the fraction of samples whose arg-max predicted
// probability matches the arg-max of the one-hot target.
func Accuracy(probs []tensor.Vector, targets []tensor.Vector) (float64, error) {
	if len(probs) != len(targets) || len(probs) == 0 {
		return 0, fmt.Errorf("accuracy: %d probs vs %d targets: %w", len(probs), len(targets), ErrInput)
	}
	correct := 0
	for i := range probs {
		_, p := probs[i].Max()
		_, t := targets[i].Max()
		if p == t {
			correct++
		}
	}
	return float64(correct) / float64(len(probs)), nil
}

// GaussianNLL returns the mean per-dimension negative log-likelihood of the
// targets under the per-sample Gaussian predictive distributions (the
// regression NLL of Tables I–III). varFloor is added to every predictive
// variance, playing the role of the observation-noise term τ⁻¹; pass a small
// value (or zero) to reproduce the paper's regime where collapsed sampling
// variances blow the NLL up.
func GaussianNLL(preds []core.GaussianVec, targets []tensor.Vector, varFloor float64) (float64, error) {
	if len(preds) != len(targets) || len(preds) == 0 {
		return 0, fmt.Errorf("gaussian-nll: %d preds vs %d targets: %w", len(preds), len(targets), ErrInput)
	}
	if varFloor < 0 {
		return 0, fmt.Errorf("gaussian-nll: negative varFloor: %w", ErrInput)
	}
	var sum float64
	var n int
	for i := range preds {
		if preds[i].Dim() != len(targets[i]) {
			return 0, fmt.Errorf("gaussian-nll: sample %d dims %d vs %d: %w", i, preds[i].Dim(), len(targets[i]), ErrInput)
		}
		for j := 0; j < preds[i].Dim(); j++ {
			v := preds[i].Var[j] + varFloor
			if v <= 0 {
				v = probFloor
			}
			sum += stats.GaussianNLL(targets[i][j], preds[i].Mean[j], v)
			n++
		}
	}
	return sum / float64(n), nil
}

// CategoricalNLL returns the mean negative log predicted probability of the
// true class (the classification NLL of Table IV). Probabilities are clamped
// at 1e-300 before the log.
func CategoricalNLL(probs []tensor.Vector, targets []tensor.Vector) (float64, error) {
	if len(probs) != len(targets) || len(probs) == 0 {
		return 0, fmt.Errorf("categorical-nll: %d probs vs %d targets: %w", len(probs), len(targets), ErrInput)
	}
	var sum float64
	for i := range probs {
		if len(probs[i]) != len(targets[i]) {
			return 0, fmt.Errorf("categorical-nll: sample %d dims %d vs %d: %w", i, len(probs[i]), len(targets[i]), ErrInput)
		}
		_, t := targets[i].Max()
		sum -= math.Log(math.Max(probs[i][t], probFloor))
	}
	return sum / float64(len(probs)), nil
}

// Coverage returns the fraction of target values that fall inside the
// central interval of the given probability mass (e.g. 0.9) of the Gaussian
// predictive distribution. A well-calibrated estimator's coverage matches
// the nominal level.
func Coverage(preds []core.GaussianVec, targets []tensor.Vector, level float64) (float64, error) {
	if len(preds) != len(targets) || len(preds) == 0 {
		return 0, fmt.Errorf("coverage: %d preds vs %d targets: %w", len(preds), len(targets), ErrInput)
	}
	if level <= 0 || level >= 1 {
		return 0, fmt.Errorf("coverage: level %v outside (0,1): %w", level, ErrInput)
	}
	z := stats.NormQuantile(0.5+level/2, 0, 1)
	var in, n int
	for i := range preds {
		if preds[i].Dim() != len(targets[i]) {
			return 0, fmt.Errorf("coverage: sample %d dims %d vs %d: %w", i, preds[i].Dim(), len(targets[i]), ErrInput)
		}
		for j := 0; j < preds[i].Dim(); j++ {
			half := z * math.Sqrt(preds[i].Var[j])
			if math.Abs(targets[i][j]-preds[i].Mean[j]) <= half {
				in++
			}
			n++
		}
	}
	return float64(in) / float64(n), nil
}

// ECE returns the expected calibration error of a classifier over the given
// number of confidence bins: the weighted mean |accuracy − confidence| of
// arg-max predictions.
func ECE(probs []tensor.Vector, targets []tensor.Vector, bins int) (float64, error) {
	if len(probs) != len(targets) || len(probs) == 0 {
		return 0, fmt.Errorf("ece: %d probs vs %d targets: %w", len(probs), len(targets), ErrInput)
	}
	if bins < 1 {
		return 0, fmt.Errorf("ece: %d bins: %w", bins, ErrInput)
	}
	binConf := make([]float64, bins)
	binAcc := make([]float64, bins)
	binN := make([]int, bins)
	for i := range probs {
		conf, p := probs[i].Max()
		_, t := targets[i].Max()
		b := int(conf * float64(bins))
		if b >= bins {
			b = bins - 1
		}
		if b < 0 {
			b = 0
		}
		binConf[b] += conf
		if p == t {
			binAcc[b]++
		}
		binN[b]++
	}
	var ece float64
	total := float64(len(probs))
	for b := 0; b < bins; b++ {
		if binN[b] == 0 {
			continue
		}
		n := float64(binN[b])
		ece += n / total * math.Abs(binAcc[b]/n-binConf[b]/n)
	}
	return ece, nil
}

// Quantile returns the q-th empirical quantile (linear interpolation) of xs.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("quantile: empty input: %w", ErrInput)
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("quantile: q=%v: %w", q, ErrInput)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// ReliabilityBin is one bin of a classifier reliability diagram.
type ReliabilityBin struct {
	// Lo and Hi bound the confidence interval of the bin.
	Lo, Hi float64
	// Count is the number of predictions whose top-class confidence fell in
	// the bin.
	Count int
	// Confidence is the mean top-class confidence of those predictions.
	Confidence float64
	// Accuracy is their empirical accuracy.
	Accuracy float64
}

// ReliabilityDiagram bins arg-max predictions by confidence and reports the
// per-bin mean confidence and accuracy — the data behind a calibration plot
// (and the terms summed by ECE).
func ReliabilityDiagram(probs []tensor.Vector, targets []tensor.Vector, bins int) ([]ReliabilityBin, error) {
	if len(probs) != len(targets) || len(probs) == 0 {
		return nil, fmt.Errorf("reliability: %d probs vs %d targets: %w", len(probs), len(targets), ErrInput)
	}
	if bins < 1 {
		return nil, fmt.Errorf("reliability: %d bins: %w", bins, ErrInput)
	}
	out := make([]ReliabilityBin, bins)
	for b := range out {
		out[b].Lo = float64(b) / float64(bins)
		out[b].Hi = float64(b+1) / float64(bins)
	}
	for i := range probs {
		conf, p := probs[i].Max()
		_, t := targets[i].Max()
		b := int(conf * float64(bins))
		if b >= bins {
			b = bins - 1
		}
		if b < 0 {
			b = 0
		}
		out[b].Count++
		out[b].Confidence += conf
		if p == t {
			out[b].Accuracy++
		}
	}
	for b := range out {
		if out[b].Count > 0 {
			n := float64(out[b].Count)
			out[b].Confidence /= n
			out[b].Accuracy /= n
		}
	}
	return out, nil
}
