// Package edison models the execution time and energy of neural-network
// inference on an Intel Edison class device (Atom SoC, dual core, 500 MHz,
// 1 GB RAM — the paper's testbed, §IV-A).
//
// Substitution note (see DESIGN.md): the paper measures wall-clock time and
// energy on physical Edison hardware running a TensorFlow-style graph
// executor. We reproduce those measurements with an analytic cost model:
// every estimator reports a Cost — dense-kernel FLOPs plus element-wise
// tensor-op invocations — and the Device converts that into milliseconds and
// millijoules using an effective scalar throughput, a per-element graph-op
// overhead, and an active-power figure. The paper's headline system results
// are *ratios* between estimators on identical hardware, which an
// FLOP-proportional model reproduces by construction; the constants below
// are calibrated so absolute magnitudes also land in the paper's reported
// ranges (hundreds of ms / mJ for 5-layer 512-wide networks).
package edison

import (
	"errors"
	"fmt"
)

// ErrConfig is returned (wrapped) for invalid device configurations.
var ErrConfig = errors.New("edison: invalid configuration")

// Cost is the hardware-independent execution cost of one inference.
type Cost struct {
	// DenseFLOPs counts floating-point operations inside dense kernels
	// (matrix multiplications), which run at the device's streaming
	// throughput.
	DenseFLOPs int64
	// ElementOps counts element-visits by element-wise tensor operations
	// (activations, erf/exp evaluations, masks, adds, scales). On a
	// graph-executor each such op re-traverses its tensor, paying
	// interpreter and memory overhead per element on top of the arithmetic.
	ElementOps int64
	// RandomDraws counts pseudo-random numbers generated (dropout masks).
	RandomDraws int64
	// IntMACs counts fixed-point multiply-accumulates inside quantized
	// dense kernels (internal/qprop): int16 activation codes against
	// int8-ranged weight codes, accumulated in int32/int64. They run at
	// the device's integer-MAC throughput, which on SIMD-capable cores is
	// several times the float64 streaming rate.
	IntMACs int64
}

// Add returns the sum of two costs.
func (c Cost) Add(o Cost) Cost {
	return Cost{
		DenseFLOPs:  c.DenseFLOPs + o.DenseFLOPs,
		ElementOps:  c.ElementOps + o.ElementOps,
		RandomDraws: c.RandomDraws + o.RandomDraws,
		IntMACs:     c.IntMACs + o.IntMACs,
	}
}

// Scale returns the cost repeated k times (e.g. k MCDrop passes).
func (c Cost) Scale(k int64) Cost {
	return Cost{
		DenseFLOPs:  c.DenseFLOPs * k,
		ElementOps:  c.ElementOps * k,
		RandomDraws: c.RandomDraws * k,
		IntMACs:     c.IntMACs * k,
	}
}

// Device models an Edison-class processor.
type Device struct {
	// Name labels the device in reports.
	Name string
	// DenseFLOPS is the effective dense-kernel throughput in FLOP/s.
	DenseFLOPS float64
	// ElementOpNanos is the per-element cost, in nanoseconds, of one
	// element-wise tensor-op visit (graph-executor dispatch + load +
	// compute + store on an in-order core).
	ElementOpNanos float64
	// RandomNanos is the per-draw cost of the dropout-mask PRNG.
	RandomNanos float64
	// ActivePowerWatts is the package power while computing.
	ActivePowerWatts float64
	// IntMACsPerSec is the fixed-point multiply-accumulate throughput for
	// quantized dense kernels. Zero means "not calibrated": TimeMillis then
	// falls back to 4× DenseFLOPS, the conservative width advantage of
	// 16-bit paired MACs over float64 on the same SIMD datapath, so Device
	// literals predating the quantized path keep working unchanged.
	IntMACsPerSec float64
}

// NewEdison returns the default Intel Edison model. The constants are
// calibrated against the paper's Figures 2–5: a single forward pass of a
// 5-layer, 512-wide network lands near 12–16 ms, MCDrop-50 near 600–800 ms,
// and ApDeepSense near 2–3 (ReLU) or 7–9 (Tanh) equivalent passes.
func NewEdison() *Device {
	return &Device{
		Name:             "intel-edison",
		DenseFLOPS:       220e6, // effective scalar FLOP/s of the 500 MHz Atom on GEMV
		ElementOpNanos:   55,    // per-element graph-op overhead
		RandomNanos:      30,
		ActivePowerWatts: 0.85,
		IntMACsPerSec:    880e6, // paired int16 MACs: ~4x the float64 GEMV rate
	}
}

// Validate checks the device constants.
func (d *Device) Validate() error {
	if d.DenseFLOPS <= 0 {
		return fmt.Errorf("dense throughput %v: %w", d.DenseFLOPS, ErrConfig)
	}
	if d.ElementOpNanos < 0 || d.RandomNanos < 0 {
		return fmt.Errorf("negative per-op latency: %w", ErrConfig)
	}
	if d.ActivePowerWatts <= 0 {
		return fmt.Errorf("active power %v: %w", d.ActivePowerWatts, ErrConfig)
	}
	if d.IntMACsPerSec < 0 {
		return fmt.Errorf("integer MAC throughput %v: %w", d.IntMACsPerSec, ErrConfig)
	}
	return nil
}

// TimeMillis converts a cost into modeled execution milliseconds.
func (d *Device) TimeMillis(c Cost) float64 {
	intRate := d.IntMACsPerSec
	if intRate == 0 {
		intRate = 4 * d.DenseFLOPS
	}
	seconds := float64(c.DenseFLOPs)/d.DenseFLOPS +
		float64(c.ElementOps)*d.ElementOpNanos*1e-9 +
		float64(c.RandomDraws)*d.RandomNanos*1e-9 +
		float64(c.IntMACs)/intRate
	return seconds * 1e3
}

// EnergyMillijoules converts a cost into modeled millijoules: active power
// times modeled time.
func (d *Device) EnergyMillijoules(c Cost) float64 {
	return d.TimeMillis(c) * 1e-3 * d.ActivePowerWatts * 1e3
}
