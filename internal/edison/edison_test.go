package edison

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestCostAddScale(t *testing.T) {
	a := Cost{DenseFLOPs: 100, ElementOps: 10, RandomDraws: 1}
	b := Cost{DenseFLOPs: 50, ElementOps: 5, RandomDraws: 2}
	sum := a.Add(b)
	if sum.DenseFLOPs != 150 || sum.ElementOps != 15 || sum.RandomDraws != 3 {
		t.Errorf("Add = %+v", sum)
	}
	sc := a.Scale(3)
	if sc.DenseFLOPs != 300 || sc.ElementOps != 30 || sc.RandomDraws != 3 {
		t.Errorf("Scale = %+v", sc)
	}
	if (Cost{}).Add(Cost{}) != (Cost{}) {
		t.Error("zero add")
	}
}

func TestNewEdisonValid(t *testing.T) {
	d := NewEdison()
	if err := d.Validate(); err != nil {
		t.Fatalf("default device invalid: %v", err)
	}
	if d.Name != "intel-edison" {
		t.Errorf("Name = %q", d.Name)
	}
}

func TestValidateRejectsBadDevices(t *testing.T) {
	bad := []Device{
		{DenseFLOPS: 0, ActivePowerWatts: 1},
		{DenseFLOPS: 1e9, ActivePowerWatts: 0},
		{DenseFLOPS: 1e9, ActivePowerWatts: 1, ElementOpNanos: -1},
		{DenseFLOPS: 1e9, ActivePowerWatts: 1, RandomNanos: -1},
	}
	for i, d := range bad {
		if err := d.Validate(); !errors.Is(err, ErrConfig) {
			t.Errorf("case %d: err = %v, want ErrConfig", i, err)
		}
	}
}

func TestTimeMillis(t *testing.T) {
	d := &Device{DenseFLOPS: 1e9, ElementOpNanos: 100, RandomNanos: 50, ActivePowerWatts: 2}
	// 1e6 FLOPs at 1 GFLOP/s = 1 ms; 1000 element-ops at 100 ns = 0.1 ms;
	// 2000 draws at 50 ns = 0.1 ms.
	c := Cost{DenseFLOPs: 1_000_000, ElementOps: 1000, RandomDraws: 2000}
	if got := d.TimeMillis(c); math.Abs(got-1.2) > 1e-9 {
		t.Errorf("TimeMillis = %v, want 1.2", got)
	}
	// Energy = time(s) × power(W) × 1000 = 0.0012 × 2 × 1000 = 2.4 mJ.
	if got := d.EnergyMillijoules(c); math.Abs(got-2.4) > 1e-9 {
		t.Errorf("Energy = %v, want 2.4", got)
	}
}

func TestZeroCostIsFree(t *testing.T) {
	d := NewEdison()
	if d.TimeMillis(Cost{}) != 0 || d.EnergyMillijoules(Cost{}) != 0 {
		t.Error("zero cost should take zero time/energy")
	}
}

func TestEdisonMagnitudesPlausible(t *testing.T) {
	// The calibration target (EXPERIMENTS.md): one 5-layer 512-wide forward
	// pass of ~2.9 MFLOPs lands in the 10–20 ms band, so MCDrop-50 lands in
	// the paper's 500–900 ms band.
	d := NewEdison()
	pass := Cost{DenseFLOPs: 2_900_000, ElementOps: 6 * 512, RandomDraws: 4 * 512}
	ms := d.TimeMillis(pass)
	if ms < 8 || ms > 25 {
		t.Errorf("single pass modeled at %v ms, want 8-25", ms)
	}
	mc50 := d.TimeMillis(pass.Scale(50))
	if mc50 < 400 || mc50 > 1250 {
		t.Errorf("MCDrop-50 modeled at %v ms, want 400-1250 (paper's band)", mc50)
	}
}

// Property: time and energy are additive in cost and proportional to each
// other by the constant power.
func TestPropertyLinearity(t *testing.T) {
	d := NewEdison()
	f := func(a, b uint32) bool {
		ca := Cost{DenseFLOPs: int64(a), ElementOps: int64(a / 2), RandomDraws: int64(a / 4)}
		cb := Cost{DenseFLOPs: int64(b), ElementOps: int64(b / 3), RandomDraws: int64(b / 5)}
		sum := d.TimeMillis(ca.Add(cb))
		parts := d.TimeMillis(ca) + d.TimeMillis(cb)
		if math.Abs(sum-parts) > 1e-9*(1+parts) {
			return false
		}
		e := d.EnergyMillijoules(ca)
		tm := d.TimeMillis(ca)
		return math.Abs(e-tm*d.ActivePowerWatts) < 1e-9*(1+e)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
