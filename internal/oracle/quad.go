// Package oracle is the slow, obviously-correct reference implementation of
// the ApDeepSense forward pass, built as the numerical ground truth for
// differential testing of every fast path (per-sample Propagate, the blocked
// batched propagation, the multi-worker fan-out, and the serving coalescer).
//
// Where internal/core evaluates the truncated-Gaussian activation moments
// (paper eqs. 23–25) through erf/exp closed forms shared between adjacent
// pieces, the oracle evaluates the same integrals by adaptive Gauss–Legendre
// quadrature — a fully independent computation path whose error is
// controlled by panel subdivision, not by the correctness of the closed
// forms. Where internal/core runs blocked, register-tiled, SIMD-dispatched
// matrix kernels, the oracle runs naive loops in plain float64, optionally
// Kahan-compensated. Agreement between the two is therefore evidence, not
// tautology.
package oracle

import "math"

// glOrder is the Gauss–Legendre rule order per panel. Order 24 integrates
// polynomials up to degree 47 exactly; against the Gaussian weight it drives
// the panel error to machine precision once panels are a few sigma wide.
const glOrder = 24

// tailSigmas bounds the integration domain at mu ± tailSigmas·sigma. Beyond
// 12 sigma the standard normal density is below 1e-32, so the truncated tail
// contributes less than 1e-31 of relative mass — far below every tolerance
// in the harness.
const tailSigmas = 12.0

// maxDepth caps the adaptive bisection. 2^18 panels of the initial interval
// is unreachable in practice; the cap only guards against pathological
// integrands looping forever.
const maxDepth = 18

// glNodes and glWeights hold the order-glOrder Gauss–Legendre rule on
// [-1, 1], computed once at init by Newton iteration on the Legendre
// polynomial (standard Golub–Welsch-free construction: cosine initial
// guesses, P_n by recurrence, derivative from the n(zP_n − P_{n−1})/(z²−1)
// identity).
var glNodes, glWeights = legendre(glOrder)

func legendre(n int) (nodes, weights []float64) {
	nodes = make([]float64, n)
	weights = make([]float64, n)
	for i := 0; i < (n+1)/2; i++ {
		// Chebyshev-like initial guess for the i-th positive root.
		z := math.Cos(math.Pi * (float64(i) + 0.75) / (float64(n) + 0.5))
		var pp float64
		for iter := 0; iter < 64; iter++ {
			p0, p1 := 1.0, 0.0
			for j := 0; j < n; j++ {
				p0, p1 = ((2*float64(j)+1)*z*p0-float64(j)*p1)/float64(j+1), p0
			}
			// p0 = P_n(z), p1 = P_{n−1}(z); P'_n = n(z·P_n − P_{n−1})/(z²−1).
			pp = float64(n) * (z*p0 - p1) / (z*z - 1)
			dz := p0 / pp
			z -= dz
			if math.Abs(dz) < 1e-15 {
				break
			}
		}
		nodes[i] = -z
		nodes[n-1-i] = z
		w := 2 / ((1 - z*z) * pp * pp)
		weights[i] = w
		weights[n-1-i] = w
	}
	return nodes, weights
}

// glPanel integrates g over [a, b] with the fixed-order rule.
func glPanel(g func(float64) float64, a, b float64) float64 {
	half := 0.5 * (b - a)
	mid := 0.5 * (a + b)
	var sum float64
	for i, x := range glNodes {
		sum += glWeights[i] * g(mid+half*x)
	}
	return sum * half
}

// adaptGL integrates g over [a, b] by adaptive bisection: a panel is
// accepted when the two-half estimate agrees with the whole-panel estimate
// within tol (absolute), otherwise both halves recurse with half the
// budget. For the smooth Gaussian-weighted integrands here, one or two
// levels typically suffice; the kinks of PWL integrands never appear inside
// a panel because callers split panels at the knots.
func adaptGL(g func(float64) float64, a, b, tol float64, depth int) float64 {
	whole := glPanel(g, a, b)
	m := 0.5 * (a + b)
	left := glPanel(g, a, m)
	right := glPanel(g, m, b)
	// The acceptance threshold cannot go below the roundoff floor of the
	// estimates themselves: once |left+right−whole| is dominated by the
	// rounding noise of evaluating exp(−u²/2) and summing values this large
	// (~16 ulp), subdividing further only burns panels without converging.
	floor := 3.5e-15 * (math.Abs(left) + math.Abs(right))
	if tol < floor {
		tol = floor
	}
	if diff := math.Abs(left + right - whole); diff <= tol || depth >= maxDepth {
		return left + right
	}
	return adaptGL(g, a, m, 0.5*tol, depth+1) + adaptGL(g, m, b, 0.5*tol, depth+1)
}

// Integrate computes ∫ g(x)·N(x; mu, sigma²) dx over [lo, hi] (either bound
// may be infinite) by adaptive Gauss–Legendre quadrature. The substitution
// x = mu + sigma·u turns it into ∫ g(mu+sigma·u)·φ(u) du over standardized
// coordinates — essential for numerical health: integrating in x-space with
// large |mu| and small sigma quantizes the quadrature nodes at ulp(mu),
// which perturbs the standardized z per node by ulp(mu)/sigma and buries the
// convergence signal in density noise. In u-space the nodes are exact and
// only g sees the (harmless, since g is Lipschitz) x-quantization. The
// domain is clipped to ±tailSigmas and pre-split into panels no wider than
// 2 so the density never varies by many orders of magnitude inside one
// panel; adaptive bisection then polishes each panel. tol is the absolute
// tolerance allotted to the whole interval.
func Integrate(g func(float64) float64, lo, hi, mu, sigma, tol float64) float64 {
	a := math.Max(-tailSigmas, (lo-mu)/sigma)
	b := math.Min(tailSigmas, (hi-mu)/sigma)
	if !(a < b) {
		return 0
	}
	weighted := func(u float64) float64 {
		return g(mu+sigma*u) * invSqrt2Pi * math.Exp(-0.5*u*u)
	}
	panels := int(math.Ceil((b - a) / 2))
	if panels < 1 {
		panels = 1
	}
	var sum float64
	step := (b - a) / float64(panels)
	for i := 0; i < panels; i++ {
		pa := a + float64(i)*step
		pb := pa + step
		if i == panels-1 {
			pb = b
		}
		sum += adaptGL(weighted, pa, pb, tol/float64(panels), 0)
	}
	return sum
}

// invSqrt2Pi is 1/sqrt(2π), duplicated from internal/stats on purpose: the
// oracle must not share numeric building blocks with the code under test.
const invSqrt2Pi = 0.3989422804014327
