package oracle

import (
	"math"
	"sort"

	"github.com/apdeepsense/apdeepsense/internal/core"
)

// ActMoments computes the mean and variance of f(X) for X ~ N(mu, variance)
// by quadrature: eqs. 12–26 of the paper evaluated by numerical integration
// instead of the erf/exp closed forms. breaks lists the points where f is
// not smooth (the PWL knots; nil for smooth activations) — the integration
// interval is split there so every quadrature panel sees a smooth integrand.
//
// The point-mass cutoff replicates core.SigmaFloor exactly: below the floor
// the fast paths shortcut to (f(mu), 0), and the oracle must apply the same
// contract or differ at the threshold by more than rounding error.
//
// The variance is computed in a second, centered pass — ∫ (f(x) − m)²·φ dx —
// rather than as E[f²] − m², so it cannot go negative and suffers no
// cancellation for tight distributions.
func ActMoments(f func(float64) float64, breaks []float64, mu, variance float64) (mean, vari float64) {
	sigma := math.Sqrt(variance)
	if sigma <= core.SigmaFloor*(1+math.Abs(mu)) {
		return f(mu), 0
	}

	// Characteristic magnitude of f over the bulk of the distribution, for
	// converting the relative quadrature target into the absolute tolerance
	// Integrate wants.
	scale := math.Max(1, math.Abs(f(mu)))
	if a := math.Abs(f(mu - 3*sigma)); a > scale {
		scale = a
	}
	if a := math.Abs(f(mu + 3*sigma)); a > scale {
		scale = a
	}
	const relTol = 1e-15

	segs := segments(breaks, mu, sigma)
	for i := 0; i+1 < len(segs); i++ {
		mean += Integrate(f, segs[i], segs[i+1], mu, sigma, relTol*scale)
	}
	centered := func(x float64) float64 {
		d := f(x) - mean
		return d * d
	}
	for i := 0; i+1 < len(segs); i++ {
		vari += Integrate(centered, segs[i], segs[i+1], mu, sigma, relTol*scale*scale)
	}
	return mean, vari
}

// segments returns the ascending split points covering (−∞, +∞): the finite
// breakpoints that fall inside the effective integration window plus the two
// infinities (Integrate clips those to mu ± tailSigmas·sigma itself).
func segments(breaks []float64, mu, sigma float64) []float64 {
	lo, hi := mu-tailSigmas*sigma, mu+tailSigmas*sigma
	out := make([]float64, 0, len(breaks)+2)
	out = append(out, math.Inf(-1))
	for _, b := range breaks {
		if b > lo && b < hi && !math.IsInf(b, 0) {
			out = append(out, b)
		}
	}
	out = append(out, math.Inf(1))
	sort.Float64s(out)
	return out
}
