package oracle

import (
	"fmt"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/nn"
)

// DenseMoments propagates a Gaussian through one dropout layer (paper
// eqs. 9–10) with naive triple loops in plain float64 — no blocking, no
// register tiling, no SIMD dispatch, no precomputed W². The per-output
// accumulation runs in ascending input order, the same mathematical order
// the fast kernels document (tensor.MulVecInto / MulInto accumulate each
// output element in strictly ascending k), so any difference between this
// and the fast dense step is a real kernel bug, not reassociation noise.
//
// The input-moment expressions are kept textually identical to
// core.DenseMoments — (μ²+σ²)p − μ²p², not the algebraically equal stable
// form μ²p(1−p) + σ²p — because eq. 10's floating-point semantics are part
// of the propagation contract; an oracle that reformulated them would
// "disagree" with a correct fast path wherever the expressions round apart.
func DenseMoments(g core.GaussianVec, l *nn.Layer) (core.GaussianVec, error) {
	return denseMoments(g, l, false)
}

// DenseMomentsKahan is DenseMoments with Neumaier-compensated accumulation.
// It is the higher-precision cross-check: the distance between the plain and
// compensated results bounds the summation error of the ascending-order
// accumulation itself, which in turn bounds how much of a fast-vs-oracle
// difference could be explained by rounding rather than by a bug.
func DenseMomentsKahan(g core.GaussianVec, l *nn.Layer) (core.GaussianVec, error) {
	return denseMoments(g, l, true)
}

func denseMoments(g core.GaussianVec, l *nn.Layer, kahan bool) (core.GaussianVec, error) {
	in, out := l.InDim(), l.OutDim()
	if g.Dim() != in {
		return core.GaussianVec{}, fmt.Errorf("oracle: dense input dim %d, want %d: %w", g.Dim(), in, core.ErrInput)
	}
	p := l.KeepProb
	muIn := make([]float64, in)
	varIn := make([]float64, in)
	for i := 0; i < in; i++ {
		mu, s2 := g.Mean[i], g.Var[i]
		muIn[i] = mu * p
		varIn[i] = (mu*mu+s2)*p - mu*mu*p*p
	}

	res := core.NewGaussianVec(out)
	for j := 0; j < out; j++ {
		var mSum, mComp, vSum, vComp float64
		for i := 0; i < in; i++ {
			w := l.W.Data[i*out+j]
			mSum, mComp = add(mSum, mComp, muIn[i]*w, kahan)
			vSum, vComp = add(vSum, vComp, varIn[i]*(w*w), kahan)
		}
		res.Mean[j] = mSum + mComp + l.B[j]
		v := vSum + vComp
		if v < 0 {
			v = 0
		}
		res.Var[j] = v
	}
	return res, nil
}

// add accumulates term into (sum, comp). Plain mode ignores the compensation
// slot entirely, reproducing the rounding sequence of a bare ascending loop;
// Kahan mode applies the Neumaier update, which keeps the branch correct
// when the incoming term exceeds the running sum.
func add(sum, comp, term float64, kahan bool) (float64, float64) {
	if !kahan {
		return sum + term, 0
	}
	t := sum + term
	if abs(sum) >= abs(term) {
		comp += (sum - t) + term
	} else {
		comp += (term - t) + sum
	}
	return t, comp
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
