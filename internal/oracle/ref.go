package oracle

import (
	"fmt"
	"math"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/piecewise"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// Ref is the reference forward pass over one network: the same PWL
// activation fits the fast Propagator builds (they define the function being
// propagated), but every moment evaluated by quadrature and every matmul by
// naive loops. Construct once per network, like a Propagator.
type Ref struct {
	net *nn.Network
	// pwl holds the per-layer PWL fits, built with the same piece counts as
	// core.NewPropagator so the oracle propagates the identical function.
	pwl []*piecewise.Func
	// pwlEval are linear-scan evaluators over the pieces — independent of
	// piecewise.Func.Eval's binary search, so the oracle does not reuse the
	// lookup logic under test.
	pwlEval []func(float64) float64
	// trueAct are the exact activations (math.Tanh etc.) for the
	// model-error reference ForwardTrue.
	trueAct []func(float64) float64
	// breaks are the finite PWL knots per layer (quadrature split points).
	breaks [][]float64
	// supErr is the measured sup-norm PWL fit error per layer, the per-piece
	// bound feeding ErrorBudget.
	supErr []float64
	// lips is the Lipschitz constant of each layer's PWL fit (max |k_p|),
	// the mean sensitivity entering the conditioning budget.
	lips []float64
	// kahan selects compensated dense accumulation for both forward passes.
	kahan bool
}

// NewRef builds the reference for net with the same PWL piece counts a
// core.Propagator would use. kahan selects Neumaier-compensated dense sums.
func NewRef(net *nn.Network, opts core.Options, kahan bool) (*Ref, error) {
	layers := net.Layers()
	r := &Ref{
		net:     net,
		pwl:     make([]*piecewise.Func, len(layers)),
		pwlEval: make([]func(float64) float64, len(layers)),
		trueAct: make([]func(float64) float64, len(layers)),
		breaks:  make([][]float64, len(layers)),
		supErr:  make([]float64, len(layers)),
		lips:    make([]float64, len(layers)),
		kahan:   kahan,
	}
	opts.TanhPieces = defaultPieces(opts.TanhPieces)
	opts.SigmoidPieces = defaultPieces(opts.SigmoidPieces)
	for i, l := range layers {
		var (
			f   *piecewise.Func
			err error
		)
		switch l.Act {
		case nn.ActIdentity:
			f = piecewise.Identity()
			r.trueAct[i] = func(x float64) float64 { return x }
		case nn.ActReLU:
			f = piecewise.ReLU()
			r.trueAct[i] = func(x float64) float64 { return math.Max(0, x) }
		case nn.ActLeakyReLU:
			f = piecewise.LeakyReLU(nn.LeakyAlpha)
			r.trueAct[i] = func(x float64) float64 {
				if x < 0 {
					return nn.LeakyAlpha * x
				}
				return x
			}
		case nn.ActTanh:
			f, err = piecewise.Tanh(opts.TanhPieces)
			r.trueAct[i] = math.Tanh
		case nn.ActSigmoid:
			f, err = piecewise.Sigmoid(opts.SigmoidPieces)
			r.trueAct[i] = func(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
		default:
			err = fmt.Errorf("unsupported activation %v: %w", l.Act, core.ErrInput)
		}
		if err != nil {
			return nil, fmt.Errorf("oracle: layer %d: %w", i, err)
		}
		r.pwl[i] = f
		r.pwlEval[i] = scanEval(f.Pieces())
		r.lips[i] = f.MaxAbsSlope()
		for _, k := range f.Knots() {
			if !math.IsInf(k, 0) {
				r.breaks[i] = append(r.breaks[i], k)
			}
		}
		// Measured sup-norm fit error. The dense sample over ±20 covers the
		// interpolation region and enough of the tails that the remaining
		// asymptote gap beyond the window is below 1e-15 for tanh/sigmoid;
		// ReLU and identity are exactly PWL, so their error is zero.
		switch l.Act {
		case nn.ActTanh, nn.ActSigmoid:
			r.supErr[i] = f.SupError(r.trueAct[i], -20, 20, 40001)
		}
	}
	return r, nil
}

func defaultPieces(n int) int {
	if n == 0 {
		return 7
	}
	return n
}

// scanEval builds a linear-scan PWL evaluator from a piece list.
func scanEval(pieces []piecewise.Piece) func(float64) float64 {
	return func(x float64) float64 {
		for _, p := range pieces {
			if x < p.B || math.IsInf(p.B, 1) {
				return p.K*x + p.C
			}
		}
		last := pieces[len(pieces)-1]
		return last.K*x + last.C
	}
}

// PWL returns the layer-i activation fit the reference propagates (the same
// fit the fast Propagator uses).
func (r *Ref) PWL(i int) *piecewise.Func { return r.pwl[i] }

// SupErr returns the measured sup-norm PWL fit error of layer i's
// activation (zero for ReLU/identity).
func (r *Ref) SupErr(i int) float64 { return r.supErr[i] }

// CondBudget is an a-priori absolute bound on the floating-point
// conditioning error the fast path's *closed forms* may legitimately
// accumulate relative to the oracle on one specific input — distinct from
// Budget, which bounds the PWL *model* error against the exact activations.
//
// The closed forms assemble activation variances from μ²-scale second-moment
// terms and means from erf differences between adjacent knots, so at
// pre-activation moment scale S = max_j(|μ_j| + 12σ_j) they can round away
// ~eps·S (mean) and ~eps·S² (variance) per unit, where the oracle's
// standardized quadrature and centered variance pass lose only ~eps·|result|.
// The budget injects condEps·S and condEps·S² at every non-identity
// activation (condEps is hundreds of ulps — generous headroom over the
// handful of additions each closed form performs) and propagates the running
// error with the same layer sensitivities ErrorBudget uses, evaluated on the
// actual moments of this pass rather than worst-case assumptions.
type CondBudget struct {
	Mean, Var float64
}

// condEps converts a pre-activation moment scale into the injected per-unit
// conditioning error: ~4500 ulps, covering the piece-count × operation-count
// product of the closed forms with two orders of magnitude to spare (the
// worst observed ratio on adversarial inputs is ~3e5 below this bound).
const condEps = 1e-12

// Forward runs the reference pass over a plain input: naive dense moments
// plus quadrature moments of the PWL activations. This is the differential
// ground truth for the fast paths — it propagates the *same function* they
// do, so agreement is expected to quadrature + rounding precision, for every
// activation. Use ForwardCond to also receive the conditioning budget that
// turns that expectation into a checkable tolerance at any input scale.
func (r *Ref) Forward(x tensor.Vector) (core.GaussianVec, error) {
	g, _, err := r.ForwardCond(x)
	return g, err
}

// ForwardCond is Forward returning the conditioning budget alongside the
// moments: the fast path must match the returned moments within
// rel·max(1, |want|) + budget for a small fixed rel (internal/proptest pins
// rel = 1e-9).
func (r *Ref) ForwardCond(x tensor.Vector) (core.GaussianVec, CondBudget, error) {
	if len(x) != r.net.InputDim() {
		return core.GaussianVec{}, CondBudget{}, fmt.Errorf("oracle: input dim %d, want %d: %w", len(x), r.net.InputDim(), core.ErrInput)
	}
	return r.forward(core.Deterministic(x), r.pwlEval, r.breaks)
}

// ForwardFrom is Forward starting from an already-Gaussian input (the
// PropagateFrom counterpart, covering degenerate σ→0 and wide-σ inputs).
func (r *Ref) ForwardFrom(g core.GaussianVec) (core.GaussianVec, error) {
	out, _, err := r.ForwardFromCond(g)
	return out, err
}

// ForwardFromCond is ForwardFrom returning the conditioning budget.
func (r *Ref) ForwardFromCond(g core.GaussianVec) (core.GaussianVec, CondBudget, error) {
	if g.Dim() != r.net.InputDim() {
		return core.GaussianVec{}, CondBudget{}, fmt.Errorf("oracle: input dim %d, want %d: %w", g.Dim(), r.net.InputDim(), core.ErrInput)
	}
	return r.forward(g.Clone(), r.pwlEval, r.breaks)
}

// ForwardTrue runs the reference pass with the *exact* activations (tanh,
// logistic) instead of their PWL fits. The distance between a fast path and
// ForwardTrue is the PWL model error; ErrorBudget bounds it a priori from
// the measured per-layer sup-norm fit errors.
func (r *Ref) ForwardTrue(x tensor.Vector) (core.GaussianVec, error) {
	if len(x) != r.net.InputDim() {
		return core.GaussianVec{}, fmt.Errorf("oracle: input dim %d, want %d: %w", len(x), r.net.InputDim(), core.ErrInput)
	}
	// The rectifier kink at 0 still needs a panel split; smooth activations
	// need no splits.
	breaks := make([][]float64, len(r.pwl))
	for i, l := range r.net.Layers() {
		if l.Act == nn.ActReLU || l.Act == nn.ActLeakyReLU {
			breaks[i] = []float64{0}
		}
	}
	g, _, err := r.forward(core.Deterministic(x), r.trueAct, breaks)
	return g, err
}

func (r *Ref) forward(g core.GaussianVec, acts []func(float64) float64, breaks [][]float64) (core.GaussianVec, CondBudget, error) {
	return r.forwardFromSeed(g, acts, breaks, 0, 0)
}

// forwardFromSeed is forward with an incoming error budget already
// accumulated by an upstream stage (a conv stack or recurrence feeding this
// network as its head): the seed (dMu, dVar) is amplified and added to by
// each layer exactly as the layer-local budget recursion does for the
// running error of a standalone pass.
func (r *Ref) forwardFromSeed(g core.GaussianVec, acts []func(float64) float64, breaks [][]float64, seedMu, seedVar float64) (core.GaussianVec, CondBudget, error) {
	sqrt2OverPi := math.Sqrt(2 / math.Pi)
	dMu, dVar := seedMu, seedVar
	for i, l := range r.net.Layers() {
		// Dense-step sensitivity on the running error, evaluated before the
		// step consumes the input moments: the fast dense step is
		// bit-identical to the oracle's, so it only amplifies incoming error
		// (via the row norms and the dropout input-moment map), never adds.
		maxAbsMu := 0.0
		for _, m := range g.Mean {
			if a := math.Abs(m); a > maxAbsMu {
				maxAbsMu = a
			}
		}
		p := l.KeepProb
		a1, a2 := weightNorms(l)
		dMu, dVar = p*a1*dMu, a2*(p*dVar+p*(1-p)*dMu*(2*maxAbsMu+dMu))

		var err error
		g, err = denseMoments(g, l, r.kahan)
		if err != nil {
			return core.GaussianVec{}, CondBudget{}, fmt.Errorf("oracle: layer %d: %w", i, err)
		}

		// Pre-activation moment scale S and output-range bound W for the
		// activation-step sensitivities. Bounded activations cap W at their
		// range width; relu/identity ranges follow the effective support
		// |μ| + tailSigmas·σ of the pre-activation Gaussians.
		var scale float64
		for j := range g.Mean {
			if s := math.Abs(g.Mean[j]) + tailSigmas*math.Sqrt(g.Var[j]); s > scale {
				scale = s
			}
		}
		lip := r.lips[i]
		width := lip * scale
		switch l.Act {
		case nn.ActTanh:
			width = 2
		case nn.ActSigmoid:
			width = 1
		}

		for j := range g.Mean {
			g.Mean[j], g.Var[j] = ActMoments(acts[i], breaks[i], g.Mean[j], g.Var[j])
		}

		// Identity is applied exactly by both paths: the running error only
		// passes through. Every other activation's closed forms inject fresh
		// conditioning noise at the scale of the moments they consumed.
		if l.Act == nn.ActIdentity {
			continue
		}
		dSig := math.Sqrt(dVar)
		dMu, dVar =
			condEps*scale+lip*dMu+lip*sqrt2OverPi*dSig,
			condEps*scale*scale+2*lip*width*dMu+2*lip*width*sqrt2OverPi*dSig
	}
	return g, CondBudget{Mean: dMu, Var: dVar}, nil
}
