package oracle

import (
	"math"
	"math/rand"
	"testing"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/piecewise"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// TestLegendreRule pins the generated Gauss–Legendre rule: weights sum to
// the interval length and the rule integrates polynomials of its design
// degree exactly.
func TestLegendreRule(t *testing.T) {
	var wsum float64
	for _, w := range glWeights {
		wsum += w
	}
	if math.Abs(wsum-2) > 1e-14 {
		t.Errorf("weights sum to %v, want 2", wsum)
	}
	// ∫_{-1}^{1} x^k dx = 2/(k+1) for even k, 0 for odd; exact through
	// degree 2·glOrder−1.
	for k := 0; k < 2*glOrder; k++ {
		got := glPanel(func(x float64) float64 { return math.Pow(x, float64(k)) }, -1, 1)
		want := 0.0
		if k%2 == 0 {
			want = 2 / float64(k+1)
		}
		if math.Abs(got-want) > 1e-13 {
			t.Errorf("∫x^%d = %v, want %v", k, got, want)
		}
	}
}

// TestIntegrateGaussianMass checks the weighted integrator against closed
// moments of the Gaussian itself: mass 1, mean mu, variance sigma².
func TestIntegrateGaussianMass(t *testing.T) {
	for _, c := range []struct{ mu, sigma float64 }{{0, 1}, {3.7, 0.2}, {-120, 15}, {1e6, 1e-3}} {
		one := func(float64) float64 { return 1 }
		if got := Integrate(one, math.Inf(-1), math.Inf(1), c.mu, c.sigma, 1e-15); math.Abs(got-1) > 1e-13 {
			t.Errorf("mass(N(%v,%v)) = %v", c.mu, c.sigma, got)
		}
		id := func(x float64) float64 { return x }
		scale := math.Max(1, math.Abs(c.mu))
		if got := Integrate(id, math.Inf(-1), math.Inf(1), c.mu, c.sigma, 1e-15*scale); math.Abs(got-c.mu) > 1e-12*scale {
			t.Errorf("mean(N(%v,%v)) = %v", c.mu, c.sigma, got)
		}
	}
}

// TestActMomentsIdentityAndConstant: closed-form anchors that need no other
// implementation — identity maps (μ, σ²) to itself, a constant to (c, 0).
func TestActMomentsIdentityAndConstant(t *testing.T) {
	m, v := ActMoments(func(x float64) float64 { return x }, nil, 1.3, 2.6)
	if math.Abs(m-1.3) > 1e-13 || math.Abs(v-2.6) > 1e-12 {
		t.Errorf("identity moments = (%v, %v), want (1.3, 2.6)", m, v)
	}
	m, v = ActMoments(func(float64) float64 { return 4.2 }, nil, -0.5, 0.9)
	if math.Abs(m-4.2) > 1e-13 || math.Abs(v) > 1e-13 {
		t.Errorf("constant moments = (%v, %v), want (4.2, 0)", m, v)
	}
}

// TestActMomentsVsReLUClosedForm cross-validates quadrature against the
// independent rectified-Gaussian closed form (core.ReLUMoments), including
// far-tail means where the mass sits almost entirely on one piece.
func TestActMomentsVsReLUClosedForm(t *testing.T) {
	relu := func(x float64) float64 { return math.Max(0, x) }
	for _, mu := range []float64{-9, -2.5, -0.1, 0, 0.1, 2.5, 9, 1e5} {
		for _, sigma := range []float64{0.05, 1, 7} {
			gm, gv := ActMoments(relu, []float64{0}, mu, sigma*sigma)
			wm, wv := core.ReLUMoments(mu, sigma*sigma)
			scale := math.Max(1, math.Abs(wm))
			if math.Abs(gm-wm) > 1e-11*scale {
				t.Errorf("mu=%v sigma=%v: quad mean %v, closed form %v", mu, sigma, gm, wm)
			}
			// The closed form computes variance as E[x²]−mean², which
			// cancels catastrophically when |mu| ≫ sigma: its own error is
			// ~ulp(mu²), and the quadrature (which integrates (x−m)² directly)
			// is the more accurate side there.
			vtol := 1e-10*math.Max(1, wv) + 4e-16*(mu*mu+sigma*sigma)
			if math.Abs(gv-wv) > vtol {
				t.Errorf("mu=%v sigma=%v: quad var %v, closed form %v", mu, sigma, gv, wv)
			}
		}
	}
}

// TestActMomentsVsErfClosedForms is the central cross-validation: quadrature
// moments of the 7-piece tanh and sigmoid PWL fits must agree with the
// erf/exp closed forms (core.ActivationMoments, eqs. 23–25) to quadrature
// precision across a (μ, σ) grid that covers saturated tails, knot-straddling
// bulks, and near-point-mass inputs.
func TestActMomentsVsErfClosedForms(t *testing.T) {
	tanh7, err := piecewise.Tanh(7)
	if err != nil {
		t.Fatal(err)
	}
	sig7, err := piecewise.Sigmoid(7)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []*piecewise.Func{tanh7, sig7, piecewise.ReLU(), piecewise.Identity()} {
		eval := scanEval(f.Pieces())
		var breaks []float64
		for _, k := range f.Knots() {
			if !math.IsInf(k, 0) {
				breaks = append(breaks, k)
			}
		}
		for _, mu := range []float64{-30, -8, -2, -0.3, 0, 0.3, 2, 8, 30} {
			for _, sigma := range []float64{1e-9, 0.01, 0.5, 1, 3, 20} {
				gm, gv := ActMoments(eval, breaks, mu, sigma*sigma)
				wm, wv := core.ActivationMoments(mu, sigma*sigma, f)
				scale := math.Max(1, math.Abs(wm))
				if math.Abs(gm-wm) > 1e-12*scale {
					t.Errorf("%s mu=%v sigma=%v: quad mean %v, erf %v", f.Name(), mu, sigma, gm, wm)
				}
				vscale := math.Max(1, wv)
				if math.Abs(gv-wv) > 1e-11*vscale {
					t.Errorf("%s mu=%v sigma=%v: quad var %v, erf %v", f.Name(), mu, sigma, gv, wv)
				}
			}
		}
	}
}

// TestActMomentsPointMassCutoff pins the shared point-mass contract: at and
// below core.SigmaFloor the oracle takes the same shortcut as the fast
// paths, so the two sides agree exactly at the threshold.
func TestActMomentsPointMassCutoff(t *testing.T) {
	f := func(x float64) float64 { return math.Max(0, x) }
	mu := 2.0
	floor := core.SigmaFloor * (1 + mu)
	m, v := ActMoments(f, []float64{0}, mu, floor*floor)
	if m != mu || v != 0 {
		t.Errorf("at floor: got (%v, %v), want point mass (%v, 0)", m, v, mu)
	}
}

func testLayer(t *testing.T, seed int64, in, out int, keep float64, act nn.Activation) *nn.Layer {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	w := tensor.NewMatrix(in, out)
	w.RandomNormal(rng, 0, 0.5)
	b := tensor.NewVector(out)
	for i := range b {
		b[i] = rng.NormFloat64() * 0.1
	}
	return &nn.Layer{W: w, B: b, Act: act, KeepProb: keep}
}

// TestDenseMomentsBitIdenticalToCore: the naive ascending-order dense loops
// must reproduce core.DenseMoments (MulVecInto + pre-squared W²) bit for
// bit — same formulas, same accumulation order, so zero tolerance.
func TestDenseMomentsBitIdenticalToCore(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, shape := range [][2]int{{1, 1}, {3, 7}, {64, 33}, {130, 5}} {
		l := testLayer(t, 77, shape[0], shape[1], 0.8, nn.ActReLU)
		g := core.NewGaussianVec(shape[0])
		for i := range g.Mean {
			g.Mean[i] = rng.NormFloat64() * 3
			g.Var[i] = rng.Float64()
		}
		want, err := core.DenseMoments(g, l, l.W.Square())
		if err != nil {
			t.Fatal(err)
		}
		got, err := DenseMoments(g, l)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want.Mean {
			if math.Float64bits(got.Mean[j]) != math.Float64bits(want.Mean[j]) {
				t.Fatalf("shape %v: mean[%d] %v != core %v", shape, j, got.Mean[j], want.Mean[j])
			}
			if math.Float64bits(got.Var[j]) != math.Float64bits(want.Var[j]) {
				t.Fatalf("shape %v: var[%d] %v != core %v", shape, j, got.Var[j], want.Var[j])
			}
		}
	}
}

// TestDenseMomentsKahanCloseToPlain bounds the summation error of the plain
// ascending accumulation: the compensated sum may differ only within the
// classic n·ε·Σ|terms| envelope.
func TestDenseMomentsKahanCloseToPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	in, out := 300, 40
	l := testLayer(t, 78, in, out, 0.9, nn.ActTanh)
	g := core.NewGaussianVec(in)
	for i := range g.Mean {
		g.Mean[i] = rng.NormFloat64()
		g.Var[i] = rng.Float64()
	}
	plain, err := DenseMoments(g, l)
	if err != nil {
		t.Fatal(err)
	}
	kahan, err := DenseMomentsKahan(g, l)
	if err != nil {
		t.Fatal(err)
	}
	// Σ|terms| ≲ in·max|μ·w| ≈ in·4; envelope with generous headroom.
	envelope := float64(in) * 4 * float64(in) * 2.3e-16
	for j := range plain.Mean {
		if d := math.Abs(plain.Mean[j] - kahan.Mean[j]); d > envelope {
			t.Errorf("mean[%d]: plain/kahan differ by %v (> %v)", j, d, envelope)
		}
		if d := math.Abs(plain.Var[j] - kahan.Var[j]); d > envelope {
			t.Errorf("var[%d]: plain/kahan differ by %v (> %v)", j, d, envelope)
		}
	}
}

// TestErrorBudgetBoundsObservedModelError: the a-priori budget must dominate
// the actually observed distance between the fast path and the exact-
// activation reference on seeded tanh and sigmoid networks — the soundness
// check of the tolerance contract itself.
func TestErrorBudgetBoundsObservedModelError(t *testing.T) {
	for _, act := range []nn.Activation{nn.ActTanh, nn.ActSigmoid} {
		net, err := nn.New(nn.Config{
			InputDim: 6, Hidden: []int{16, 12}, OutputDim: 3,
			Activation: act, OutputActivation: nn.ActIdentity,
			KeepProb: 0.85, Seed: 41,
		})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := NewRef(net, core.Options{}, false)
		if err != nil {
			t.Fatal(err)
		}
		budget, err := ref.ErrorBudget()
		if err != nil {
			t.Fatal(err)
		}
		if budget.Mean <= 0 || budget.Var <= 0 || math.IsInf(budget.Mean, 0) {
			t.Fatalf("%v: degenerate budget %+v", act, budget)
		}
		prop, err := core.NewPropagator(net, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(9))
		for trial := 0; trial < 5; trial++ {
			x := make(tensor.Vector, 6)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			fast, err := prop.Propagate(x)
			if err != nil {
				t.Fatal(err)
			}
			exact, err := ref.ForwardTrue(x)
			if err != nil {
				t.Fatal(err)
			}
			for j := range fast.Mean {
				if d := math.Abs(fast.Mean[j] - exact.Mean[j]); d > budget.Mean {
					t.Errorf("%v trial %d: |Δmean[%d]| = %v exceeds budget %v", act, trial, j, d, budget.Mean)
				}
				if d := math.Abs(fast.Var[j] - exact.Var[j]); d > budget.Var {
					t.Errorf("%v trial %d: |Δvar[%d]| = %v exceeds budget %v", act, trial, j, d, budget.Var)
				}
			}
		}
	}
}

// TestErrorBudgetRejectsReLUHidden: ReLU hidden layers have no bounded range
// for the variance sensitivities; the budget must refuse rather than return
// an unsound number.
func TestErrorBudgetRejectsReLUHidden(t *testing.T) {
	net, err := nn.New(nn.Config{
		InputDim: 4, Hidden: []int{8}, OutputDim: 2,
		Activation: nn.ActReLU, OutputActivation: nn.ActIdentity,
		KeepProb: 0.9, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewRef(net, core.Options{}, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.ErrorBudget(); err == nil {
		t.Error("ErrorBudget accepted a ReLU hidden network")
	}
}
