package oracle

import (
	"fmt"
	"math"

	"github.com/apdeepsense/apdeepsense/internal/nn"
)

// Budget is a sound, a-priori bound on how far the PWL-based moment
// propagation may drift from the exact-activation reference (ForwardTrue) at
// the network output, derived only from the measured per-layer sup-norm fit
// errors and the network's weights — never from running either pass.
//
//	|mean_pwl − mean_true|  ≤ Mean   (per output unit)
//	|var_pwl  − var_true|   ≤ Var
//
// It is the tolerance contract of the tanh/sigmoid differential tests: ReLU
// is exactly PWL so its budget is identically zero and the tight quadrature
// tolerance applies instead.
type Budget struct {
	Mean, Var float64
}

// Per-activation constants of the budget recursion: L is the Lipschitz
// constant of the exact activation, W bounds |f(x) − E[f(X)]| (the range
// width for bounded activations), and both enter the global first-order
// sensitivities of the Gaussian moment maps:
//
//	|∂E[f]/∂μ| ≤ L          |∂E[f]/∂σ| ≤ L·√(2/π)
//	|∂Var[f]/∂μ| = 2|Cov(f'(X), f(X))| ≤ 2·L·W
//	|∂Var[f]/∂σ| = 2|E[(f−m)·f'(X)·Z]| ≤ 2·L·W·√(2/π)
//
// and the direct PWL substitution errors at fixed (μ, σ):
//
//	|E[g] − E[f]| ≤ ε,   |Var[g] − Var[f]| ≤ 4ε(W + ε)   for sup|g−f| ≤ ε
//
// (the variance bound from (f−m+δ)² expansion with |δ| ≤ 2ε).
type actBounds struct {
	L, W float64
}

// ErrorBudget propagates the measured PWL sup-norm errors through the
// network layer by layer. Supported shapes: hidden activations tanh or
// sigmoid (bounded range, which the variance sensitivities need) and a
// final layer with identity, tanh, or sigmoid activation. Networks with
// ReLU hidden layers don't need a budget — their PWL error is zero and the
// tight quadrature contract applies end to end.
//
// The recursion tracks (dMu, dVar), sup-norm bounds over units on the mean
// and variance drift. Through a dense layer with keep probability p
// (eqs. 9–10, all linear in the input moments):
//
//	dMu'  = p·A₁·dMu                      A₁ = max_j Σ_i |W_ij|
//	dVar' = A₂·(p·dVar + p(1−p)·(2·dMu + dMu²))   A₂ = max_j Σ_i W²_ij
//
// using |μ_i| ≤ 1 for post-tanh/sigmoid inputs (the first layer enters with
// dMu = dVar = 0, so its unbounded raw inputs never multiply an error).
// Through an activation with fit error ε, using |Δσ| ≤ √dVar (concavity of
// √ along the segment):
//
//	dMu'  = ε + L·dMu + L·√(2/π)·√dVar
//	dVar' = 4ε(W+ε) + 2LW·dMu + 2LW·√(2/π)·√dVar
func (r *Ref) ErrorBudget() (Budget, error) {
	layers := r.net.Layers()
	sqrt2OverPi := math.Sqrt(2 / math.Pi)
	var dMu, dVar float64
	for i, l := range layers {
		ab, last := actBoundsFor(l.Act), i == len(layers)-1
		if ab.W == 0 && !(last && l.Act == nn.ActIdentity) {
			return Budget{}, fmt.Errorf("oracle: error budget unsupported for %v at layer %d (bounded hidden activations only)", l.Act, i)
		}

		// Dense step. |μ̂² − μ²| ≤ dMu·(2 + dMu) with |μ| ≤ 1 bounded by the
		// previous (tanh/sigmoid) activation; vacuous at layer 0 where dMu=0.
		p := l.KeepProb
		a1, a2 := weightNorms(l)
		dMu = p * a1 * dMu
		dVar = a2 * (p*dVar + p*(1-p)*dMu*(2+dMu))

		// Activation step.
		if l.Act == nn.ActIdentity {
			continue // exact: E[X] = μ, Var[X] = σ², both pass through.
		}
		eps := r.supErr[i]
		dSig := math.Sqrt(dVar)
		newMu := eps + ab.L*dMu + ab.L*sqrt2OverPi*dSig
		newVar := 4*eps*(ab.W+eps) + 2*ab.L*ab.W*dMu + 2*ab.L*ab.W*sqrt2OverPi*dSig
		dMu, dVar = newMu, newVar
	}
	return Budget{Mean: dMu, Var: dVar}, nil
}

func actBoundsFor(a nn.Activation) actBounds {
	switch a {
	case nn.ActTanh:
		// f' = 1 − tanh² ≤ 1; |f − m| ≤ 2 (range [−1, 1]).
		return actBounds{L: 1, W: 2}
	case nn.ActSigmoid:
		// f' = s(1−s) ≤ 1/4; |f − m| ≤ 1 (range [0, 1]).
		return actBounds{L: 0.25, W: 1}
	default:
		return actBounds{}
	}
}

// weightNorms returns A₁ = max_j Σ_i |W_ij| (the ∞→∞ gain on mean drift for
// row-vector × matrix) and A₂ = max_j Σ_i W²_ij (the gain on variance drift
// through the squared-weight matmul of eq. 10).
func weightNorms(l *nn.Layer) (a1, a2 float64) {
	in, out := l.InDim(), l.OutDim()
	for j := 0; j < out; j++ {
		var s1, s2 float64
		for i := 0; i < in; i++ {
			w := l.W.Data[i*out+j]
			s1 += math.Abs(w)
			s2 += w * w
		}
		if s1 > a1 {
			a1 = s1
		}
		if s2 > a2 {
			a2 = s2
		}
	}
	return a1, a2
}
