package oracle

import (
	"fmt"
	"math"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/quantize"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// QuantBudget is a sound, a-priori absolute bound on how far the fixed-point
// propagator (internal/qprop) may drift from the oracle reference on one
// specific input and one specific quantized model:
//
//	|mean_quant − mean_oracle| ≤ rel·max(1, |mean_oracle|) + Mean
//	|var_quant  − var_oracle | ≤ rel·max(1, |var_oracle|)  + Var
//
// for the same small fixed rel the float fast paths use (internal/proptest
// pins rel = 1e-9). The budget is TOTAL: it composes the quantization error
// sources with the same floating-point conditioning allowance CondBudget
// grants the float paths, so it is the one number to compare against — do
// not add a separately-obtained CondBudget on top.
//
// Every term is computed from measured quantities, never hand-tuned:
//
//   - Weight reconstruction residuals d_ij = W_ij − s_j·q_ij (and the
//     squared-panel analogue against quantize.Layer.SquareCodes) are measured
//     exactly per layer and weighted by the reference activations actually
//     flowing through this pass.
//   - Activation quantization rounds each prepped moment by at most half the
//     dynamic per-row scale; the scale qprop will pick is bounded from the
//     reference row maxima plus the running drift (the quantized path sees
//     moments at most the running drift away from the reference ones).
//   - Float rounding of the dequantize step and the oracle's own dense sums
//     is covered by the same condEps·scale injections CondBudget uses.
//
// The drift then composes through the remaining depth with exactly the
// layer sensitivities of the conditioning recursion (Ref.forward), evaluated
// on the actual moments of this pass.
type QuantBudget struct {
	Mean, Var float64
}

// qaMax mirrors qprop.QAMax, the dynamic activation-quantization ceiling.
// Kept as a local constant so the oracle does not depend on the package
// under test; the differential suite in internal/proptest would catch a
// divergence immediately (the budget would collapse or inflate 2×).
const qaMax = 32767

// quantHeadroom covers the float rounding of computing the budget
// ingredients themselves (residual sums, norms, scale quotients): every sum
// here is a few hundred nonnegative terms, so relative error stays below
// ~1e-13 and a 1e-9 multiplicative margin is orders of magnitude of slack.
const quantHeadroom = 1 + 1e-9

// quantFloor absorbs qprop's subnormal fallback: a row whose max/QAMax
// quotient underflows quantizes at the row maximum itself (absolute error
// below ~1e-319), so an absolute floor of 1e-300 on the scale bound keeps
// the budget sound without tracking subnormal arithmetic exactly.
const quantFloor = 1e-300

// ForwardQuantCond runs the reference pass over a plain input and returns,
// alongside the oracle moments, the conditioning budget of the float fast
// paths and the total quantization budget for qm (see QuantBudget). qm must
// have been produced for the same network shape (same dims, activations and
// keep probabilities as r's network); its codes, scales and biases are taken
// as-is — the residual terms measure whatever reconstruction error they
// carry, so the budget is valid even for a model not produced by
// quantize.Quantize on r's exact weights.
func (r *Ref) ForwardQuantCond(qm *quantize.Model, x tensor.Vector) (core.GaussianVec, CondBudget, QuantBudget, error) {
	if len(x) != r.net.InputDim() {
		return core.GaussianVec{}, CondBudget{}, QuantBudget{}, fmt.Errorf("oracle: input dim %d, want %d: %w", len(x), r.net.InputDim(), core.ErrInput)
	}
	if err := r.checkQuantModel(qm); err != nil {
		return core.GaussianVec{}, CondBudget{}, QuantBudget{}, err
	}
	return r.forwardQuant(qm, core.Deterministic(x))
}

// ForwardFromQuantCond is ForwardQuantCond starting from an already-Gaussian
// input (the PropagateFrom / qprop.Run counterpart, covering degenerate σ→0
// and wide-σ inputs).
func (r *Ref) ForwardFromQuantCond(qm *quantize.Model, g core.GaussianVec) (core.GaussianVec, CondBudget, QuantBudget, error) {
	if g.Dim() != r.net.InputDim() {
		return core.GaussianVec{}, CondBudget{}, QuantBudget{}, fmt.Errorf("oracle: input dim %d, want %d: %w", g.Dim(), r.net.InputDim(), core.ErrInput)
	}
	if err := r.checkQuantModel(qm); err != nil {
		return core.GaussianVec{}, CondBudget{}, QuantBudget{}, err
	}
	return r.forwardQuant(qm, g.Clone())
}

// checkQuantModel verifies qm is structurally valid and shape-compatible
// with r's network. Weights may differ (the residuals measure that); shape,
// activation and keep probability must match or the budget recursion's
// sensitivities would be computed for the wrong propagation.
func (r *Ref) checkQuantModel(qm *quantize.Model) error {
	if qm == nil {
		return fmt.Errorf("oracle: nil quantized model: %w", core.ErrInput)
	}
	if err := qm.Validate(); err != nil {
		return fmt.Errorf("oracle: %w", err)
	}
	layers := r.net.Layers()
	if len(qm.Layers) != len(layers) {
		return fmt.Errorf("oracle: quantized model has %d layers, network %d: %w", len(qm.Layers), len(layers), core.ErrInput)
	}
	for i, l := range layers {
		q := &qm.Layers[i]
		if q.InDim != l.InDim() || q.OutDim != l.OutDim() {
			return fmt.Errorf("oracle: quantized layer %d dims %dx%d, network %dx%d: %w", i, q.InDim, q.OutDim, l.InDim(), l.OutDim(), core.ErrInput)
		}
		if q.Act != l.Act || q.KeepProb != l.KeepProb {
			return fmt.Errorf("oracle: quantized layer %d act/keep mismatch: %w", i, core.ErrInput)
		}
		// Same domain boundary qprop.New enforces: an overflowed squared
		// scale has no fixed-point propagation to bound.
		_, scales2 := q.SquareCodes()
		for j, s2 := range scales2 {
			if math.IsInf(s2, 0) {
				return fmt.Errorf("oracle: quantized layer %d squared-weight scale[%d] overflows float64: %w", i, j, core.ErrInput)
			}
		}
	}
	return nil
}

// forwardQuant is Ref.forward with a second drift recursion layered on top.
// (cMu, cVar) is the pure conditioning drift, identical to forward()'s.
// (tMu, tVar) is the TOTAL drift of the quantized path: conditioning plus
// quantization, tracked together because the dense variance sensitivity is
// superlinear in the mean drift (splitting the recursion would drop the
// cross term and undercount).
func (r *Ref) forwardQuant(qm *quantize.Model, g core.GaussianVec) (core.GaussianVec, CondBudget, QuantBudget, error) {
	// bump raises *dst to s, treating NaN as +Inf: a NaN ingredient (e.g.
	// 0·Inf from an overflowed residual against a zero activation) must
	// blow the budget up to "out of domain", never be silently dropped by
	// a false NaN comparison into a too-small finite budget.
	bump := func(dst *float64, s float64) {
		if math.IsNaN(s) {
			s = math.Inf(1)
		}
		if s > *dst {
			*dst = s
		}
	}
	sqrt2OverPi := math.Sqrt(2 / math.Pi)
	var cMu, cVar float64
	var tMu, tVar float64
	for i, l := range r.net.Layers() {
		q := &qm.Layers[i]
		in, out := l.InDim(), l.OutDim()
		p := l.KeepProb

		// Incoming mean scale, read before the dense step consumes g.
		maxAbsMu := 0.0
		for _, m := range g.Mean {
			if a := math.Abs(m); a > maxAbsMu {
				maxAbsMu = a
			}
		}

		// Conditioning drift through the dense step: amplify only (the float
		// fast dense step is bit-identical to the oracle's).
		a1, a2 := weightNorms(l)
		cMu, cVar = p*a1*cMu, a2*(p*cVar+p*(1-p)*cMu*(2*maxAbsMu+cMu))

		// Total drift through the dropout prep: the quantized path's prepped
		// moments sit within (tPrepMu, tPrepVar) of the reference ones.
		tPrepMu := p * tMu
		tPrepVar := p*tVar + p*(1-p)*tMu*(2*maxAbsMu+tMu)

		// Reference prepped moments, with the SAME IEEE expression the fast
		// paths evaluate (core.propagateRows and qprop.runRow share it), so
		// the residual weighting below uses the exact values qprop would see
		// on a drift-free input.
		am := make([]float64, in)
		av := make([]float64, in)
		maxA, maxV := 0.0, 0.0
		for k := 0; k < in; k++ {
			mu, s2 := g.Mean[k], g.Var[k]
			a := mu * p
			v := (mu*mu+s2)*p - mu*mu*p*p
			am[k] = a
			av[k] = v
			bump(&maxA, math.Abs(a))
			bump(&maxV, math.Abs(v))
		}

		// Measured quantized-weight norms and residual terms, per output
		// column, sup over columns:
		//
		//	Â₁ = max_j Σ_i |s_j·q_ij|          Â₂ = max_j Σ_i s2_j·q2_ij
		//	T1 = max_j Σ_i |am_i|·|W_ij − s_j·q_ij|
		//	T2 = max_j Σ_i |av_i|·|W²_ij − s2_j·q2_ij|
		//
		// using the same derived squared panel qprop packs (SquareCodes is
		// deterministic, so the oracle reproduces qprop's effective squared
		// weights exactly) and the float path's effective W² = fl(W·W).
		codes2, scales2 := q.SquareCodes()
		var hatA1, hatA2, t1, t2, maxB, dB float64
		for j := 0; j < out; j++ {
			s := q.Scales[j]
			s2 := scales2[j]
			var sA1, sA2, sT1, sT2 float64
			for k := 0; k < in; k++ {
				w := l.W.Data[k*out+j]
				wq := float64(q.W[k*out+j]) * s
				sA1 += math.Abs(wq)
				sT1 += math.Abs(am[k]) * math.Abs(w-wq)
				w2q := float64(codes2[k*out+j]) * s2
				sA2 += w2q
				sT2 += math.Abs(av[k]) * math.Abs(w*w-w2q)
			}
			bump(&hatA1, sA1)
			bump(&hatA2, sA2)
			bump(&t1, sT1)
			bump(&t2, sT2)
			bump(&maxB, math.Abs(q.B[j]))
			bump(&dB, math.Abs(q.B[j]-l.B[j]))
		}

		// Bound the dynamic per-row scales qprop will pick: its row maxima
		// are at most the reference maxima plus the running prep drift, and
		// the subnormal fallback is absorbed by the absolute floor.
		aScaleB := ((maxA+tPrepMu)/qaMax)*quantHeadroom + quantFloor
		vScaleB := ((maxV+tPrepVar)/qaMax)*quantHeadroom + quantFloor

		// Total drift after the dense step. Decomposing the quantized dot
		// against the reference one:
		//
		//	Σ (aScale·qa_k)(s_j·q_kj) − Σ am_k·W_kj
		//	  = Σ [(aScale·qa_k) − am_k]·(s_j·q_kj)   ≤ (tPrepMu + aScaleB/2)·Â₁
		//	  + Σ am_k·[(s_j·q_kj) − W_kj]            ≤ T1
		//
		// plus the bias residual and a condEps·scale allowance for the float
		// rounding of both paths' dequantize/summation (the result magnitude
		// is bounded by mScale). The variance line is identical against the
		// squared panel; its output clamp (v < 0 → 0) is shared by both
		// paths and 1-Lipschitz, so it never grows the drift.
		mScale := (maxA+tPrepMu+aScaleB)*hatA1 + maxB
		vScale := (maxV + tPrepVar + vScaleB) * hatA2
		tMu = ((tPrepMu+aScaleB/2)*hatA1+t1)*quantHeadroom + condEps*mScale + dB
		tVar = ((tPrepVar+vScaleB/2)*hatA2+t2)*quantHeadroom + condEps*vScale

		var err error
		g, err = denseMoments(g, l, r.kahan)
		if err != nil {
			return core.GaussianVec{}, CondBudget{}, QuantBudget{}, fmt.Errorf("oracle: layer %d: %w", i, err)
		}

		// Pre-activation moment scale for the activation sensitivities, as
		// in forward(); the quantized path's own moments sit within the
		// total drift of the reference ones, so its scale is bounded by
		// scaleQ and its output range width by widthQ.
		var scale float64
		for j := range g.Mean {
			if s := math.Abs(g.Mean[j]) + tailSigmas*math.Sqrt(g.Var[j]); s > scale {
				scale = s
			}
		}
		scaleQ := scale + tMu + tailSigmas*math.Sqrt(tVar)
		lip := r.lips[i]
		width := lip * scale
		widthQ := lip * scaleQ
		switch l.Act {
		case nn.ActTanh:
			width, widthQ = 2, 2
		case nn.ActSigmoid:
			width, widthQ = 1, 1
		}

		for j := range g.Mean {
			g.Mean[j], g.Var[j] = ActMoments(r.pwlEval[i], r.breaks[i], g.Mean[j], g.Var[j])
		}

		// Identity is applied exactly by both paths (the drift only passes
		// through); every other activation's closed forms inject fresh
		// conditioning noise at the scale of the moments they consumed —
		// for the quantized path, at its (drift-shifted) scale.
		if l.Act == nn.ActIdentity {
			continue
		}
		cSig := math.Sqrt(cVar)
		cMu, cVar =
			condEps*scale+lip*cMu+lip*sqrt2OverPi*cSig,
			condEps*scale*scale+2*lip*width*cMu+2*lip*width*sqrt2OverPi*cSig
		tSig := math.Sqrt(tVar)
		tMu, tVar =
			condEps*scaleQ+lip*tMu+lip*sqrt2OverPi*tSig,
			condEps*scaleQ*scaleQ+2*lip*widthQ*tMu+2*lip*widthQ*sqrt2OverPi*tSig
	}
	return g, CondBudget{Mean: cMu, Var: cVar}, QuantBudget{Mean: tMu, Var: tVar}, nil
}
