package oracle

import (
	"fmt"
	"math"

	"github.com/apdeepsense/apdeepsense/internal/conv"
	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/piecewise"
	"github.com/apdeepsense/apdeepsense/internal/rnn"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// This file extends the differential oracle to the sequence fast paths
// (internal/conv, internal/rnn): the same contract as Ref — every linear
// moment step mirrored textually (identical float expression sequences, so
// the linear algebra is bit-identical and only the activation closed forms
// diverge), every activation evaluated by quadrature, and an a-priori
// CondBudget accumulated by the same sensitivity recursion forward() uses.
// No budget constant is tuned per test: condEps is the single floor, and
// everything else derives from weight norms and the moments of the pass.

// seqActFit resolves one sequence-layer activation exactly the way
// core.KernelFor does (same PWL defaults) and returns the oracle-side
// linear-scan evaluator, quadrature breaks, and Lipschitz constant.
func seqActFit(act nn.Activation, opts core.Options) (f *piecewise.Func, eval func(float64) float64, breaks []float64, err error) {
	switch act {
	case nn.ActIdentity:
		f = piecewise.Identity()
	case nn.ActReLU:
		f = piecewise.ReLU()
	case nn.ActLeakyReLU:
		f = piecewise.LeakyReLU(nn.LeakyAlpha)
	case nn.ActTanh:
		f, err = piecewise.Tanh(defaultPieces(opts.TanhPieces))
	case nn.ActSigmoid:
		f, err = piecewise.Sigmoid(defaultPieces(opts.SigmoidPieces))
	default:
		err = fmt.Errorf("oracle: unsupported activation %v: %w", act, core.ErrInput)
	}
	if err != nil {
		return nil, nil, nil, err
	}
	eval = scanEval(f.Pieces())
	for _, k := range f.Knots() {
		if !math.IsInf(k, 0) {
			breaks = append(breaks, k)
		}
	}
	return f, eval, breaks, nil
}

// actInject applies one activation step of the conditioning-budget
// recursion (the same expressions as forward()): fresh condEps noise at the
// pre-activation moment scale, plus the incoming error amplified by the
// activation's moment-map sensitivities.
func actInject(dMu, dVar, scale, lip, width float64) (float64, float64) {
	sqrt2OverPi := math.Sqrt(2 / math.Pi)
	dSig := math.Sqrt(dVar)
	return condEps*scale + lip*dMu + lip*sqrt2OverPi*dSig,
		condEps*scale*scale + 2*lip*width*dMu + 2*lip*width*sqrt2OverPi*dSig
}

// actWidth returns the output-range bound W entering the variance
// sensitivity: the range width for bounded activations, lip·scale for the
// unbounded rest.
func actWidth(act nn.Activation, lip, scale float64) float64 {
	switch act {
	case nn.ActTanh:
		return 2
	case nn.ActSigmoid:
		return 1
	default:
		return lip * scale
	}
}

// ConvRef is the reference moment pass for a hybrid conv.Net: naive
// textually-mirrored conv window sums and pooling, quadrature activation
// moments, and the dense head via the standard Ref. Construct once per
// network with the same options the Net was built with.
type ConvRef struct {
	convs  []*conv.Conv1D
	head   *Ref
	evals  []func(float64) float64
	breaks [][]float64
	lips   []float64
	a1, a2 []float64
}

// NewConvRef builds the conv reference. opts must match the options the
// fast Net was constructed with (piece counts only; the moment-backend mode
// is irrelevant to the oracle, which always quadratures the fit).
func NewConvRef(n *conv.Net, opts core.Options) (*ConvRef, error) {
	convs := n.Convs()
	head, err := NewRef(n.Head(), opts, false)
	if err != nil {
		return nil, err
	}
	r := &ConvRef{
		convs:  convs,
		head:   head,
		evals:  make([]func(float64) float64, len(convs)),
		breaks: make([][]float64, len(convs)),
		lips:   make([]float64, len(convs)),
		a1:     make([]float64, len(convs)),
		a2:     make([]float64, len(convs)),
	}
	for i, l := range convs {
		f, eval, breaks, err := seqActFit(l.Act, opts)
		if err != nil {
			return nil, fmt.Errorf("oracle: conv layer %d: %w", i, err)
		}
		r.evals[i] = eval
		r.breaks[i] = breaks
		r.lips[i] = f.MaxAbsSlope()
		r.a1[i], r.a2[i] = convWeightNorms(l)
	}
	return r, nil
}

// convWeightNorms returns the per-output-element window norms entering the
// budget recursion: a1 = max_o Σ_{k,c} |w|, a2 = max_o Σ_{k,c} w².
func convWeightNorms(l *conv.Conv1D) (a1, a2 float64) {
	for o := 0; o < l.OutCh; o++ {
		var s1, s2 float64
		for k := 0; k < l.Kernel; k++ {
			for c := 0; c < l.InCh; c++ {
				w := l.W[(k*l.InCh+c)*l.OutCh+o]
				s1 += math.Abs(w)
				s2 += w * w
			}
		}
		if s1 > a1 {
			a1 = s1
		}
		if s2 > a2 {
			a2 = s2
		}
	}
	return a1, a2
}

// ForwardCond runs the reference pass over a plain input sequence and
// returns the conditioning budget: the fast Net.PropagateMoments result
// must match within rel·max(1, |want|) + budget.
func (r *ConvRef) ForwardCond(x *conv.Seq) (core.GaussianVec, CondBudget, error) {
	g := conv.DeterministicSeq(x)
	var dMu, dVar float64
	for li, l := range r.convs {
		// Amplification of the incoming error through the window sums and
		// the dropout input-moment map — mirroring forward()'s dense-step
		// sensitivity, with the keep==1 branch matching the fast path's
		// pass-through fast path (no μ-coupling without a mask).
		maxAbsMu := 0.0
		for _, m := range g.Mean.Data {
			if a := math.Abs(m); a > maxAbsMu {
				maxAbsMu = a
			}
		}
		p := l.KeepProb
		if p == 1 {
			dMu, dVar = r.a1[li]*dMu, r.a2[li]*dVar
		} else {
			dMu, dVar = p*r.a1[li]*dMu, r.a2[li]*(p*dVar+p*(1-p)*dMu*(2*maxAbsMu+dMu))
		}

		outSteps, err := l.OutSteps(g.Mean.Steps)
		if err != nil {
			return core.GaussianVec{}, CondBudget{}, fmt.Errorf("oracle: conv %d: %w", li, err)
		}
		out := conv.NewGaussianSeq(outSteps, l.OutCh)
		// Textual mirror of Conv1D.PropagateMomentsKernel's window sums and
		// dropout algebra — identical float expression sequence, so this
		// part is bit-identical to the fast path and adds no budget.
		for t := 0; t < outSteps; t++ {
			base := t * l.Stride
			for o := 0; o < l.OutCh; o++ {
				mean := l.B[o]
				variance := 0.0
				for c := 0; c < l.InCh; c++ {
					var muA, varA float64
					for k := 0; k < l.Kernel; k++ {
						w := l.W[(k*l.InCh+c)*l.OutCh+o]
						muA += g.Mean.At(base+k, c) * w
						varA += g.Var.At(base+k, c) * w * w
					}
					if p == 1 {
						mean += muA
						variance += varA
					} else {
						mean += p * muA
						variance += (muA*muA+varA)*p - muA*muA*p*p
					}
				}
				if variance < 0 {
					variance = 0
				}
				out.Mean.Set(t, o, mean)
				out.Var.Set(t, o, variance)
			}
		}

		// Pre-activation moment scale, then quadrature activation moments.
		var scale float64
		for i := range out.Mean.Data {
			if s := math.Abs(out.Mean.Data[i]) + tailSigmas*math.Sqrt(out.Var.Data[i]); s > scale {
				scale = s
			}
		}
		for i := range out.Mean.Data {
			out.Mean.Data[i], out.Var.Data[i] = ActMoments(r.evals[li], r.breaks[li], out.Mean.Data[i], out.Var.Data[i])
		}
		if l.Act != nn.ActIdentity {
			lip := r.lips[li]
			dMu, dVar = actInject(dMu, dVar, scale, lip, actWidth(l.Act, lip, scale))
		}
		g = out
	}

	// Textual mirror of GlobalAvgPoolMoments. Averaging cannot amplify the
	// per-element sup-norm error, so the budget passes through.
	ch := g.Mean.Channels
	pooled := core.NewGaussianVec(ch)
	if g.Mean.Steps > 0 {
		nSteps := float64(g.Mean.Steps)
		for c := 0; c < ch; c++ {
			var m, v float64
			for t := 0; t < g.Mean.Steps; t++ {
				m += g.Mean.At(t, c)
				v += g.Var.At(t, c)
			}
			pooled.Mean[c] = m / nSteps
			pooled.Var[c] = v / (nSteps * nSteps)
		}
	}
	return r.head.forwardFromSeed(pooled, r.head.pwlEval, r.head.breaks, dMu, dVar)
}

// RNNRef is the reference moment pass for an Elman rnn.Cell: the recurrence
// mirrored textually per step, quadrature activation moments, and the
// budget recursion applied once per timestep.
type RNNRef struct {
	c        *rnn.Cell
	eval     func(float64) float64
	breaks   []float64
	lip      float64
	a1h, a2h float64
	a1o, a2o float64
}

// NewRNNRef builds the recurrence reference.
func NewRNNRef(c *rnn.Cell, opts core.Options) (*RNNRef, error) {
	f, eval, breaks, err := seqActFit(c.Act, opts)
	if err != nil {
		return nil, err
	}
	r := &RNNRef{c: c, eval: eval, breaks: breaks, lip: f.MaxAbsSlope()}
	r.a1h, r.a2h = matrixNorms(c.Wh)
	r.a1o, r.a2o = matrixNorms(c.Wo)
	return r, nil
}

// matrixNorms returns max_j Σ_i |W_ij| and max_j Σ_i W²_ij for a
// rows×cols matrix in row-major layout (the per-output sensitivities of a
// MulVec against it).
func matrixNorms(w *tensor.Matrix) (a1, a2 float64) {
	for j := 0; j < w.Cols; j++ {
		var s1, s2 float64
		for i := 0; i < w.Rows; i++ {
			v := w.Data[i*w.Cols+j]
			s1 += math.Abs(v)
			s2 += v * v
		}
		if s1 > a1 {
			a1 = s1
		}
		if s2 > a2 {
			a2 = s2
		}
	}
	return a1, a2
}

// ForwardCond runs the reference recurrence and returns the conditioning
// budget for the readout moments.
func (r *RNNRef) ForwardCond(xs []tensor.Vector) (core.GaussianVec, CondBudget, error) {
	c := r.c
	n := c.HiddenDim
	h := core.NewGaussianVec(n)
	muIn := make(tensor.Vector, n)
	varIn := make(tensor.Vector, n)
	xContrib := make(tensor.Vector, n)
	preMean := make(tensor.Vector, n)
	preVar := make(tensor.Vector, n)
	var dMu, dVar float64
	p := c.KeepProb
	for st, x := range xs {
		if len(x) != c.InDim {
			return core.GaussianVec{}, CondBudget{}, fmt.Errorf("oracle: rnn step %d dim %d, want %d: %w", st, len(x), c.InDim, core.ErrInput)
		}
		maxAbsMu := 0.0
		for _, m := range h.Mean {
			if a := math.Abs(m); a > maxAbsMu {
				maxAbsMu = a
			}
		}
		if p == 1 {
			dMu, dVar = r.a1h*dMu, r.a2h*dVar
		} else {
			dMu, dVar = p*r.a1h*dMu, r.a2h*(p*dVar+p*(1-p)*dMu*(2*maxAbsMu+dMu))
		}

		// Textual mirror of CellProp.Step (naive ascending matmuls match
		// tensor.MulVecInto's accumulation order bit-for-bit).
		mulVecNaive(c.Wx, x, xContrib)
		if p == 1 {
			copy(muIn, h.Mean)
			copy(varIn, h.Var)
		} else {
			for i := 0; i < n; i++ {
				mu, s2 := h.Mean[i], h.Var[i]
				muIn[i] = mu * p
				varIn[i] = (mu*mu+s2)*p - mu*mu*p*p
			}
		}
		mulVecNaive(c.Wh, muIn, preMean)
		mulVecSqNaive(c.Wh, varIn, preVar)
		var scale float64
		for j := 0; j < n; j++ {
			m := xContrib[j] + preMean[j] + c.B[j]
			v := preVar[j]
			if v < 0 {
				v = 0
			}
			if s := math.Abs(m) + tailSigmas*math.Sqrt(v); s > scale {
				scale = s
			}
			h.Mean[j] = m
			h.Var[j] = v
		}
		for j := 0; j < n; j++ {
			h.Mean[j], h.Var[j] = ActMoments(r.eval, r.breaks, h.Mean[j], h.Var[j])
		}
		if c.Act != nn.ActIdentity {
			dMu, dVar = actInject(dMu, dVar, scale, r.lip, actWidth(c.Act, r.lip, scale))
		}
	}

	// Readout: linear, mirrored; the budget is amplified by the readout
	// norms only.
	out := core.NewGaussianVec(c.OutDim)
	mulVecNaive(c.Wo, h.Mean, out.Mean)
	mulVecSqNaive(c.Wo, h.Var, out.Var)
	for j := range out.Mean {
		out.Mean[j] += c.Bo[j]
	}
	return out, CondBudget{Mean: r.a1o * dMu, Var: r.a2o * dVar}, nil
}

// mulVecNaive computes out = x·W with per-output accumulation in strictly
// ascending input order — the documented accumulation order of
// tensor.MulVecInto, so the two agree bit-for-bit.
func mulVecNaive(w *tensor.Matrix, x, out tensor.Vector) {
	for j := 0; j < w.Cols; j++ {
		var s float64
		for i := 0; i < w.Rows; i++ {
			s += x[i] * w.Data[i*w.Cols+j]
		}
		out[j] = s
	}
}

// mulVecSqNaive is mulVecNaive against the element-squared matrix, with
// w*w computed inline (bit-identical to a precomputed Square()).
func mulVecSqNaive(w *tensor.Matrix, x, out tensor.Vector) {
	for j := 0; j < w.Cols; j++ {
		var s float64
		for i := 0; i < w.Rows; i++ {
			v := w.Data[i*w.Cols+j]
			s += x[i] * (v * v)
		}
		out[j] = s
	}
}

// GRURef is the reference moment pass for an rnn.GRU: every gate mirrored
// textually with quadrature sigmoid/tanh moments, product-of-Gaussians
// budget propagation on moment sup-norms, and the same condEps injections
// at the activations (the only places the fast path's arithmetic diverges
// from the oracle's).
type GRURef struct {
	g          *rnn.GRU
	sigEval    func(float64) float64
	tanhEval   func(float64) float64
	sigBreaks  []float64
	tanhBreaks []float64
	sigLip     float64
	tanhLip    float64

	a1r, a2r float64
	a1u, a2u float64
	a1c, a2c float64
	a1o, a2o float64
}

// NewGRURef builds the GRU reference.
func NewGRURef(g *rnn.GRU, opts core.Options) (*GRURef, error) {
	sigF, sigEval, sigBreaks, err := seqActFit(nn.ActSigmoid, opts)
	if err != nil {
		return nil, err
	}
	tanhF, tanhEval, tanhBreaks, err := seqActFit(nn.ActTanh, opts)
	if err != nil {
		return nil, err
	}
	r := &GRURef{
		g:       g,
		sigEval: sigEval, tanhEval: tanhEval,
		sigBreaks: sigBreaks, tanhBreaks: tanhBreaks,
		sigLip: sigF.MaxAbsSlope(), tanhLip: tanhF.MaxAbsSlope(),
	}
	r.a1r, r.a2r = matrixNorms(g.Whr)
	r.a1u, r.a2u = matrixNorms(g.Whu)
	r.a1c, r.a2c = matrixNorms(g.Whc)
	r.a1o, r.a2o = matrixNorms(g.Wo)
	return r, nil
}

// eb is a sup-norm error bound on a (mean, variance) vector pair.
type eb struct{ m, v float64 }

// productEB bounds the error of productMoments given sup-norm bounds on the
// two inputs' values (m1, v1, m2, v2 — oracle-side magnitudes) and errors
// (e1, e2). Exact triangle-inequality propagation through
//
//	mean = m1·m2,   var = m1²·v2 + m2²·v1 + v1·v2
//
// with no linearization: |Δ(m²)| ≤ e·(2m+e) and products expand fully. The
// fast path evaluates the same float expressions on its perturbed inputs,
// so no fresh condEps is injected here.
func productEB(m1, v1 float64, e1 eb, m2, v2 float64, e2 eb) eb {
	dm := m1*e2.m + m2*e1.m + e1.m*e2.m
	dm1sq := e1.m * (2*m1 + e1.m)
	dm2sq := e2.m * (2*m2 + e2.m)
	m1sqHi := (m1 + e1.m) * (m1 + e1.m)
	m2sqHi := (m2 + e2.m) * (m2 + e2.m)
	dv := dm1sq*v2 + m1sqHi*e2.v +
		dm2sq*v1 + m2sqHi*e1.v +
		e1.v*v2 + (v1+e1.v)*e2.v
	return eb{m: dm, v: dv}
}

// supAbs returns max |x_i| and max x_i (for variance vectors, max value).
func supAbs(x tensor.Vector) float64 {
	var s float64
	for _, v := range x {
		if a := math.Abs(v); a > s {
			s = a
		}
	}
	return s
}

// ForwardCond runs the reference GRU pass and returns the conditioning
// budget for the readout moments.
func (r *GRURef) ForwardCond(xs []tensor.Vector) (core.GaussianVec, CondBudget, error) {
	g := r.g
	n := g.HiddenDim
	p := g.KeepProb
	h := core.NewGaussianVec(n)
	mMean := make(tensor.Vector, n)
	mVar := make(tensor.Vector, n)
	xr := make(tensor.Vector, n)
	xu := make(tensor.Vector, n)
	xc := make(tensor.Vector, n)
	rM := make(tensor.Vector, n)
	rV := make(tensor.Vector, n)
	uM := make(tensor.Vector, n)
	uV := make(tensor.Vector, n)
	cM := make(tensor.Vector, n)
	cV := make(tensor.Vector, n)
	rmM := make(tensor.Vector, n)
	rmV := make(tensor.Vector, n)

	hErr := eb{}
	for st, x := range xs {
		if len(x) != g.InDim {
			return core.GaussianVec{}, CondBudget{}, fmt.Errorf("oracle: gru step %d dim %d, want %d: %w", st, len(x), g.InDim, core.ErrInput)
		}
		// Masked state moments — textual mirror of GRUProp.StepMoments —
		// and the error coupling of the dropout moment map.
		maxAbsMu := supAbs(h.Mean)
		for j := 0; j < n; j++ {
			mu, v := h.Mean[j], h.Var[j]
			mMean[j] = p * mu
			mVar[j] = p*(mu*mu+v) - p*p*mu*mu
		}
		mErr := eb{
			m: p * hErr.m,
			v: p*hErr.v + p*(1-p)*hErr.m*(2*maxAbsMu+hErr.m),
		}

		mulVecNaive(g.Wxr, x, xr)
		mulVecNaive(g.Wxu, x, xu)
		mulVecNaive(g.Wxc, x, xc)

		// r and u gates: window the masked state through the gate weights,
		// quadrature the sigmoid moments, inject at the gate scale.
		rErr := r.gateRef(xr, mMean, mVar, g.Whr, g.Br, r.sigEval, r.sigBreaks, r.sigLip, 1,
			eb{m: r.a1r * mErr.m, v: r.a2r * mErr.v}, rM, rV)
		uErr := r.gateRef(xu, mMean, mVar, g.Whu, g.Bu, r.sigEval, r.sigBreaks, r.sigLip, 1,
			eb{m: r.a1u * mErr.m, v: r.a2u * mErr.v}, uM, uV)

		// r ⊙ ĥ product moments and their budget.
		for j := 0; j < n; j++ {
			rmM[j] = rM[j] * mMean[j]
			rmV[j] = rM[j]*rM[j]*mVar[j] + mMean[j]*mMean[j]*rV[j] + rV[j]*mVar[j]
		}
		rmErr := productEB(supAbs(rM), supAbs(rV), rErr, supAbs(mMean), supAbs(mVar), mErr)

		// Candidate gate (tanh, width 2).
		cErr := r.gateRef(xc, rmM, rmV, g.Whc, g.Bc, r.tanhEval, r.tanhBreaks, r.tanhLip, 2,
			eb{m: r.a1c * rmErr.m, v: r.a2c * rmErr.v}, cM, cV)

		// h ← u⊙h + (1−u)⊙c: two products plus a sum; 1−u carries u's
		// error with the same magnitude bound.
		uhErr := productEB(supAbs(uM), supAbs(uV), uErr, supAbs(h.Mean), supAbs(h.Var), hErr)
		oneMinusU := make(tensor.Vector, n)
		for j := 0; j < n; j++ {
			oneMinusU[j] = 1 - uM[j]
		}
		ucErr := productEB(supAbs(oneMinusU), supAbs(uV), uErr, supAbs(cM), supAbs(cV), cErr)
		for j := 0; j < n; j++ {
			uhM := uM[j] * h.Mean[j]
			uhV := uM[j]*uM[j]*h.Var[j] + h.Mean[j]*h.Mean[j]*uV[j] + uV[j]*h.Var[j]
			ucM := oneMinusU[j] * cM[j]
			ucV := oneMinusU[j]*oneMinusU[j]*cV[j] + cM[j]*cM[j]*uV[j] + uV[j]*cV[j]
			h.Mean[j] = uhM + ucM
			h.Var[j] = uhV + ucV
		}
		hErr = eb{m: uhErr.m + ucErr.m, v: uhErr.v + ucErr.v}
	}

	out := core.NewGaussianVec(g.OutDim)
	mulVecNaive(g.Wo, h.Mean, out.Mean)
	mulVecSqNaive(g.Wo, h.Var, out.Var)
	for j := range out.Mean {
		out.Mean[j] += g.Bo[j]
	}
	return out, CondBudget{Mean: r.a1o * hErr.m, Var: r.a2o * hErr.v}, nil
}

// gateRef mirrors one GRU gate: pre-activation dense moments against the
// recurrent weights, quadrature activation moments into (outM, outV), and
// the activation budget step applied to the incoming pre-activation error.
func (r *GRURef) gateRef(x, inM, inV tensor.Vector, w *tensor.Matrix, b tensor.Vector,
	eval func(float64) float64, breaks []float64, lip, width float64,
	preErr eb, outM, outV tensor.Vector) eb {
	n := len(b)
	preM := make(tensor.Vector, n)
	preV := make(tensor.Vector, n)
	mulVecNaive(w, inM, preM)
	mulVecSqNaive(w, inV, preV)
	var scale float64
	for j := 0; j < n; j++ {
		m := x[j] + preM[j] + b[j]
		v := preV[j]
		if v < 0 {
			v = 0
		}
		if s := math.Abs(m) + tailSigmas*math.Sqrt(v); s > scale {
			scale = s
		}
		outM[j], outV[j] = ActMoments(eval, breaks, m, v)
	}
	dMu, dVar := actInject(preErr.m, preErr.v, scale, lip, width)
	return eb{m: dMu, v: dVar}
}
