package datasets

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/apdeepsense/apdeepsense/internal/train"
)

// BPEst constants: 2-second windows at 125 Hz, matching the paper's setup
// ("estimating a 2-second ABP waveform (250 samples) based on the
// corresponding 2-second PPG waveform").
const (
	bpestSamples = 250
	bpestRateHz  = 125.0
)

// BPEst generates the cuff-less blood-pressure task: infer the arterial
// blood pressure (ABP) waveform in mmHg from a fingertip photoplethysmogram
// (PPG) window.
//
// The simulator models each record as a cardiac pulse train: per-subject
// heart rate with beat-to-beat variability, a PPG beat morphology (systolic
// peak plus dicrotic notch, both Gaussian bumps), and an ABP waveform that
// shares the pulse phase (shifted by a pulse-transit-time delay) with a
// subject-specific diastolic baseline and pulse pressure. The hemodynamic
// couplings that make the task learnable — and the unexplained variance that
// bounds accuracy at the paper's ~13–19 mmHg MAE — are:
//
//   - pulse pressure correlates with PPG amplitude (learnable), plus noise;
//   - diastolic pressure correlates with heart rate (learnable), plus noise;
//   - PPG carries sensor noise and baseline wander (irreducible).
func BPEst(sz Size) (*Dataset, error) {
	sz = sz.withDefaults(4000, 500, 1000)
	if err := sz.validate(); err != nil {
		return nil, fmt.Errorf("bpest: %w", err)
	}
	rng := rand.New(rand.NewSource(sz.Seed))
	total := sz.Train + sz.Val + sz.Test
	samples := make([]train.Sample, total)
	for i := range samples {
		samples[i] = bpestRecord(rng)
	}
	trainSet, valSet, testSet, err := shuffleSplit(samples, sz, rng)
	if err != nil {
		return nil, fmt.Errorf("bpest: %w", err)
	}
	d := &Dataset{
		Name: "BPEst", Task: TaskRegression,
		InputDim: bpestSamples, OutputDim: bpestSamples,
		Train: trainSet, Val: valSet, Test: testSet,
		Unit: "mmHg",
	}
	standardizeAll(d)
	return d, nil
}

// bpestRecord synthesizes one aligned (PPG, ABP) window pair.
func bpestRecord(rng *rand.Rand) train.Sample {
	// Subject-level hemodynamics.
	hr := 55 + 40*rng.Float64()       // beats per minute
	beatPeriod := 60 / hr             // seconds
	ppgAmp := 0.7 + 0.6*rng.Float64() // arbitrary PPG units
	dicroticFrac := 0.25 + 0.2*rng.Float64()

	// Couplings: pulse pressure tracks PPG amplitude, diastolic tracks HR.
	// The additive terms are unexplained physiological variance.
	pulsePressure := 20 + 28*ppgAmp + 6*rng.NormFloat64() // mmHg
	diastolic := 55 + 0.25*(hr-75) + 9*rng.NormFloat64()  // mmHg
	ptt := 0.12 + 0.06*rng.Float64()                      // pulse transit time, s

	phase0 := rng.Float64() * beatPeriod
	ppg := make([]float64, bpestSamples)
	abp := make([]float64, bpestSamples)

	// Beat-to-beat HRV: jitter each beat boundary.
	jitter := 0.03 * beatPeriod

	// Baseline wander on the PPG (respiration artifact, ~0.25 Hz).
	wanderAmp := 0.1 * ppgAmp
	wanderPhase := rng.Float64() * 2 * math.Pi

	for t := 0; t < bpestSamples; t++ {
		ts := float64(t) / bpestRateHz
		// Position within the cardiac cycle (with smooth HRV modulation).
		cyc := math.Mod(ts+phase0+jitter*math.Sin(2*math.Pi*0.3*ts), beatPeriod) / beatPeriod

		ppg[t] = ppgAmp*pulseShape(cyc, 0.30, 0.10, dicroticFrac, 0.55, 0.07) +
			wanderAmp*math.Sin(2*math.Pi*0.25*ts+wanderPhase) +
			0.03*rng.NormFloat64() // sensor noise

		// ABP lags by the pulse transit time and has a sharper systolic
		// upstroke morphology.
		cycABP := math.Mod(ts+phase0-ptt+beatPeriod, beatPeriod) / beatPeriod
		abp[t] = diastolic +
			pulsePressure*pulseShape(cycABP, 0.25, 0.08, 0.35, 0.5, 0.09) +
			1.5*rng.NormFloat64() // catheter noise
	}
	return train.Sample{X: ppg, Y: abp}
}

// pulseShape is a normalized cardiac beat template over cycle position
// c ∈ [0, 1): a systolic Gaussian bump at position p1 (width w1) plus a
// dicrotic bump of relative height h2 at p2 (width w2).
func pulseShape(c, p1, w1, h2, p2, w2 float64) float64 {
	d1 := c - p1
	d2 := c - p2
	return math.Exp(-d1*d1/(2*w1*w1)) + h2*math.Exp(-d2*d2/(2*w2*w2))
}
