package datasets

import (
	"errors"
	"math"
	"testing"

	"github.com/apdeepsense/apdeepsense/internal/train"
)

// smallSize keeps generator tests fast.
var smallSize = Size{Train: 300, Val: 50, Test: 100, Seed: 1}

func checkStandardized(t *testing.T, d *Dataset) {
	t.Helper()
	// Training inputs should be near zero-mean unit-variance per dimension.
	dim := d.InputDim
	mean := make([]float64, dim)
	for _, s := range d.Train {
		if len(s.X) != dim {
			t.Fatalf("sample input dim %d, want %d", len(s.X), dim)
		}
		for i, v := range s.X {
			mean[i] += v
		}
	}
	n := float64(len(d.Train))
	for i := range mean {
		mean[i] /= n
		if math.Abs(mean[i]) > 0.05 {
			t.Errorf("input dim %d mean %v after standardization", i, mean[i])
		}
	}
	variance := make([]float64, dim)
	for _, s := range d.Train {
		for i, v := range s.X {
			dv := v - mean[i]
			variance[i] += dv * dv
		}
	}
	for i := range variance {
		variance[i] /= n
		if variance[i] > 1e-9 && math.Abs(variance[i]-1) > 0.1 {
			t.Errorf("input dim %d variance %v after standardization", i, variance[i])
		}
	}
}

func checkNoNaN(t *testing.T, d *Dataset) {
	t.Helper()
	for _, split := range [][]train.Sample{d.Train, d.Val, d.Test} {
		for i, s := range split {
			for _, v := range s.X {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("sample %d input contains %v", i, v)
				}
			}
			for _, v := range s.Y {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("sample %d target contains %v", i, v)
				}
			}
		}
	}
}

func TestBPEstShape(t *testing.T) {
	d, err := BPEst(smallSize)
	if err != nil {
		t.Fatalf("BPEst: %v", err)
	}
	if d.Name != "BPEst" || d.Task != TaskRegression {
		t.Errorf("metadata: %s %v", d.Name, d.Task)
	}
	if d.InputDim != 250 || d.OutputDim != 250 {
		t.Errorf("dims = (%d, %d), want (250, 250)", d.InputDim, d.OutputDim)
	}
	if len(d.Train) != 300 || len(d.Val) != 50 || len(d.Test) != 100 {
		t.Errorf("split sizes = %d/%d/%d", len(d.Train), len(d.Val), len(d.Test))
	}
	if d.Unit != "mmHg" {
		t.Errorf("unit = %q", d.Unit)
	}
	checkStandardized(t, d)
	checkNoNaN(t, d)
	// Natural-unit ABP targets must look like blood pressure (40–220 mmHg).
	for i, s := range d.Test[:10] {
		y := d.DenormTarget(s.Y)
		for _, v := range y {
			if v < 30 || v > 240 {
				t.Fatalf("test %d: ABP value %v mmHg implausible", i, v)
			}
		}
	}
}

func TestBPEstDeterministicBySeed(t *testing.T) {
	a, err := BPEst(smallSize)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BPEst(smallSize)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Train[:10] {
		for j := range a.Train[i].X {
			if a.Train[i].X[j] != b.Train[i].X[j] {
				t.Fatal("same seed produced different data")
			}
		}
	}
	c, err := BPEst(Size{Train: 300, Val: 50, Test: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for j := range a.Train[0].X {
		if a.Train[0].X[j] != c.Train[0].X[j] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestNYCommuteShape(t *testing.T) {
	d, err := NYCommute(smallSize)
	if err != nil {
		t.Fatalf("NYCommute: %v", err)
	}
	if d.InputDim != 5 || d.OutputDim != 1 {
		t.Errorf("dims = (%d, %d), want (5, 1)", d.InputDim, d.OutputDim)
	}
	checkStandardized(t, d)
	checkNoNaN(t, d)
	// Durations in natural units are minutes in [1, 120].
	for _, s := range d.Train {
		y := d.DenormTarget(s.Y)
		if y[0] < 0.5 || y[0] > 121 {
			t.Fatalf("duration %v min out of range", y[0])
		}
	}
}

func TestNYCommuteRushHourSlower(t *testing.T) {
	// Directly probe the speed model: rush hour must be slower than night
	// for the same route.
	rush := nycSpeedKmh(-73.98, 40.75, -73.95, 40.78, 8)
	night := nycSpeedKmh(-73.98, 40.75, -73.95, 40.78, 2)
	if rush >= night {
		t.Errorf("rush speed %v >= night speed %v", rush, night)
	}
	// Manhattan slower than outer boroughs.
	mh := nycSpeedKmh(-73.98, 40.75, -73.95, 40.78, 12)
	outer := nycSpeedKmh(-73.80, 40.65, -73.78, 40.68, 12)
	if mh >= outer {
		t.Errorf("manhattan speed %v >= outer speed %v", mh, outer)
	}
}

func TestGasSenShape(t *testing.T) {
	d, err := GasSen(smallSize)
	if err != nil {
		t.Fatalf("GasSen: %v", err)
	}
	if d.InputDim != 16 || d.OutputDim != 2 {
		t.Errorf("dims = (%d, %d), want (16, 2)", d.InputDim, d.OutputDim)
	}
	checkStandardized(t, d)
	checkNoNaN(t, d)
	// Concentrations in natural units are within [0, 600] ppm.
	for _, s := range d.Train {
		y := d.DenormTarget(s.Y)
		for _, v := range y {
			if v < -1 || v > 601 {
				t.Fatalf("concentration %v ppm out of range", v)
			}
		}
	}
}

func TestGasSenLearnable(t *testing.T) {
	// Sensor readings must correlate with the gas concentrations; check a
	// simple signal: the mean reading should rise with total concentration.
	d, err := GasSen(Size{Train: 1000, Val: 1, Test: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var num, den1, den2 float64
	for _, s := range d.Train {
		var x float64
		for _, v := range s.X {
			x += v
		}
		y := s.Y[0] + s.Y[1]
		num += x * y
		den1 += x * x
		den2 += y * y
	}
	corr := num / math.Sqrt(den1*den2)
	if corr < 0.5 {
		t.Errorf("sensor-concentration correlation %v, want > 0.5", corr)
	}
}

func TestHHARShape(t *testing.T) {
	d, err := HHAR(smallSize)
	if err != nil {
		t.Fatalf("HHAR: %v", err)
	}
	if d.Task != TaskClassification {
		t.Errorf("task = %v", d.Task)
	}
	if d.InputDim != 6*13 || d.OutputDim != 6 {
		t.Errorf("dims = (%d, %d), want (78, 6)", d.InputDim, d.OutputDim)
	}
	if len(d.ClassNames) != 6 {
		t.Errorf("classes = %v", d.ClassNames)
	}
	checkStandardized(t, d)
	checkNoNaN(t, d)
	// Targets are one-hot.
	for _, s := range d.Train {
		var sum float64
		for _, v := range s.Y {
			if v != 0 && v != 1 {
				t.Fatalf("target %v not one-hot", s.Y)
			}
			sum += v
		}
		if sum != 1 {
			t.Fatalf("target %v not one-hot", s.Y)
		}
	}
	// All six classes appear in training data.
	seen := make([]bool, 6)
	for _, s := range d.Train {
		for c, v := range s.Y {
			if v == 1 {
				seen[c] = true
			}
		}
	}
	for c, ok := range seen {
		if !ok {
			t.Errorf("class %d (%s) missing from training data", c, d.ClassNames[c])
		}
	}
}

func TestHHARClassesSeparable(t *testing.T) {
	// Static (sitting) and dynamic (walking) activities must differ strongly
	// in feature space: compare the std feature of the first accel axis.
	d, err := HHAR(Size{Train: 600, Val: 50, Test: 50, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Feature 1 of axis 0 is the (standardized) std.
	var sitting, walking []float64
	for _, s := range d.Train {
		switch {
		case s.Y[1] == 1:
			sitting = append(sitting, s.X[1])
		case s.Y[3] == 1:
			walking = append(walking, s.X[1])
		}
	}
	if len(sitting) == 0 || len(walking) == 0 {
		t.Fatal("classes missing")
	}
	mean := func(xs []float64) float64 {
		var m float64
		for _, x := range xs {
			m += x
		}
		return m / float64(len(xs))
	}
	if mean(walking)-mean(sitting) < 0.5 {
		t.Errorf("walking std feature %v not well above sitting %v", mean(walking), mean(sitting))
	}
}

func TestSizeValidation(t *testing.T) {
	for _, gen := range []func(Size) (*Dataset, error){BPEst, NYCommute, GasSen, HHAR} {
		if _, err := gen(Size{Train: -1, Val: 1, Test: 1}); !errors.Is(err, ErrConfig) {
			t.Errorf("negative size err = %v, want ErrConfig", err)
		}
	}
}

func TestDenormRoundTrip(t *testing.T) {
	d, err := NYCommute(smallSize)
	if err != nil {
		t.Fatal(err)
	}
	// Denormalizing a zero-mean unit-var prediction recovers the target
	// statistics scale.
	mean, variance := d.DenormPrediction([]float64{0}, []float64{1})
	if math.Abs(mean[0]-d.TargetMean[0]) > 1e-12 {
		t.Errorf("denorm mean = %v, want %v", mean[0], d.TargetMean[0])
	}
	want := d.TargetStd[0] * d.TargetStd[0]
	if math.Abs(variance[0]-want) > 1e-9 {
		t.Errorf("denorm var = %v, want %v", variance[0], want)
	}
	// Target round trip.
	y := d.DenormTarget(d.Test[0].Y)
	backStd := (y[0] - d.TargetMean[0]) / d.TargetStd[0]
	if math.Abs(backStd-d.Test[0].Y[0]) > 1e-9 {
		t.Errorf("denorm target round trip: %v vs %v", backStd, d.Test[0].Y[0])
	}
}

func TestDenormClassificationNoOp(t *testing.T) {
	d, err := HHAR(smallSize)
	if err != nil {
		t.Fatal(err)
	}
	m, v := d.DenormPrediction([]float64{1, 2}, []float64{3, 4})
	if m[0] != 1 || v[1] != 4 {
		t.Error("classification denorm should be identity")
	}
}

func TestShuffleSplitErrors(t *testing.T) {
	if _, err := BPEst(Size{Train: 10, Val: 5, Test: 5, Seed: 1}); err != nil {
		t.Errorf("small but valid size: %v", err)
	}
}
