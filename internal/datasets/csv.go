package datasets

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"

	"github.com/apdeepsense/apdeepsense/internal/train"
)

// WriteCSV writes samples as CSV rows: inDim input columns followed by the
// target columns, with a generated header (x0..xN, y0..yM). It lets the
// synthetic datasets be exported for external tooling and real datasets be
// round-tripped through the same format.
func WriteCSV(w io.Writer, samples []train.Sample) error {
	if len(samples) == 0 {
		return fmt.Errorf("datasets: no samples to write: %w", ErrConfig)
	}
	inDim, outDim := len(samples[0].X), len(samples[0].Y)
	cw := csv.NewWriter(w)
	header := make([]string, 0, inDim+outDim)
	for i := 0; i < inDim; i++ {
		header = append(header, fmt.Sprintf("x%d", i))
	}
	for i := 0; i < outDim; i++ {
		header = append(header, fmt.Sprintf("y%d", i))
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("datasets: write header: %w", err)
	}
	row := make([]string, inDim+outDim)
	for si, s := range samples {
		if len(s.X) != inDim || len(s.Y) != outDim {
			return fmt.Errorf("datasets: sample %d has dims %d/%d, want %d/%d: %w",
				si, len(s.X), len(s.Y), inDim, outDim, ErrConfig)
		}
		for i, v := range s.X {
			row[i] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		for i, v := range s.Y {
			row[inDim+i] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("datasets: write row %d: %w", si, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("datasets: flush: %w", err)
	}
	return nil
}

// ReadCSV reads samples from CSV: each row must have inDim + outDim numeric
// columns (inputs first). A non-numeric first row is treated as a header and
// skipped.
func ReadCSV(r io.Reader, inDim, outDim int) ([]train.Sample, error) {
	if inDim < 1 || outDim < 1 {
		return nil, fmt.Errorf("datasets: dims %d/%d: %w", inDim, outDim, ErrConfig)
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = inDim + outDim
	var samples []train.Sample
	first := true
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("datasets: read csv: %w", err)
		}
		vals := make([]float64, len(rec))
		parseErr := false
		for i, f := range rec {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				parseErr = true
				break
			}
			vals[i] = v
		}
		if parseErr {
			if first {
				first = false
				continue // header row
			}
			return nil, fmt.Errorf("datasets: row %d: non-numeric value: %w", len(samples)+1, ErrConfig)
		}
		first = false
		samples = append(samples, train.Sample{
			X: vals[:inDim:inDim],
			Y: vals[inDim:],
		})
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("datasets: csv contained no data rows: %w", ErrConfig)
	}
	return samples, nil
}

// WriteCSVFile writes samples to a CSV file, creating or truncating it.
func WriteCSVFile(path string, samples []train.Sample) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("datasets: create %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("datasets: close %s: %w", path, cerr)
		}
	}()
	return WriteCSV(f, samples)
}

// ReadCSVFile reads samples from a CSV file.
func ReadCSVFile(path string, inDim, outDim int) ([]train.Sample, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("datasets: open %s: %w", path, err)
	}
	defer f.Close()
	return ReadCSV(f, inDim, outDim)
}

// FromSamples builds a Dataset directly from user-provided samples (e.g.
// loaded with ReadCSV): it shuffles, splits by the given sizes, and
// standardizes exactly like the built-in generators, so external data flows
// through the same pipeline.
func FromSamples(name string, task Task, samples []train.Sample, sz Size) (*Dataset, error) {
	if err := sz.validate(); err != nil {
		return nil, fmt.Errorf("from-samples: %w", err)
	}
	if task != TaskRegression && task != TaskClassification {
		return nil, fmt.Errorf("from-samples: task %d: %w", task, ErrConfig)
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("from-samples: no samples: %w", ErrConfig)
	}
	inDim, outDim := len(samples[0].X), len(samples[0].Y)
	for i, s := range samples {
		if len(s.X) != inDim || len(s.Y) != outDim {
			return nil, fmt.Errorf("from-samples: sample %d ragged: %w", i, ErrConfig)
		}
	}
	cp := make([]train.Sample, len(samples))
	for i, s := range samples {
		cp[i] = train.Sample{
			X: append([]float64(nil), s.X...),
			Y: append([]float64(nil), s.Y...),
		}
	}
	rng := newSplitRNG(sz.Seed)
	trainSet, valSet, testSet, err := shuffleSplit(cp, sz, rng)
	if err != nil {
		return nil, fmt.Errorf("from-samples: %w", err)
	}
	d := &Dataset{
		Name: name, Task: task,
		InputDim: inDim, OutputDim: outDim,
		Train: trainSet, Val: valSet, Test: testSet,
	}
	standardizeAll(d)
	return d, nil
}
