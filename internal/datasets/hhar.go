package datasets

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/apdeepsense/apdeepsense/internal/train"
)

// HHAR constants: 2-second 6-axis IMU windows at 50 Hz, 9 users, 6
// activities, 6 device models — the structure of the UCI Heterogeneity
// Activity Recognition dataset the paper uses, evaluated leave-one-user-out
// ("heterogeneous means that we are testing on a new user who has not
// appeared in the training set").
const (
	hharUsers       = 9
	hharDevices     = 6
	hharRateHz      = 50.0
	hharWindowLen   = 100 // 2 s
	hharAxes        = 6   // accel x/y/z + gyro x/y/z
	hharFreqBins    = 8
	hharFeatPerAxis = 5 + hharFreqBins // mean, std, min, max, energy + spectrum
)

// HHARClasses lists the six activities in label order.
var HHARClasses = []string{"biking", "sitting", "standing", "walking", "stairs-up", "stairs-down"}

// activityTemplate drives the per-activity IMU signal generator.
type activityTemplate struct {
	freqHz   float64 // dominant motion frequency
	accAmp   float64 // accelerometer oscillation amplitude (m/s²)
	gyroAmp  float64 // gyroscope oscillation amplitude (rad/s)
	harmonic float64 // relative 2nd-harmonic content (gait impact)
	noise    float64 // body/sensor tremor
	tilt     float64 // gravity tilt away from vertical (rad)
}

// hharTemplates indexes activityTemplate by class label. The dynamic
// activities (walking / stairs-up / stairs-down) and the static ones
// (sitting / standing) are deliberately close within their groups: combined
// with the per-user perturbations below, class overlap on an unseen user is
// what pins leave-one-user-out accuracy to the paper's 70–87 % band.
var hharTemplates = []activityTemplate{
	{freqHz: 1.5, accAmp: 2.4, gyroAmp: 1.2, harmonic: 0.3, noise: 0.45, tilt: 0.9},   // biking
	{freqHz: 0.25, accAmp: 0.06, gyroAmp: 0.04, harmonic: 0, noise: 0.09, tilt: 0.5},  // sitting
	{freqHz: 0.4, accAmp: 0.1, gyroAmp: 0.05, harmonic: 0, noise: 0.09, tilt: 0.3},    // standing
	{freqHz: 1.85, accAmp: 3.2, gyroAmp: 1.1, harmonic: 0.5, noise: 0.55, tilt: 0.2},  // walking
	{freqHz: 1.7, accAmp: 3.5, gyroAmp: 1.2, harmonic: 0.45, noise: 0.6, tilt: 0.25},  // stairs-up
	{freqHz: 1.8, accAmp: 3.7, gyroAmp: 1.3, harmonic: 0.58, noise: 0.65, tilt: 0.25}, // stairs-down
}

// hharUserParams perturbs templates per user: gait frequency and amplitude
// scaling plus a personal device-carry orientation. This is the population
// heterogeneity that makes the unseen-user split hard.
type hharUserParams struct {
	freqMul, ampMul float64
	orientation     [3]float64 // rotation angles applied to both sensors
}

// hharDeviceParams perturbs signals per device model: gain, bias, and noise
// floor differences between phone models (the "heterogeneity" of HHAR).
type hharDeviceParams struct {
	gain  float64
	bias  [hharAxes]float64
	noise float64
	clipG float64 // accelerometer saturation, m/s²
}

// HHAR generates the heterogeneous human activity recognition task:
// statistical + spectral features of 6-axis IMU windows → 6 activities,
// with user-disjoint splits (train: users 1–7, val: user 8, test: user 9).
//
// Size.Train/Val/Test bound the per-split sample counts after the
// user-disjoint partition (the generator synthesizes enough windows per
// user and trims).
func HHAR(sz Size) (*Dataset, error) {
	sz = sz.withDefaults(5600, 700, 900)
	if err := sz.validate(); err != nil {
		return nil, fmt.Errorf("hhar: %w", err)
	}
	rng := rand.New(rand.NewSource(sz.Seed))

	users := make([]hharUserParams, hharUsers)
	for u := range users {
		users[u] = hharUserParams{
			freqMul: 0.7 + 0.6*rng.Float64(),
			ampMul:  0.5 + 1.0*rng.Float64(),
			orientation: [3]float64{
				rng.NormFloat64() * 0.9,
				rng.NormFloat64() * 0.9,
				rng.NormFloat64() * 0.9,
			},
		}
	}
	devices := make([]hharDeviceParams, hharDevices)
	for d := range devices {
		p := hharDeviceParams{
			gain:  0.8 + 0.4*rng.Float64(),
			noise: 0.1 + 0.5*rng.Float64(),
			clipG: 16 + 8*rng.Float64(),
		}
		for a := range p.bias {
			p.bias[a] = rng.NormFloat64() * 0.4
		}
		devices[d] = p
	}

	// Per-user window quotas: train users need sz.Train/7 each, etc.
	perTrainUser := (sz.Train + hharUsers - 3) / (hharUsers - 2)
	quota := func(user int) int {
		switch {
		case user < hharUsers-2:
			return perTrainUser
		case user == hharUsers-2:
			return sz.Val
		default:
			return sz.Test
		}
	}

	var trainSet, valSet, testSet []train.Sample
	for u := 0; u < hharUsers; u++ {
		n := quota(u)
		for i := 0; i < n; i++ {
			cls := rng.Intn(len(HHARClasses))
			dev := rng.Intn(hharDevices)
			x := hharWindowFeatures(hharTemplates[cls], users[u], devices[dev], rng)
			s := train.Sample{X: x, Y: oneHot(len(HHARClasses), cls)}
			switch {
			case u < hharUsers-2:
				trainSet = append(trainSet, s)
			case u == hharUsers-2:
				valSet = append(valSet, s)
			default:
				testSet = append(testSet, s)
			}
		}
	}
	rng.Shuffle(len(trainSet), func(i, j int) { trainSet[i], trainSet[j] = trainSet[j], trainSet[i] })
	if len(trainSet) > sz.Train {
		trainSet = trainSet[:sz.Train]
	}

	d := &Dataset{
		Name: "HHAR", Task: TaskClassification,
		InputDim: hharAxes * hharFeatPerAxis, OutputDim: len(HHARClasses),
		Train: trainSet, Val: valSet, Test: testSet,
		ClassNames: append([]string(nil), HHARClasses...),
	}
	standardizeAll(d)
	return d, nil
}

// hharWindowFeatures synthesizes one 6-axis window and extracts features.
func hharWindowFeatures(tpl activityTemplate, usr hharUserParams, dev hharDeviceParams, rng *rand.Rand) []float64 {
	freq := tpl.freqHz * usr.freqMul * (1 + 0.05*rng.NormFloat64())
	amp := tpl.accAmp * usr.ampMul
	gyroAmp := tpl.gyroAmp * usr.ampMul
	phase := rng.Float64() * 2 * math.Pi

	// Gravity direction after user tilt + personal orientation.
	gx := 9.81 * math.Sin(tpl.tilt+usr.orientation[0]*0.3)
	gz := 9.81 * math.Cos(tpl.tilt+usr.orientation[0]*0.3)

	window := make([][]float64, hharAxes)
	for a := range window {
		window[a] = make([]float64, hharWindowLen)
	}
	for t := 0; t < hharWindowLen; t++ {
		ts := float64(t) / hharRateHz
		w := 2 * math.Pi * freq
		base := math.Sin(w*ts+phase) + tpl.harmonic*math.Sin(2*w*ts+phase*1.7)
		side := math.Cos(w*ts + phase + usr.orientation[1])

		// Body-frame signals before device effects.
		acc := [3]float64{
			gx + amp*base,
			0.4*amp*side + 0.3*amp*math.Sin(0.5*w*ts),
			gz + 0.6*amp*base*base, // vertical impacts rectified
		}
		gyr := [3]float64{
			gyroAmp * side,
			gyroAmp * 0.7 * base,
			gyroAmp * 0.4 * math.Sin(0.8*w*ts+usr.orientation[2]),
		}
		for a := 0; a < 3; a++ {
			v := dev.gain*acc[a] + dev.bias[a] + (tpl.noise+dev.noise)*rng.NormFloat64()
			if v > dev.clipG {
				v = dev.clipG
			}
			if v < -dev.clipG {
				v = -dev.clipG
			}
			window[a][t] = v
			window[3+a][t] = dev.gain*gyr[a] + dev.bias[3+a] +
				0.5*(tpl.noise+dev.noise)*rng.NormFloat64()
		}
	}

	feats := make([]float64, 0, hharAxes*hharFeatPerAxis)
	for a := 0; a < hharAxes; a++ {
		feats = append(feats, axisFeatures(window[a])...)
	}
	return feats
}

// axisFeatures extracts the per-axis statistical and spectral features:
// mean, std, min, max, mean energy, and the magnitudes of the first
// hharFreqBins DFT bins above DC (covering 0.5–4 Hz at 50 Hz/100 samples).
func axisFeatures(x []float64) []float64 {
	n := float64(len(x))
	var mean float64
	for _, v := range x {
		mean += v
	}
	mean /= n
	var std, energy float64
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, v := range x {
		d := v - mean
		std += d * d
		energy += v * v
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	std = math.Sqrt(std / n)
	energy /= n

	out := []float64{mean, std, minV, maxV, energy}
	out = append(out, dftMagnitudes(x, mean, hharFreqBins)...)
	return out
}

// dftMagnitudes returns the magnitudes of DFT bins 1..bins of the
// mean-removed signal (a direct O(n·bins) Goertzel-style evaluation — tiny
// windows make an FFT unnecessary).
func dftMagnitudes(x []float64, mean float64, bins int) []float64 {
	n := len(x)
	out := make([]float64, bins)
	for k := 1; k <= bins; k++ {
		var re, im float64
		w := 2 * math.Pi * float64(k) / float64(n)
		for t, v := range x {
			c := v - mean
			re += c * math.Cos(w*float64(t))
			im -= c * math.Sin(w*float64(t))
		}
		out[k-1] = math.Sqrt(re*re+im*im) / float64(n)
	}
	return out
}
