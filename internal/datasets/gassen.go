package datasets

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/apdeepsense/apdeepsense/internal/train"
)

// Gas sensing constants.
const (
	gasSensors = 16
	gasMaxPPM  = 600.0
	// gasBurnIn discards the first samples of each simulated run so sensor
	// states settle.
	gasBurnIn = 60
)

// gasSensorParams holds one MOX sensor's response characteristics.
type gasSensorParams struct {
	baseline   float64 // clean-air response
	gainEth    float64 // Ethylene sensitivity
	gainCO     float64 // CO sensitivity
	powEth     float64 // power-law exponent for Ethylene
	powCO      float64 // power-law exponent for CO
	cross      float64 // cross-term sensitivity
	tau        float64 // first-order response time constant (samples)
	noise      float64 // additive measurement noise
	driftScale float64 // slow multiplicative drift amplitude
}

// GasSen generates the dynamic gas-mixture estimation task: from a snapshot
// of 16 low-cost metal-oxide (MOX) chemical sensors, predict the true
// Ethylene and CO concentrations (0–600 ppm), as in the UCI dynamic
// gas-mixture dataset the paper uses.
//
// The simulator captures the physics that make the real task hard:
// sensors respond as power laws with cross-sensitivity to both gases,
// follow concentration changes through a first-order lag (so readings trail
// the true concentration after a step), drift slowly, and carry noise. The
// lag and drift put an irreducible floor on accuracy, landing MAE in the
// paper's ~19–39 ppm band.
func GasSen(sz Size) (*Dataset, error) {
	sz = sz.withDefaults(6000, 800, 1500)
	if err := sz.validate(); err != nil {
		return nil, fmt.Errorf("gassen: %w", err)
	}
	rng := rand.New(rand.NewSource(sz.Seed))

	sensors := make([]gasSensorParams, gasSensors)
	for i := range sensors {
		sensors[i] = gasSensorParams{
			baseline:   0.5 + rng.Float64(),
			gainEth:    0.5 + 1.5*rng.Float64(),
			gainCO:     0.5 + 1.5*rng.Float64(),
			powEth:     0.5 + 0.3*rng.Float64(),
			powCO:      0.5 + 0.3*rng.Float64(),
			cross:      0.1 * rng.Float64(),
			tau:        4 + 16*rng.Float64(),
			noise:      0.02 + 0.04*rng.Float64(),
			driftScale: 0.03 + 0.05*rng.Float64(),
		}
	}

	total := sz.Train + sz.Val + sz.Test
	samples := gasSimulate(total, sensors, rng)
	trainSet, valSet, testSet, err := shuffleSplit(samples, sz, rng)
	if err != nil {
		return nil, fmt.Errorf("gassen: %w", err)
	}
	d := &Dataset{
		Name: "GasSen", Task: TaskRegression,
		InputDim: gasSensors, OutputDim: 2,
		Train: trainSet, Val: valSet, Test: testSet,
		Unit: "ppm",
	}
	standardizeAll(d)
	return d, nil
}

// gasSimulate runs the sensor-array simulation long enough to emit n
// post-burn-in samples.
func gasSimulate(n int, sensors []gasSensorParams, rng *rand.Rand) []train.Sample {
	samples := make([]train.Sample, 0, n)

	// True concentrations follow piecewise-constant setpoints (the UCI rig
	// switches mixtures every few minutes) with small in-segment wander.
	ethSet, coSet := gasSetpoint(rng), gasSetpoint(rng)
	eth, co := ethSet, coSet
	segLeft := 20 + rng.Intn(60)

	// Sensor internal states start at their steady-state clean-air response.
	state := make([]float64, len(sensors))
	for i, s := range sensors {
		state[i] = s.response(eth, co)
	}
	driftPhase := make([]float64, len(sensors))
	for i := range driftPhase {
		driftPhase[i] = rng.Float64() * 2 * math.Pi
	}

	for t := 0; len(samples) < n; t++ {
		if segLeft == 0 {
			ethSet, coSet = gasSetpoint(rng), gasSetpoint(rng)
			segLeft = 20 + rng.Intn(60)
		}
		segLeft--

		// In-segment wander toward the setpoint.
		eth += 0.2*(ethSet-eth) + 2*rng.NormFloat64()
		co += 0.2*(coSet-co) + 2*rng.NormFloat64()
		eth = clampPPM(eth)
		co = clampPPM(co)

		reading := make([]float64, len(sensors))
		for i, s := range sensors {
			// First-order lag toward the instantaneous response.
			target := s.response(eth, co)
			state[i] += (target - state[i]) / s.tau
			drift := 1 + s.driftScale*math.Sin(2*math.Pi*float64(t)/5000+driftPhase[i])
			reading[i] = state[i]*drift + s.noise*rng.NormFloat64()
		}

		if t >= gasBurnIn {
			samples = append(samples, train.Sample{
				X: reading,
				Y: []float64{eth, co},
			})
		}
	}
	return samples
}

// response is the steady-state sensor output for a gas mixture.
func (s gasSensorParams) response(eth, co float64) float64 {
	e := eth / gasMaxPPM
	c := co / gasMaxPPM
	return s.baseline +
		s.gainEth*math.Pow(e, s.powEth) +
		s.gainCO*math.Pow(c, s.powCO) +
		s.cross*e*c
}

// gasSetpoint draws a new target concentration; 20% of segments are
// zero-gas purges, as in the UCI protocol.
func gasSetpoint(rng *rand.Rand) float64 {
	if rng.Float64() < 0.2 {
		return 0
	}
	return rng.Float64() * gasMaxPPM
}

func clampPPM(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > gasMaxPPM {
		return gasMaxPPM
	}
	return x
}
