// Package datasets implements synthetic generators for the paper's four IoT
// evaluation tasks (§IV-B). The real datasets (UCI cuff-less blood pressure,
// NYC TLC taxi records, UCI gas-sensor array, UCI HHAR) are external
// downloads; per the reproduction's substitution policy (DESIGN.md §2) each
// generator synthesizes data with the same shape, dimensionality, noise
// structure, and difficulty profile, so every estimator exercises the same
// code path the paper measured:
//
//   - BPEst: 250-sample PPG waveform → 250-sample ABP waveform (mmHg).
//   - NYCommute: 5 trip features → trip duration in minutes, with
//     heavy-tailed congestion noise.
//   - GasSen: 16 drifting MOX sensor readings → 2 gas concentrations (ppm).
//   - HHAR: IMU feature vectors → 6 activities, leave-one-user-out split.
package datasets

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/apdeepsense/apdeepsense/internal/train"
)

// ErrConfig is returned (wrapped) for invalid generator configurations.
var ErrConfig = errors.New("datasets: invalid configuration")

// Task distinguishes regression from classification datasets.
type Task int

// Supported task types.
const (
	// TaskRegression datasets carry real-valued standardized targets.
	TaskRegression Task = iota + 1
	// TaskClassification datasets carry one-hot targets.
	TaskClassification
)

// Dataset is a generated, split, and standardized task.
type Dataset struct {
	// Name is the paper's task name (BPEst, NYCommute, GasSen, HHAR).
	Name string
	// Task is the task type.
	Task Task
	// InputDim and OutputDim are the model-facing dimensions. For
	// classification OutputDim is the class count.
	InputDim, OutputDim int
	// Train, Val, Test are the standardized splits.
	Train, Val, Test []train.Sample
	// TargetMean and TargetStd hold the per-dimension standardization of
	// regression targets, used to express predictions in natural units
	// (mmHg, minutes, ppm). Empty for classification.
	TargetMean, TargetStd []float64
	// Unit names the natural unit of regression targets.
	Unit string
	// ClassNames labels classification outputs.
	ClassNames []string
}

// Size describes how much data to generate. Zero values take task defaults.
type Size struct {
	Train, Val, Test int
	// Seed drives all randomness in the generator.
	Seed int64
}

func (s Size) withDefaults(train, val, test int) Size {
	if s.Train == 0 {
		s.Train = train
	}
	if s.Val == 0 {
		s.Val = val
	}
	if s.Test == 0 {
		s.Test = test
	}
	return s
}

func (s Size) validate() error {
	if s.Train < 1 || s.Val < 0 || s.Test < 1 {
		return fmt.Errorf("sizes train=%d val=%d test=%d: %w", s.Train, s.Val, s.Test, ErrConfig)
	}
	return nil
}

// DenormPrediction converts a standardized prediction (mean and variance per
// output dimension) back into natural units using the dataset's target
// statistics. Inputs are not modified; for classification the inputs are
// returned unchanged.
func (d *Dataset) DenormPrediction(mean, variance []float64) ([]float64, []float64) {
	if d.Task != TaskRegression || len(d.TargetStd) == 0 {
		return append([]float64(nil), mean...), append([]float64(nil), variance...)
	}
	outM := make([]float64, len(mean))
	outV := make([]float64, len(variance))
	for i := range mean {
		sd := d.TargetStd[i]
		outM[i] = mean[i]*sd + d.TargetMean[i]
		outV[i] = variance[i] * sd * sd
	}
	return outM, outV
}

// DenormTarget converts a standardized target vector to natural units.
func (d *Dataset) DenormTarget(y []float64) []float64 {
	if d.Task != TaskRegression || len(d.TargetStd) == 0 {
		return append([]float64(nil), y...)
	}
	out := make([]float64, len(y))
	for i := range y {
		out[i] = y[i]*d.TargetStd[i] + d.TargetMean[i]
	}
	return out
}

// standardizer fits per-dimension z-score parameters on one split and
// applies them to others.
type standardizer struct {
	mean, std []float64
}

func fitStandardizer(samples []train.Sample, pick func(train.Sample) []float64) *standardizer {
	if len(samples) == 0 {
		return &standardizer{}
	}
	dim := len(pick(samples[0]))
	s := &standardizer{mean: make([]float64, dim), std: make([]float64, dim)}
	for _, smp := range samples {
		v := pick(smp)
		for i := range v {
			s.mean[i] += v[i]
		}
	}
	inv := 1.0 / float64(len(samples))
	for i := range s.mean {
		s.mean[i] *= inv
	}
	for _, smp := range samples {
		v := pick(smp)
		for i := range v {
			d := v[i] - s.mean[i]
			s.std[i] += d * d
		}
	}
	for i := range s.std {
		s.std[i] = math.Sqrt(s.std[i] * inv)
		if s.std[i] < 1e-9 {
			s.std[i] = 1 // constant feature: leave centered, unscaled
		}
	}
	return s
}

func (s *standardizer) apply(v []float64) {
	for i := range v {
		v[i] = (v[i] - s.mean[i]) / s.std[i]
	}
}

// standardizeAll fits input (and, for regression, target) statistics on the
// training split and applies them to every split in place.
func standardizeAll(d *Dataset) {
	inStd := fitStandardizer(d.Train, func(s train.Sample) []float64 { return s.X })
	var outStd *standardizer
	if d.Task == TaskRegression {
		outStd = fitStandardizer(d.Train, func(s train.Sample) []float64 { return s.Y })
		d.TargetMean = append([]float64(nil), outStd.mean...)
		d.TargetStd = append([]float64(nil), outStd.std...)
	}
	for _, split := range [][]train.Sample{d.Train, d.Val, d.Test} {
		for i := range split {
			inStd.apply(split[i].X)
			if outStd != nil {
				outStd.apply(split[i].Y)
			}
		}
	}
}

// oneHot returns a one-hot vector of length n with index i set.
func oneHot(n, i int) []float64 {
	v := make([]float64, n)
	v[i] = 1
	return v
}

// shuffleSplit shuffles samples and splits them into train/val/test of the
// given sizes. It reports an error if there are not enough samples.
func shuffleSplit(samples []train.Sample, sz Size, rng *rand.Rand) ([]train.Sample, []train.Sample, []train.Sample, error) {
	need := sz.Train + sz.Val + sz.Test
	if len(samples) < need {
		return nil, nil, nil, fmt.Errorf("have %d samples, need %d: %w", len(samples), need, ErrConfig)
	}
	rng.Shuffle(len(samples), func(i, j int) { samples[i], samples[j] = samples[j], samples[i] })
	trainSet := samples[:sz.Train]
	valSet := samples[sz.Train : sz.Train+sz.Val]
	testSet := samples[sz.Train+sz.Val : need]
	return trainSet, valSet, testSet, nil
}

// newSplitRNG builds the RNG used for user-supplied sample splitting.
func newSplitRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
