package datasets

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"github.com/apdeepsense/apdeepsense/internal/train"
)

func csvSamples() []train.Sample {
	return []train.Sample{
		{X: []float64{1, 2}, Y: []float64{3}},
		{X: []float64{-0.5, 1e-3}, Y: []float64{42}},
	}
}

func TestCSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, csvSamples()); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "x0,x1,y0\n") {
		t.Errorf("header missing: %q", out[:20])
	}
	back, err := ReadCSV(strings.NewReader(out), 2, 1)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	want := csvSamples()
	if len(back) != len(want) {
		t.Fatalf("read %d samples, want %d", len(back), len(want))
	}
	for i := range want {
		for j := range want[i].X {
			if back[i].X[j] != want[i].X[j] {
				t.Errorf("sample %d X[%d] = %v, want %v", i, j, back[i].X[j], want[i].X[j])
			}
		}
		if back[i].Y[0] != want[i].Y[0] {
			t.Errorf("sample %d Y = %v, want %v", i, back[i].Y[0], want[i].Y[0])
		}
	}
}

func TestCSVNoHeader(t *testing.T) {
	// Pure numeric CSV without header also loads.
	back, err := ReadCSV(strings.NewReader("1,2,3\n4,5,6\n"), 2, 1)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if len(back) != 2 || back[1].Y[0] != 6 {
		t.Errorf("parsed %v", back)
	}
}

func TestCSVErrors(t *testing.T) {
	if err := WriteCSV(&bytes.Buffer{}, nil); !errors.Is(err, ErrConfig) {
		t.Errorf("empty write err = %v", err)
	}
	ragged := []train.Sample{
		{X: []float64{1, 2}, Y: []float64{3}},
		{X: []float64{1}, Y: []float64{3}},
	}
	if err := WriteCSV(&bytes.Buffer{}, ragged); !errors.Is(err, ErrConfig) {
		t.Errorf("ragged write err = %v", err)
	}
	if _, err := ReadCSV(strings.NewReader("1,2,3\n"), 0, 1); !errors.Is(err, ErrConfig) {
		t.Errorf("bad dims err = %v", err)
	}
	// Non-numeric data row (not the header).
	if _, err := ReadCSV(strings.NewReader("1,2,3\n4,x,6\n"), 2, 1); !errors.Is(err, ErrConfig) {
		t.Errorf("bad value err = %v", err)
	}
	// Wrong column count.
	if _, err := ReadCSV(strings.NewReader("1,2\n"), 2, 1); err == nil {
		t.Error("expected error for short row")
	}
	// Header only.
	if _, err := ReadCSV(strings.NewReader("x0,x1,y0\n"), 2, 1); !errors.Is(err, ErrConfig) {
		t.Errorf("header-only err = %v", err)
	}
}

func TestCSVFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.csv")
	if err := WriteCSVFile(path, csvSamples()); err != nil {
		t.Fatalf("WriteCSVFile: %v", err)
	}
	back, err := ReadCSVFile(path, 2, 1)
	if err != nil {
		t.Fatalf("ReadCSVFile: %v", err)
	}
	if len(back) != 2 {
		t.Errorf("read %d samples", len(back))
	}
	if _, err := ReadCSVFile(filepath.Join(t.TempDir(), "missing.csv"), 2, 1); err == nil {
		t.Error("expected error for missing file")
	}
}

func TestFromSamples(t *testing.T) {
	var samples []train.Sample
	for i := 0; i < 100; i++ {
		samples = append(samples, train.Sample{
			X: []float64{float64(i), float64(i % 7)},
			Y: []float64{float64(2 * i)},
		})
	}
	d, err := FromSamples("custom", TaskRegression, samples, Size{Train: 70, Val: 10, Test: 20, Seed: 1})
	if err != nil {
		t.Fatalf("FromSamples: %v", err)
	}
	if d.Name != "custom" || d.InputDim != 2 || d.OutputDim != 1 {
		t.Errorf("metadata: %+v", d)
	}
	if len(d.Train) != 70 || len(d.Val) != 10 || len(d.Test) != 20 {
		t.Errorf("splits %d/%d/%d", len(d.Train), len(d.Val), len(d.Test))
	}
	if len(d.TargetStd) != 1 {
		t.Error("regression dataset missing target stats")
	}
	checkStandardized(t, d)
	// Original samples must not be mutated by standardization.
	if samples[0].X[0] != 0 || samples[99].Y[0] != 198 {
		t.Error("FromSamples mutated its input")
	}
}

func TestFromSamplesErrors(t *testing.T) {
	good := []train.Sample{{X: []float64{1}, Y: []float64{1}}, {X: []float64{2}, Y: []float64{2}}}
	if _, err := FromSamples("x", TaskRegression, nil, Size{Train: 1, Test: 1}); !errors.Is(err, ErrConfig) {
		t.Errorf("empty err = %v", err)
	}
	if _, err := FromSamples("x", Task(9), good, Size{Train: 1, Test: 1}); !errors.Is(err, ErrConfig) {
		t.Errorf("bad task err = %v", err)
	}
	ragged := []train.Sample{{X: []float64{1}, Y: []float64{1}}, {X: []float64{1, 2}, Y: []float64{2}}}
	if _, err := FromSamples("x", TaskRegression, ragged, Size{Train: 1, Test: 1}); !errors.Is(err, ErrConfig) {
		t.Errorf("ragged err = %v", err)
	}
	if _, err := FromSamples("x", TaskRegression, good, Size{Train: 5, Test: 5}); !errors.Is(err, ErrConfig) {
		t.Errorf("too-few err = %v", err)
	}
}

func TestExportGeneratedDataset(t *testing.T) {
	// The synthetic generators and the CSV pipeline compose: export a
	// generated split and re-import it.
	d, err := NYCommute(Size{Train: 50, Val: 10, Test: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d.Train); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, d.InputDim, d.OutputDim)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(d.Train) {
		t.Errorf("round trip lost samples: %d vs %d", len(back), len(d.Train))
	}
}
