package datasets

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/apdeepsense/apdeepsense/internal/train"
)

// NYC geography constants for the synthetic city grid (degrees).
const (
	nycLonMin, nycLonMax = -74.03, -73.75
	nycLatMin, nycLatMax = 40.58, 40.92
	// Manhattan core bounding box, where traffic is slowest.
	mhLonMin, mhLonMax = -74.02, -73.93
	mhLatMin, mhLatMax = 40.70, 40.88
	// kmPerDegLat converts latitude degrees to kilometres; longitude is
	// scaled by cos(40.75°).
	kmPerDegLat = 111.0
)

// NYCommute generates the taxi commute-time estimation task: from
// [pickup lon, pickup lat, dropoff lon, dropoff lat, pickup hour] predict
// the trip duration in minutes.
//
// The simulator reproduces the statistical character of the TLC records the
// paper uses: trips are concentrated around Manhattan; effective speed
// depends on how much of the trip crosses the Manhattan core and on the time
// of day (morning/evening rush slowdowns, fast nights); and durations carry
// multiplicative lognormal congestion noise, which makes the target
// heavy-tailed and heteroscedastic — the regime where small-k MCDrop NLL
// explodes (Table II's 6569 at k = 3).
func NYCommute(sz Size) (*Dataset, error) {
	sz = sz.withDefaults(6000, 800, 1500)
	if err := sz.validate(); err != nil {
		return nil, fmt.Errorf("nycommute: %w", err)
	}
	rng := rand.New(rand.NewSource(sz.Seed))
	total := sz.Train + sz.Val + sz.Test
	samples := make([]train.Sample, total)
	for i := range samples {
		samples[i] = nycTrip(rng)
	}
	trainSet, valSet, testSet, err := shuffleSplit(samples, sz, rng)
	if err != nil {
		return nil, fmt.Errorf("nycommute: %w", err)
	}
	d := &Dataset{
		Name: "NYCommute", Task: TaskRegression,
		InputDim: 5, OutputDim: 1,
		Train: trainSet, Val: valSet, Test: testSet,
		Unit: "min",
	}
	standardizeAll(d)
	return d, nil
}

// nycTrip synthesizes one taxi trip.
func nycTrip(rng *rand.Rand) train.Sample {
	pLon, pLat := nycPoint(rng)
	dLon, dLat := nycPoint(rng)
	hour := rng.Float64() * 24

	dist := nycDistanceKm(pLon, pLat, dLon, dLat)
	speed := nycSpeedKmh(pLon, pLat, dLon, dLat, hour)

	// Route factor (street grid vs straight line) plus pickup overhead.
	base := dist * 1.35 / speed * 60 // minutes
	base += 1.5 + rng.Float64()      // flag-down and first-block overhead

	// Multiplicative congestion noise: lognormal with sigma 0.30.
	dur := base * math.Exp(0.30*rng.NormFloat64())
	if dur < 1 {
		dur = 1
	}
	if dur > 120 {
		dur = 120
	}
	return train.Sample{
		X: []float64{pLon, pLat, dLon, dLat, hour},
		Y: []float64{dur},
	}
}

// nycPoint draws a pickup/dropoff location: 65% of endpoints are in the
// Manhattan core, mirroring the density of the TLC records.
func nycPoint(rng *rand.Rand) (lon, lat float64) {
	if rng.Float64() < 0.65 {
		return mhLonMin + (mhLonMax-mhLonMin)*rng.Float64(),
			mhLatMin + (mhLatMax-mhLatMin)*rng.Float64()
	}
	return nycLonMin + (nycLonMax-nycLonMin)*rng.Float64(),
		nycLatMin + (nycLatMax-nycLatMin)*rng.Float64()
}

// nycDistanceKm is the equirectangular approximation of the distance between
// two points, adequate at city scale.
func nycDistanceKm(lon1, lat1, lon2, lat2 float64) float64 {
	kx := kmPerDegLat * math.Cos(40.75*math.Pi/180)
	dx := (lon2 - lon1) * kx
	dy := (lat2 - lat1) * kmPerDegLat
	return math.Sqrt(dx*dx + dy*dy)
}

// inManhattan reports whether a point lies in the Manhattan core box.
func inManhattan(lon, lat float64) bool {
	return lon >= mhLonMin && lon <= mhLonMax && lat >= mhLatMin && lat <= mhLatMax
}

// nycSpeedKmh models the effective trip speed from zone mix and time of day.
func nycSpeedKmh(pLon, pLat, dLon, dLat, hour float64) float64 {
	mhShare := 0.0
	if inManhattan(pLon, pLat) {
		mhShare += 0.5
	}
	if inManhattan(dLon, dLat) {
		mhShare += 0.5
	}
	base := 34 - 16*mhShare // 34 km/h outer, 18 km/h fully in the core

	// Time-of-day factor: two rush-hour dips, a fast night.
	tod := 1.0
	switch {
	case hour >= 7 && hour < 10:
		tod = 0.62
	case hour >= 16 && hour < 19:
		tod = 0.58
	case hour >= 22 || hour < 5:
		tod = 1.35
	}
	return base * tod
}
