package rnn

import (
	"fmt"
	"math/rand"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/piecewise"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// LSTM is a long short-term memory cell with variational recurrent dropout
// on the recurrent state — the exact architecture of the paper's reference
// [37] (Gal & Ghahramani's Bayesian RNN), where one Bernoulli mask per
// sequence multiplies h at every step:
//
//	ĥ   = h_{t−1} ⊙ z
//	i   = σ(x Wxi + ĥ Whi + bi)      input gate
//	f   = σ(x Wxf + ĥ Whf + bf)      forget gate (bias initialized to +1)
//	o   = σ(x Wxo + ĥ Who + bo)      output gate
//	g   = tanh(x Wxg + ĥ Whg + bg)   candidate
//	c_t = f ⊙ c_{t−1} + i ⊙ g
//	h_t = o ⊙ tanh(c_t)
//
// with a linear readout of h_T. Moment propagation composes the dense
// dropout moments, PWL gate moments, and Gaussian product moments; the
// diagonal family drops gate/state/temporal correlations as everywhere else
// in ApDeepSense.
type LSTM struct {
	InDim, HiddenDim, OutDim int

	Wxi, Whi       *tensor.Matrix
	Wxf, Whf       *tensor.Matrix
	Wxo, Who       *tensor.Matrix
	Wxg, Whg       *tensor.Matrix
	Bi, Bf, Bo, Bg tensor.Vector

	Wo  *tensor.Matrix
	Bro tensor.Vector // readout bias

	KeepProb float64
}

// NewLSTM builds a Glorot-initialized LSTM with forget bias +1.
func NewLSTM(inDim, hiddenDim, outDim int, keepProb float64, rng *rand.Rand) (*LSTM, error) {
	if inDim < 1 || hiddenDim < 1 || outDim < 1 {
		return nil, fmt.Errorf("lstm dims %d/%d/%d: %w", inDim, hiddenDim, outDim, ErrConfig)
	}
	if keepProb <= 0 || keepProb > 1 {
		return nil, fmt.Errorf("lstm keep prob %v: %w", keepProb, ErrConfig)
	}
	l := &LSTM{
		InDim: inDim, HiddenDim: hiddenDim, OutDim: outDim,
		Wxi: tensor.NewMatrix(inDim, hiddenDim), Whi: tensor.NewMatrix(hiddenDim, hiddenDim),
		Wxf: tensor.NewMatrix(inDim, hiddenDim), Whf: tensor.NewMatrix(hiddenDim, hiddenDim),
		Wxo: tensor.NewMatrix(inDim, hiddenDim), Who: tensor.NewMatrix(hiddenDim, hiddenDim),
		Wxg: tensor.NewMatrix(inDim, hiddenDim), Whg: tensor.NewMatrix(hiddenDim, hiddenDim),
		Bi: tensor.NewVector(hiddenDim), Bf: tensor.NewVector(hiddenDim),
		Bo: tensor.NewVector(hiddenDim), Bg: tensor.NewVector(hiddenDim),
		Wo: tensor.NewMatrix(hiddenDim, outDim), Bro: tensor.NewVector(outDim),
		KeepProb: keepProb,
	}
	for _, w := range []*tensor.Matrix{l.Wxi, l.Wxf, l.Wxo, l.Wxg, l.Wo} {
		w.GlorotUniform(rng)
	}
	for _, w := range []*tensor.Matrix{l.Whi, l.Whf, l.Who, l.Whg} {
		w.GlorotUniform(rng)
		w.ScaleInPlace(0.6)
	}
	l.Bf.Fill(1) // standard forget-gate bias
	return l, nil
}

func (l *LSTM) checkSeq(xs []tensor.Vector) error {
	if len(xs) == 0 {
		return fmt.Errorf("lstm: empty sequence: %w", ErrConfig)
	}
	for t, x := range xs {
		if len(x) != l.InDim {
			return fmt.Errorf("lstm: step %d has dim %d, want %d: %w", t, len(x), l.InDim, ErrConfig)
		}
	}
	return nil
}

// lstmStep advances one step given the masked recurrent input, returning
// the gate activations, candidate, new cell state, tanh(c), and new hidden
// state for reuse by BPTT.
func (l *LSTM) lstmStep(x, masked, cPrev tensor.Vector) (i, f, o, g, c, tc, h tensor.Vector) {
	n := l.HiddenDim
	i = make(tensor.Vector, n)
	f = make(tensor.Vector, n)
	o = make(tensor.Vector, n)
	g = make(tensor.Vector, n)
	c = make(tensor.Vector, n)
	tc = make(tensor.Vector, n)
	h = make(tensor.Vector, n)
	tmpX := make(tensor.Vector, n)
	tmpH := make(tensor.Vector, n)

	gates := []struct {
		wx, wh *tensor.Matrix
		b, out tensor.Vector
		act    nn.Activation
	}{
		{l.Wxi, l.Whi, l.Bi, i, nn.ActSigmoid},
		{l.Wxf, l.Whf, l.Bf, f, nn.ActSigmoid},
		{l.Wxo, l.Who, l.Bo, o, nn.ActSigmoid},
		{l.Wxg, l.Whg, l.Bg, g, nn.ActTanh},
	}
	for _, gt := range gates {
		gt.wx.MulVecInto(x, tmpX)
		gt.wh.MulVecInto(masked, tmpH)
		for j := 0; j < n; j++ {
			gt.out[j] = gt.act.Apply(tmpX[j] + tmpH[j] + gt.b[j])
		}
	}
	for j := 0; j < n; j++ {
		c[j] = f[j]*cPrev[j] + i[j]*g[j]
		tc[j] = nn.ActTanh.Apply(c[j])
		h[j] = o[j] * tc[j]
	}
	return i, f, o, g, c, tc, h
}

// Forward runs the weight-scaled deterministic pass.
func (l *LSTM) Forward(xs []tensor.Vector) (tensor.Vector, error) {
	if err := l.checkSeq(xs); err != nil {
		return nil, err
	}
	n := l.HiddenDim
	h := make(tensor.Vector, n)
	c := make(tensor.Vector, n)
	masked := make(tensor.Vector, n)
	for _, x := range xs {
		for j := 0; j < n; j++ {
			masked[j] = h[j] * l.KeepProb
		}
		_, _, _, _, c, _, h = l.lstmStep(x, masked, c)
	}
	return l.readout(h), nil
}

// ForwardSample runs one stochastic pass with a single per-sequence mask.
func (l *LSTM) ForwardSample(xs []tensor.Vector, rng *rand.Rand) (tensor.Vector, error) {
	if err := l.checkSeq(xs); err != nil {
		return nil, err
	}
	n := l.HiddenDim
	mask := make([]float64, n)
	for j := range mask {
		if l.KeepProb >= 1 || rng.Float64() < l.KeepProb {
			mask[j] = 1
		}
	}
	h := make(tensor.Vector, n)
	c := make(tensor.Vector, n)
	masked := make(tensor.Vector, n)
	for _, x := range xs {
		for j := 0; j < n; j++ {
			masked[j] = h[j] * mask[j]
		}
		_, _, _, _, c, _, h = l.lstmStep(x, masked, c)
	}
	return l.readout(h), nil
}

func (l *LSTM) readout(h tensor.Vector) tensor.Vector {
	out := make(tensor.Vector, l.OutDim)
	l.Wo.MulVecInto(h, out)
	for j := range out {
		out[j] += l.Bro[j]
	}
	return out
}

// PropagateMoments runs the closed-form LSTM moment pass.
func (l *LSTM) PropagateMoments(xs []tensor.Vector) (core.GaussianVec, error) {
	if err := l.checkSeq(xs); err != nil {
		return core.GaussianVec{}, err
	}
	sig, err := piecewise.Sigmoid(7)
	if err != nil {
		return core.GaussianVec{}, err
	}
	tanh, err := piecewise.Tanh(7)
	if err != nil {
		return core.GaussianVec{}, err
	}
	n := l.HiddenDim
	p := l.KeepProb
	woSq := l.Wo.Square()

	type gateSpec struct {
		wx, wh, whSq *tensor.Matrix
		b            tensor.Vector
		f            *piecewise.Func
		outM, outV   tensor.Vector
	}
	gates := []gateSpec{
		{l.Wxi, l.Whi, l.Whi.Square(), l.Bi, sig, make(tensor.Vector, n), make(tensor.Vector, n)},
		{l.Wxf, l.Whf, l.Whf.Square(), l.Bf, sig, make(tensor.Vector, n), make(tensor.Vector, n)},
		{l.Wxo, l.Who, l.Who.Square(), l.Bo, sig, make(tensor.Vector, n), make(tensor.Vector, n)},
		{l.Wxg, l.Whg, l.Whg.Square(), l.Bg, tanh, make(tensor.Vector, n), make(tensor.Vector, n)},
	}

	h := core.NewGaussianVec(n)
	c := core.NewGaussianVec(n)
	mM := make(tensor.Vector, n)
	mV := make(tensor.Vector, n)
	xContrib := make(tensor.Vector, n)
	preM := make(tensor.Vector, n)
	preV := make(tensor.Vector, n)

	for _, x := range xs {
		for j := 0; j < n; j++ {
			mu, v := h.Mean[j], h.Var[j]
			mM[j] = p * mu
			mV[j] = p*(mu*mu+v) - p*p*mu*mu
		}
		for _, gt := range gates {
			gt.wx.MulVecInto(x, xContrib)
			gt.wh.MulVecInto(mM, preM)
			gt.whSq.MulVecInto(mV, preV)
			for j := 0; j < n; j++ {
				m := xContrib[j] + preM[j] + gt.b[j]
				v := preV[j]
				if v < 0 {
					v = 0
				}
				gt.outM[j], gt.outV[j] = core.ActivationMoments(m, v, gt.f)
			}
		}
		iM, iV := gates[0].outM, gates[0].outV
		fM, fV := gates[1].outM, gates[1].outV
		oM, oV := gates[2].outM, gates[2].outV
		gM, gV := gates[3].outM, gates[3].outV
		for j := 0; j < n; j++ {
			// c = f⊙c + i⊙g under the independence approximation.
			fcM, fcV := productMoments(fM[j], fV[j], c.Mean[j], c.Var[j])
			igM, igV := productMoments(iM[j], iV[j], gM[j], gV[j])
			c.Mean[j] = fcM + igM
			c.Var[j] = fcV + igV
			// h = o ⊙ tanh(c).
			tcM, tcV := core.ActivationMoments(c.Mean[j], c.Var[j], tanh)
			h.Mean[j], h.Var[j] = productMoments(oM[j], oV[j], tcM, tcV)
		}
	}

	out := core.NewGaussianVec(l.OutDim)
	l.Wo.MulVecInto(h.Mean, out.Mean)
	woSq.MulVecInto(h.Var, out.Var)
	for j := range out.Mean {
		out.Mean[j] += l.Bro[j]
	}
	return out, nil
}
