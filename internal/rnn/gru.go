package rnn

import (
	"fmt"
	"math/rand"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/piecewise"
	"github.com/apdeepsense/apdeepsense/internal/stats"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// GRU is a gated recurrent unit with variational recurrent dropout on the
// recurrent state (one mask per sequence, the Gal & Ghahramani recipe):
//
//	ĥ   = h_{t−1} ⊙ z
//	r_t = σ(x_t Wxr + ĥ Whr + br)
//	u_t = σ(x_t Wxu + ĥ Whu + bu)
//	c_t = tanh(x_t Wxc + (r_t ⊙ ĥ) Whc + bc)
//	h_t = u_t ⊙ h_{t−1} + (1 − u_t) ⊙ c_t
//
// with a linear readout of the final state. Moment propagation extends the
// dense machinery with closed-form moments of PRODUCTS of independent
// Gaussians (E[uv] = μuμv, Var[uv] = μu²σv² + μv²σu² + σu²σv²); the
// diagonal family drops the gate/state correlations, the same approximation
// ApDeepSense makes layer-wise.
type GRU struct {
	InDim, HiddenDim, OutDim int

	Wxr, Whr   *tensor.Matrix
	Wxu, Whu   *tensor.Matrix
	Wxc, Whc   *tensor.Matrix
	Br, Bu, Bc tensor.Vector

	Wo *tensor.Matrix
	Bo tensor.Vector

	KeepProb float64
}

// NewGRU builds a Glorot-initialized GRU.
func NewGRU(inDim, hiddenDim, outDim int, keepProb float64, rng *rand.Rand) (*GRU, error) {
	if inDim < 1 || hiddenDim < 1 || outDim < 1 {
		return nil, fmt.Errorf("gru dims %d/%d/%d: %w", inDim, hiddenDim, outDim, ErrConfig)
	}
	if keepProb <= 0 || keepProb > 1 {
		return nil, fmt.Errorf("gru keep prob %v: %w", keepProb, ErrConfig)
	}
	g := &GRU{
		InDim: inDim, HiddenDim: hiddenDim, OutDim: outDim,
		Wxr: tensor.NewMatrix(inDim, hiddenDim), Whr: tensor.NewMatrix(hiddenDim, hiddenDim),
		Wxu: tensor.NewMatrix(inDim, hiddenDim), Whu: tensor.NewMatrix(hiddenDim, hiddenDim),
		Wxc: tensor.NewMatrix(inDim, hiddenDim), Whc: tensor.NewMatrix(hiddenDim, hiddenDim),
		Br: tensor.NewVector(hiddenDim), Bu: tensor.NewVector(hiddenDim), Bc: tensor.NewVector(hiddenDim),
		Wo: tensor.NewMatrix(hiddenDim, outDim), Bo: tensor.NewVector(outDim),
		KeepProb: keepProb,
	}
	for _, w := range []*tensor.Matrix{g.Wxr, g.Wxu, g.Wxc, g.Wo} {
		w.GlorotUniform(rng)
	}
	for _, w := range []*tensor.Matrix{g.Whr, g.Whu, g.Whc} {
		w.GlorotUniform(rng)
		w.ScaleInPlace(0.6) // recurrent stability at init
	}
	return g, nil
}

func (g *GRU) checkSeq(xs []tensor.Vector) error {
	if len(xs) == 0 {
		return fmt.Errorf("gru: empty sequence: %w", ErrConfig)
	}
	for t, x := range xs {
		if len(x) != g.InDim {
			return fmt.Errorf("gru: step %d has dim %d, want %d: %w", t, len(x), g.InDim, ErrConfig)
		}
	}
	return nil
}

// gruStep computes one step given the (already masked) recurrent input.
// It returns r, u, c, h for reuse by training.
func (g *GRU) gruStep(x, h, masked tensor.Vector) (r, u, c, hNext tensor.Vector) {
	n := g.HiddenDim
	r = make(tensor.Vector, n)
	u = make(tensor.Vector, n)
	c = make(tensor.Vector, n)
	hNext = make(tensor.Vector, n)
	tmpX := make(tensor.Vector, n)
	tmpH := make(tensor.Vector, n)

	g.Wxr.MulVecInto(x, tmpX)
	g.Whr.MulVecInto(masked, tmpH)
	for j := 0; j < n; j++ {
		r[j] = nn.ActSigmoid.Apply(tmpX[j] + tmpH[j] + g.Br[j])
	}
	g.Wxu.MulVecInto(x, tmpX)
	g.Whu.MulVecInto(masked, tmpH)
	for j := 0; j < n; j++ {
		u[j] = nn.ActSigmoid.Apply(tmpX[j] + tmpH[j] + g.Bu[j])
	}
	rm := make(tensor.Vector, n)
	for j := 0; j < n; j++ {
		rm[j] = r[j] * masked[j]
	}
	g.Wxc.MulVecInto(x, tmpX)
	g.Whc.MulVecInto(rm, tmpH)
	for j := 0; j < n; j++ {
		c[j] = nn.ActTanh.Apply(tmpX[j] + tmpH[j] + g.Bc[j])
		hNext[j] = u[j]*h[j] + (1-u[j])*c[j]
	}
	return r, u, c, hNext
}

// Forward runs the weight-scaled deterministic pass.
func (g *GRU) Forward(xs []tensor.Vector) (tensor.Vector, error) {
	if err := g.checkSeq(xs); err != nil {
		return nil, err
	}
	h := make(tensor.Vector, g.HiddenDim)
	masked := make(tensor.Vector, g.HiddenDim)
	for _, x := range xs {
		for j := range masked {
			masked[j] = h[j] * g.KeepProb
		}
		_, _, _, h = g.gruStep(x, h, masked)
	}
	return g.readout(h), nil
}

// ForwardSample runs one stochastic pass with a single per-sequence mask.
func (g *GRU) ForwardSample(xs []tensor.Vector, rng *rand.Rand) (tensor.Vector, error) {
	if err := g.checkSeq(xs); err != nil {
		return nil, err
	}
	mask := make([]float64, g.HiddenDim)
	for i := range mask {
		if g.KeepProb >= 1 || rng.Float64() < g.KeepProb {
			mask[i] = 1
		}
	}
	h := make(tensor.Vector, g.HiddenDim)
	masked := make(tensor.Vector, g.HiddenDim)
	for _, x := range xs {
		for j := range masked {
			masked[j] = h[j] * mask[j]
		}
		_, _, _, h = g.gruStep(x, h, masked)
	}
	return g.readout(h), nil
}

func (g *GRU) readout(h tensor.Vector) tensor.Vector {
	out := make(tensor.Vector, g.OutDim)
	g.Wo.MulVecInto(h, out)
	for j := range out {
		out[j] += g.Bo[j]
	}
	return out
}

// productMoments returns the mean and variance of the product of two
// independent Gaussians.
func productMoments(mu1, v1, mu2, v2 float64) (float64, float64) {
	mean := mu1 * mu2
	variance := mu1*mu1*v2 + mu2*mu2*v1 + v1*v2
	return mean, variance
}

// GRUProp is a prepared moment propagator for one GRU: the squared weight
// matrices, the gate activation kernels (sigmoid/tanh PWL forms — the GRU
// has no rectifier gates, so the exact backend never applies here), and
// reusable scratch. Build once per trained GRU with GRU.NewProp; StepMoments
// and ReadoutMoments are the first-class step-level API the differential
// harness exercises.
//
// A GRUProp snapshots W² at construction; rebuild it after mutating the
// GRU's weights.
type GRUProp struct {
	g                      *GRU
	sig, tanh              *core.ActKernel
	whrSq, whuSq, whcSq    *tensor.Matrix
	woSq                   *tensor.Matrix
	mMean, mVar            tensor.Vector
	xr, xu, xc, preM, preV tensor.Vector
	rmM, rmV               tensor.Vector
	rM, rV, uM, uV, cM, cV tensor.Vector
	bounds                 []stats.Boundary
	pms                    []stats.PartialMoments
}

// NewProp prepares moment propagation for the GRU's current weights.
func (g *GRU) NewProp() (*GRUProp, error) {
	sigF, err := piecewise.Sigmoid(7)
	if err != nil {
		return nil, err
	}
	tanhF, err := piecewise.Tanh(7)
	if err != nil {
		return nil, err
	}
	sig := core.NewActKernel(sigF)
	tanh := core.NewActKernel(tanhF)
	n := g.HiddenDim
	nb := sig.NumBounds()
	if t := tanh.NumBounds(); t > nb {
		nb = t
	}
	mk := func() tensor.Vector { return make(tensor.Vector, n) }
	return &GRUProp{
		g: g, sig: sig, tanh: tanh,
		whrSq: g.Whr.Square(), whuSq: g.Whu.Square(), whcSq: g.Whc.Square(),
		woSq:  g.Wo.Square(),
		mMean: mk(), mVar: mk(),
		xr: mk(), xu: mk(), xc: mk(), preM: mk(), preV: mk(),
		rmM: mk(), rmV: mk(),
		rM: mk(), rV: mk(), uM: mk(), uV: mk(), cM: mk(), cV: mk(),
		bounds: make([]stats.Boundary, nb),
		pms:    make([]stats.PartialMoments, nb),
	}, nil
}

func (p *GRUProp) gate(x, hM, hV tensor.Vector, w, wSq *tensor.Matrix, b tensor.Vector, ak *core.ActKernel, outM, outV tensor.Vector) {
	n := p.g.HiddenDim
	w.MulVecInto(hM, p.preM)
	wSq.MulVecInto(hV, p.preV)
	for j := 0; j < n; j++ {
		m := x[j] + p.preM[j] + b[j]
		v := p.preV[j]
		if v < 0 {
			v = 0
		}
		outM[j], outV[j] = ak.Moments(m, v, p.bounds, p.pms)
	}
}

// StepMoments advances the hidden-state moments one timestep in place:
// dense moments for every gate pre-activation, sigmoid/tanh moments for the
// gate outputs, product-of-Gaussians moments for the gating
// multiplications, and independence across the convex combination.
func (p *GRUProp) StepMoments(h core.GaussianVec, x tensor.Vector) error {
	g := p.g
	if len(x) != g.InDim {
		return fmt.Errorf("gru: step input dim %d, want %d: %w", len(x), g.InDim, ErrConfig)
	}
	if h.Dim() != g.HiddenDim {
		return fmt.Errorf("gru: state dim %d, want %d: %w", h.Dim(), g.HiddenDim, ErrConfig)
	}
	n := g.HiddenDim
	kp := g.KeepProb
	// Masked recurrent state moments (dropout on h).
	for j := 0; j < n; j++ {
		mu, v := h.Mean[j], h.Var[j]
		p.mMean[j] = kp * mu
		p.mVar[j] = kp*(mu*mu+v) - kp*kp*mu*mu
	}
	g.Wxr.MulVecInto(x, p.xr)
	g.Wxu.MulVecInto(x, p.xu)
	g.Wxc.MulVecInto(x, p.xc)

	p.gate(p.xr, p.mMean, p.mVar, g.Whr, p.whrSq, g.Br, p.sig, p.rM, p.rV)
	p.gate(p.xu, p.mMean, p.mVar, g.Whu, p.whuSq, g.Bu, p.sig, p.uM, p.uV)

	// r ⊙ ĥ product moments.
	for j := 0; j < n; j++ {
		p.rmM[j], p.rmV[j] = productMoments(p.rM[j], p.rV[j], p.mMean[j], p.mVar[j])
	}
	g.Whc.MulVecInto(p.rmM, p.preM)
	p.whcSq.MulVecInto(p.rmV, p.preV)
	for j := 0; j < n; j++ {
		m := p.xc[j] + p.preM[j] + g.Bc[j]
		v := p.preV[j]
		if v < 0 {
			v = 0
		}
		p.cM[j], p.cV[j] = p.tanh.Moments(m, v, p.bounds, p.pms)
	}

	// h ← u⊙h + (1−u)⊙c under the independence approximation.
	for j := 0; j < n; j++ {
		uhM, uhV := productMoments(p.uM[j], p.uV[j], h.Mean[j], h.Var[j])
		ucM, ucV := productMoments(1-p.uM[j], p.uV[j], p.cM[j], p.cV[j])
		h.Mean[j] = uhM + ucM
		h.Var[j] = uhV + ucV
	}
	return nil
}

// ReadoutMoments maps final-state moments through the linear readout.
func (p *GRUProp) ReadoutMoments(h core.GaussianVec) core.GaussianVec {
	g := p.g
	out := core.NewGaussianVec(g.OutDim)
	g.Wo.MulVecInto(h.Mean, out.Mean)
	p.woSq.MulVecInto(h.Var, out.Var)
	for j := range out.Mean {
		out.Mean[j] += g.Bo[j]
	}
	return out
}

// PropagateMoments runs the closed-form GRU moment pass (StepMoments per
// timestep, then ReadoutMoments). One deterministic pass.
func (g *GRU) PropagateMoments(xs []tensor.Vector) (core.GaussianVec, error) {
	if err := g.checkSeq(xs); err != nil {
		return core.GaussianVec{}, err
	}
	prop, err := g.NewProp()
	if err != nil {
		return core.GaussianVec{}, err
	}
	h := core.NewGaussianVec(g.HiddenDim)
	for _, x := range xs {
		if err := prop.StepMoments(h, x); err != nil {
			return core.GaussianVec{}, err
		}
	}
	return prop.ReadoutMoments(h), nil
}

// PropagateMomentsBatch runs PropagateMoments over a batch of sequences
// with one shared GRUProp; bit-identical to sequential calls.
func (g *GRU) PropagateMomentsBatch(seqs [][]tensor.Vector) ([]core.GaussianVec, error) {
	prop, err := g.NewProp()
	if err != nil {
		return nil, err
	}
	out := make([]core.GaussianVec, len(seqs))
	for s, xs := range seqs {
		if err := g.checkSeq(xs); err != nil {
			return nil, fmt.Errorf("gru: sequence %d: %w", s, err)
		}
		h := core.NewGaussianVec(g.HiddenDim)
		for _, x := range xs {
			if err := prop.StepMoments(h, x); err != nil {
				return nil, fmt.Errorf("gru: sequence %d: %w", s, err)
			}
		}
		out[s] = prop.ReadoutMoments(h)
	}
	return out, nil
}
