package rnn

import (
	"fmt"
	"math/rand"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/piecewise"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// GRU is a gated recurrent unit with variational recurrent dropout on the
// recurrent state (one mask per sequence, the Gal & Ghahramani recipe):
//
//	ĥ   = h_{t−1} ⊙ z
//	r_t = σ(x_t Wxr + ĥ Whr + br)
//	u_t = σ(x_t Wxu + ĥ Whu + bu)
//	c_t = tanh(x_t Wxc + (r_t ⊙ ĥ) Whc + bc)
//	h_t = u_t ⊙ h_{t−1} + (1 − u_t) ⊙ c_t
//
// with a linear readout of the final state. Moment propagation extends the
// dense machinery with closed-form moments of PRODUCTS of independent
// Gaussians (E[uv] = μuμv, Var[uv] = μu²σv² + μv²σu² + σu²σv²); the
// diagonal family drops the gate/state correlations, the same approximation
// ApDeepSense makes layer-wise.
type GRU struct {
	InDim, HiddenDim, OutDim int

	Wxr, Whr   *tensor.Matrix
	Wxu, Whu   *tensor.Matrix
	Wxc, Whc   *tensor.Matrix
	Br, Bu, Bc tensor.Vector

	Wo *tensor.Matrix
	Bo tensor.Vector

	KeepProb float64
}

// NewGRU builds a Glorot-initialized GRU.
func NewGRU(inDim, hiddenDim, outDim int, keepProb float64, rng *rand.Rand) (*GRU, error) {
	if inDim < 1 || hiddenDim < 1 || outDim < 1 {
		return nil, fmt.Errorf("gru dims %d/%d/%d: %w", inDim, hiddenDim, outDim, ErrConfig)
	}
	if keepProb <= 0 || keepProb > 1 {
		return nil, fmt.Errorf("gru keep prob %v: %w", keepProb, ErrConfig)
	}
	g := &GRU{
		InDim: inDim, HiddenDim: hiddenDim, OutDim: outDim,
		Wxr: tensor.NewMatrix(inDim, hiddenDim), Whr: tensor.NewMatrix(hiddenDim, hiddenDim),
		Wxu: tensor.NewMatrix(inDim, hiddenDim), Whu: tensor.NewMatrix(hiddenDim, hiddenDim),
		Wxc: tensor.NewMatrix(inDim, hiddenDim), Whc: tensor.NewMatrix(hiddenDim, hiddenDim),
		Br: tensor.NewVector(hiddenDim), Bu: tensor.NewVector(hiddenDim), Bc: tensor.NewVector(hiddenDim),
		Wo: tensor.NewMatrix(hiddenDim, outDim), Bo: tensor.NewVector(outDim),
		KeepProb: keepProb,
	}
	for _, w := range []*tensor.Matrix{g.Wxr, g.Wxu, g.Wxc, g.Wo} {
		w.GlorotUniform(rng)
	}
	for _, w := range []*tensor.Matrix{g.Whr, g.Whu, g.Whc} {
		w.GlorotUniform(rng)
		w.ScaleInPlace(0.6) // recurrent stability at init
	}
	return g, nil
}

func (g *GRU) checkSeq(xs []tensor.Vector) error {
	if len(xs) == 0 {
		return fmt.Errorf("gru: empty sequence: %w", ErrConfig)
	}
	for t, x := range xs {
		if len(x) != g.InDim {
			return fmt.Errorf("gru: step %d has dim %d, want %d: %w", t, len(x), g.InDim, ErrConfig)
		}
	}
	return nil
}

// gruStep computes one step given the (already masked) recurrent input.
// It returns r, u, c, h for reuse by training.
func (g *GRU) gruStep(x, h, masked tensor.Vector) (r, u, c, hNext tensor.Vector) {
	n := g.HiddenDim
	r = make(tensor.Vector, n)
	u = make(tensor.Vector, n)
	c = make(tensor.Vector, n)
	hNext = make(tensor.Vector, n)
	tmpX := make(tensor.Vector, n)
	tmpH := make(tensor.Vector, n)

	g.Wxr.MulVecInto(x, tmpX)
	g.Whr.MulVecInto(masked, tmpH)
	for j := 0; j < n; j++ {
		r[j] = nn.ActSigmoid.Apply(tmpX[j] + tmpH[j] + g.Br[j])
	}
	g.Wxu.MulVecInto(x, tmpX)
	g.Whu.MulVecInto(masked, tmpH)
	for j := 0; j < n; j++ {
		u[j] = nn.ActSigmoid.Apply(tmpX[j] + tmpH[j] + g.Bu[j])
	}
	rm := make(tensor.Vector, n)
	for j := 0; j < n; j++ {
		rm[j] = r[j] * masked[j]
	}
	g.Wxc.MulVecInto(x, tmpX)
	g.Whc.MulVecInto(rm, tmpH)
	for j := 0; j < n; j++ {
		c[j] = nn.ActTanh.Apply(tmpX[j] + tmpH[j] + g.Bc[j])
		hNext[j] = u[j]*h[j] + (1-u[j])*c[j]
	}
	return r, u, c, hNext
}

// Forward runs the weight-scaled deterministic pass.
func (g *GRU) Forward(xs []tensor.Vector) (tensor.Vector, error) {
	if err := g.checkSeq(xs); err != nil {
		return nil, err
	}
	h := make(tensor.Vector, g.HiddenDim)
	masked := make(tensor.Vector, g.HiddenDim)
	for _, x := range xs {
		for j := range masked {
			masked[j] = h[j] * g.KeepProb
		}
		_, _, _, h = g.gruStep(x, h, masked)
	}
	return g.readout(h), nil
}

// ForwardSample runs one stochastic pass with a single per-sequence mask.
func (g *GRU) ForwardSample(xs []tensor.Vector, rng *rand.Rand) (tensor.Vector, error) {
	if err := g.checkSeq(xs); err != nil {
		return nil, err
	}
	mask := make([]float64, g.HiddenDim)
	for i := range mask {
		if g.KeepProb >= 1 || rng.Float64() < g.KeepProb {
			mask[i] = 1
		}
	}
	h := make(tensor.Vector, g.HiddenDim)
	masked := make(tensor.Vector, g.HiddenDim)
	for _, x := range xs {
		for j := range masked {
			masked[j] = h[j] * mask[j]
		}
		_, _, _, h = g.gruStep(x, h, masked)
	}
	return g.readout(h), nil
}

func (g *GRU) readout(h tensor.Vector) tensor.Vector {
	out := make(tensor.Vector, g.OutDim)
	g.Wo.MulVecInto(h, out)
	for j := range out {
		out[j] += g.Bo[j]
	}
	return out
}

// productMoments returns the mean and variance of the product of two
// independent Gaussians.
func productMoments(mu1, v1, mu2, v2 float64) (float64, float64) {
	mean := mu1 * mu2
	variance := mu1*mu1*v2 + mu2*mu2*v1 + v1*v2
	return mean, variance
}

// PropagateMoments runs the closed-form GRU moment pass: dense moments for
// every gate pre-activation, PWL sigmoid/tanh moments for the gate outputs,
// product-of-Gaussians moments for the gating multiplications, and
// independence across the convex combination. One deterministic pass.
func (g *GRU) PropagateMoments(xs []tensor.Vector) (core.GaussianVec, error) {
	if err := g.checkSeq(xs); err != nil {
		return core.GaussianVec{}, err
	}
	sig, err := piecewise.Sigmoid(7)
	if err != nil {
		return core.GaussianVec{}, err
	}
	tanh, err := piecewise.Tanh(7)
	if err != nil {
		return core.GaussianVec{}, err
	}
	n := g.HiddenDim
	p := g.KeepProb
	whrSq, whuSq, whcSq := g.Whr.Square(), g.Whu.Square(), g.Whc.Square()
	woSq := g.Wo.Square()

	h := core.NewGaussianVec(n)
	mMean := make(tensor.Vector, n)
	mVar := make(tensor.Vector, n)
	xr := make(tensor.Vector, n)
	xu := make(tensor.Vector, n)
	xc := make(tensor.Vector, n)
	preM := make(tensor.Vector, n)
	preV := make(tensor.Vector, n)
	rmM := make(tensor.Vector, n)
	rmV := make(tensor.Vector, n)

	gate := func(x, hM, hV tensor.Vector, w *tensor.Matrix, wSq *tensor.Matrix, b tensor.Vector, f *piecewise.Func, outM, outV tensor.Vector) {
		w.MulVecInto(hM, preM)
		wSq.MulVecInto(hV, preV)
		for j := 0; j < n; j++ {
			m := x[j] + preM[j] + b[j]
			v := preV[j]
			if v < 0 {
				v = 0
			}
			outM[j], outV[j] = core.ActivationMoments(m, v, f)
		}
	}

	rM := make(tensor.Vector, n)
	rV := make(tensor.Vector, n)
	uM := make(tensor.Vector, n)
	uV := make(tensor.Vector, n)
	cM := make(tensor.Vector, n)
	cV := make(tensor.Vector, n)

	for _, x := range xs {
		// Masked recurrent state moments (dropout on h).
		for j := 0; j < n; j++ {
			mu, v := h.Mean[j], h.Var[j]
			mMean[j] = p * mu
			mVar[j] = p*(mu*mu+v) - p*p*mu*mu
		}
		g.Wxr.MulVecInto(x, xr)
		g.Wxu.MulVecInto(x, xu)
		g.Wxc.MulVecInto(x, xc)

		gate(xr, mMean, mVar, g.Whr, whrSq, g.Br, sig, rM, rV)
		gate(xu, mMean, mVar, g.Whu, whuSq, g.Bu, sig, uM, uV)

		// r ⊙ ĥ product moments.
		for j := 0; j < n; j++ {
			rmM[j], rmV[j] = productMoments(rM[j], rV[j], mMean[j], mVar[j])
		}
		g.Whc.MulVecInto(rmM, preM)
		whcSq.MulVecInto(rmV, preV)
		for j := 0; j < n; j++ {
			m := xc[j] + preM[j] + g.Bc[j]
			v := preV[j]
			if v < 0 {
				v = 0
			}
			cM[j], cV[j] = core.ActivationMoments(m, v, tanh)
		}

		// h ← u⊙h + (1−u)⊙c under the independence approximation.
		for j := 0; j < n; j++ {
			uhM, uhV := productMoments(uM[j], uV[j], h.Mean[j], h.Var[j])
			ucM, ucV := productMoments(1-uM[j], uV[j], cM[j], cV[j])
			h.Mean[j] = uhM + ucM
			h.Var[j] = uhV + ucV
		}
	}

	out := core.NewGaussianVec(g.OutDim)
	g.Wo.MulVecInto(h.Mean, out.Mean)
	woSq.MulVecInto(h.Var, out.Var)
	for j := range out.Mean {
		out.Mean[j] += g.Bo[j]
	}
	return out, nil
}
