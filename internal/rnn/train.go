package rnn

import (
	"fmt"
	"math/rand"

	"github.com/apdeepsense/apdeepsense/internal/tensor"
	"github.com/apdeepsense/apdeepsense/internal/train"
)

// Sample is one supervised sequence example: a sequence of input vectors
// and a target on the final readout.
type Sample struct {
	Xs []tensor.Vector
	Y  tensor.Vector
}

// TrainConfig controls Train.
type TrainConfig struct {
	Epochs       int
	BatchSize    int
	LearningRate float64
	// ClipNorm clips the per-batch global gradient norm; 0 disables.
	// Recurrent nets need it: exploding gradients are the default failure.
	ClipNorm float64
	Seed     int64
	Loss     train.Loss
	Logf     func(format string, args ...any)
}

func (c TrainConfig) validate(n int) error {
	if c.Epochs < 1 || c.BatchSize < 1 || c.BatchSize > n || c.LearningRate <= 0 {
		return fmt.Errorf("epochs=%d batch=%d lr=%v over %d samples: %w",
			c.Epochs, c.BatchSize, c.LearningRate, n, ErrConfig)
	}
	if c.Loss == nil {
		return fmt.Errorf("nil loss: %w", ErrConfig)
	}
	if c.ClipNorm < 0 {
		return fmt.Errorf("clip norm %v: %w", c.ClipNorm, ErrConfig)
	}
	return nil
}

// cellGrads accumulates parameter gradients.
type cellGrads struct {
	wx, wh, wo *tensor.Matrix
	b, bo      tensor.Vector
}

func newCellGrads(c *Cell) *cellGrads {
	return &cellGrads{
		wx: tensor.NewMatrix(c.InDim, c.HiddenDim),
		wh: tensor.NewMatrix(c.HiddenDim, c.HiddenDim),
		wo: tensor.NewMatrix(c.HiddenDim, c.OutDim),
		b:  tensor.NewVector(c.HiddenDim),
		bo: tensor.NewVector(c.OutDim),
	}
}

func (g *cellGrads) zero() {
	g.wx.Fill(0)
	g.wh.Fill(0)
	g.wo.Fill(0)
	g.b.Fill(0)
	g.bo.Fill(0)
}

// Train fits the cell in place with minibatch SGD and full
// backpropagation-through-time, sampling one recurrent mask per sequence
// (the variational recurrent dropout training procedure).
func Train(c *Cell, data []Sample, cfg TrainConfig) error {
	if err := cfg.validate(len(data)); err != nil {
		return err
	}
	for i, s := range data {
		if err := c.checkSeq(s.Xs); err != nil {
			return fmt.Errorf("sample %d: %w", i, err)
		}
		if len(s.Y) == 0 {
			return fmt.Errorf("sample %d: empty target: %w", i, ErrConfig)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	perm := rng.Perm(len(data))
	grads := newCellGrads(c)
	lossGrad := tensor.NewVector(c.OutDim)

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		var epochLoss float64
		for start := 0; start < len(perm); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(perm) {
				end = len(perm)
			}
			grads.zero()
			for _, idx := range perm[start:end] {
				lv, err := c.bptt(data[idx], cfg.Loss, lossGrad, grads, rng)
				if err != nil {
					return fmt.Errorf("rnn: sample %d: %w", idx, err)
				}
				epochLoss += lv
			}
			scale := 1.0 / float64(end-start)
			applyClippedStep(c, grads, cfg, scale)
		}
		if cfg.Logf != nil {
			cfg.Logf("rnn epoch %d: train %.5f", epoch, epochLoss/float64(len(perm)))
		}
	}
	return nil
}

func applyClippedStep(c *Cell, g *cellGrads, cfg TrainConfig, scale float64) {
	applyClippedSGD(
		[][]float64{c.Wx.Data, c.Wh.Data, c.Wo.Data, c.B, c.Bo},
		[][]float64{g.wx.Data, g.wh.Data, g.wo.Data, g.b, g.bo},
		cfg, scale)
}

// bptt runs one stochastic forward pass and accumulates BPTT gradients.
func (c *Cell) bptt(s Sample, loss train.Loss, lossGrad tensor.Vector, g *cellGrads, rng *rand.Rand) (float64, error) {
	steps := len(s.Xs)
	mask := make([]float64, c.HiddenDim)
	for i := range mask {
		if c.KeepProb >= 1 || rng.Float64() < c.KeepProb {
			mask[i] = 1
		}
	}

	// Forward, storing pre-activations and (masked) previous states.
	pres := make([]tensor.Vector, steps)
	hs := make([]tensor.Vector, steps+1)
	hs[0] = tensor.NewVector(c.HiddenDim)
	masked := make([]tensor.Vector, steps)
	tmp := make(tensor.Vector, c.HiddenDim)
	for t, x := range s.Xs {
		masked[t] = make(tensor.Vector, c.HiddenDim)
		for i := range masked[t] {
			masked[t][i] = hs[t][i] * mask[i]
		}
		pre := make(tensor.Vector, c.HiddenDim)
		c.Wx.MulVecInto(x, pre)
		c.Wh.MulVecInto(masked[t], tmp)
		h := make(tensor.Vector, c.HiddenDim)
		for j := range pre {
			pre[j] += tmp[j] + c.B[j]
			h[j] = c.Act.Apply(pre[j])
		}
		pres[t] = pre
		hs[t+1] = h
	}
	out := c.readout(hs[steps])

	lv, err := loss.Eval(out, s.Y, lossGrad)
	if err != nil {
		return 0, err
	}

	// Readout gradients.
	if err := g.wo.OuterAddInPlace(hs[steps], lossGrad); err != nil {
		return 0, err
	}
	if err := g.bo.AddInPlace(lossGrad); err != nil {
		return 0, err
	}
	dh, err := c.Wo.MulVecT(lossGrad)
	if err != nil {
		return 0, err
	}

	// Through time.
	for t := steps - 1; t >= 0; t-- {
		dpre := make(tensor.Vector, c.HiddenDim)
		for j := range dpre {
			dpre[j] = dh[j] * c.Act.Derivative(pres[t][j])
		}
		if err := g.wx.OuterAddInPlace(s.Xs[t], dpre); err != nil {
			return 0, err
		}
		if err := g.wh.OuterAddInPlace(masked[t], dpre); err != nil {
			return 0, err
		}
		if err := g.b.AddInPlace(dpre); err != nil {
			return 0, err
		}
		if t > 0 {
			back, err := c.Wh.MulVecT(dpre)
			if err != nil {
				return 0, err
			}
			for i := range back {
				back[i] *= mask[i]
			}
			dh = back
		}
	}
	return lv, nil
}
