package rnn

import (
	"math"
	"math/rand"
	"testing"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

func randSeq(rng *rand.Rand, steps, dim int) []tensor.Vector {
	xs := make([]tensor.Vector, steps)
	for t := range xs {
		xs[t] = make(tensor.Vector, dim)
		for i := range xs[t] {
			xs[t][i] = rng.NormFloat64()
		}
	}
	return xs
}

func bitsEqual(t *testing.T, label string, a, b core.GaussianVec) {
	t.Helper()
	for j := range a.Mean {
		if math.Float64bits(a.Mean[j]) != math.Float64bits(b.Mean[j]) ||
			math.Float64bits(a.Var[j]) != math.Float64bits(b.Var[j]) {
			t.Fatalf("%s: out %d: (%v,%v) != (%v,%v)", label, j,
				a.Mean[j], a.Var[j], b.Mean[j], b.Var[j])
		}
	}
}

// TestCellStepBitIdenticalToFull pins the step-level API against the full
// pass: manually iterating CellProp.Step and Readout must reproduce
// PropagateMoments bit-for-bit, for both the PWL (tanh) and the exact
// rectifier backend.
func TestCellStepBitIdenticalToFull(t *testing.T) {
	for _, act := range []nn.Activation{nn.ActTanh, nn.ActReLU, nn.ActLeakyReLU} {
		rng := rand.New(rand.NewSource(31))
		c, err := NewCell(3, 8, 2, act, 0.8, rng)
		if err != nil {
			t.Fatal(err)
		}
		xs := randSeq(rng, 9, 3)
		want, err := c.PropagateMoments(xs)
		if err != nil {
			t.Fatal(err)
		}
		prop, err := c.NewProp()
		if err != nil {
			t.Fatal(err)
		}
		h := core.NewGaussianVec(c.HiddenDim)
		for _, x := range xs {
			if err := prop.Step(h, x); err != nil {
				t.Fatal(err)
			}
		}
		bitsEqual(t, act.String(), prop.Readout(h), want)
	}
}

// TestCellBatchBitIdentical pins batched propagation (shared CellProp and
// scratch) against independent sequential passes.
func TestCellBatchBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	c, err := NewCell(4, 6, 3, nn.ActTanh, 0.7, rng)
	if err != nil {
		t.Fatal(err)
	}
	seqs := make([][]tensor.Vector, 5)
	for s := range seqs {
		seqs[s] = randSeq(rng, 4+s, 4)
	}
	batch, err := c.PropagateMomentsBatch(seqs)
	if err != nil {
		t.Fatal(err)
	}
	for s, xs := range seqs {
		want, err := c.PropagateMoments(xs)
		if err != nil {
			t.Fatal(err)
		}
		bitsEqual(t, "cell batch", batch[s], want)
	}
}

// TestGRUStepBitIdenticalToFull pins GRUProp.StepMoments/ReadoutMoments
// against PropagateMoments, and the batched pass against sequential calls.
func TestGRUStepBitIdenticalToFull(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g, err := NewGRU(3, 7, 2, 0.85, rng)
	if err != nil {
		t.Fatal(err)
	}
	xs := randSeq(rng, 8, 3)
	want, err := g.PropagateMoments(xs)
	if err != nil {
		t.Fatal(err)
	}
	prop, err := g.NewProp()
	if err != nil {
		t.Fatal(err)
	}
	h := core.NewGaussianVec(g.HiddenDim)
	for _, x := range xs {
		if err := prop.StepMoments(h, x); err != nil {
			t.Fatal(err)
		}
	}
	bitsEqual(t, "gru step", prop.ReadoutMoments(h), want)

	seqs := [][]tensor.Vector{randSeq(rng, 5, 3), randSeq(rng, 9, 3)}
	batch, err := g.PropagateMomentsBatch(seqs)
	if err != nil {
		t.Fatal(err)
	}
	for s, sq := range seqs {
		w, err := g.PropagateMoments(sq)
		if err != nil {
			t.Fatal(err)
		}
		bitsEqual(t, "gru batch", batch[s], w)
	}
}

// TestCellExactDispatch pins the moment-backend resolution for recurrences:
// rectifier cells default to the exact closed form, explicit PWL overrides,
// tanh stays PWL, exact-on-tanh errors.
func TestCellExactDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	mk := func(act nn.Activation, mode nn.MomentMode) *Cell {
		c, err := NewCell(2, 4, 1, act, 0.9, rng)
		if err != nil {
			t.Fatal(err)
		}
		c.Moments = mode
		return c
	}
	for _, tc := range []struct {
		act   nn.Activation
		mode  nn.MomentMode
		exact bool
	}{
		{nn.ActReLU, nn.MomentsAuto, true},
		{nn.ActLeakyReLU, nn.MomentsAuto, true},
		{nn.ActReLU, nn.MomentsPWL, false},
		{nn.ActTanh, nn.MomentsAuto, false},
	} {
		prop, err := mk(tc.act, tc.mode).NewProp()
		if err != nil {
			t.Fatal(err)
		}
		if prop.MomentsExact() != tc.exact {
			t.Errorf("%v/%v: exact = %v, want %v", tc.act, tc.mode, prop.MomentsExact(), tc.exact)
		}
	}
	if _, err := mk(nn.ActTanh, nn.MomentsExact).NewProp(); err == nil {
		t.Error("exact moments on tanh recurrence should fail construction")
	}
}

// TestCellKeepOneVariance pins the KeepProb == 1 fast path: with no
// recurrent mask the state variance must pass through the dropout stage
// exactly instead of being rounded away against a large mean.
func TestCellKeepOneVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	c, err := NewCell(1, 1, 1, nn.ActIdentity, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	c.Wx.Data[0] = 0
	c.Wh.Data[0] = 1
	c.B[0] = 0
	prop, err := c.NewProp()
	if err != nil {
		t.Fatal(err)
	}
	h := core.NewGaussianVec(1)
	h.Mean[0] = 1e9
	h.Var[0] = 1
	if err := prop.Step(h, tensor.Vector{0}); err != nil {
		t.Fatal(err)
	}
	if h.Var[0] != 1 {
		// The generic algebra gives (1e18+1)·1 − 1e18, which rounds to 0.
		t.Errorf("keep=1 state variance = %v, want exactly 1", h.Var[0])
	}
	if h.Mean[0] != 1e9 {
		t.Errorf("keep=1 state mean = %v, want exactly 1e9", h.Mean[0])
	}
}
