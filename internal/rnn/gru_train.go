package rnn

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/apdeepsense/apdeepsense/internal/tensor"
	"github.com/apdeepsense/apdeepsense/internal/train"
)

// gruGrads accumulates GRU parameter gradients, ordered to match gruParams.
type gruGrads struct {
	wxr, whr, wxu, whu, wxc, whc *tensor.Matrix
	br, bu, bc                   tensor.Vector
	wo                           *tensor.Matrix
	bo                           tensor.Vector
}

func newGRUGrads(g *GRU) *gruGrads {
	return &gruGrads{
		wxr: tensor.NewMatrix(g.InDim, g.HiddenDim), whr: tensor.NewMatrix(g.HiddenDim, g.HiddenDim),
		wxu: tensor.NewMatrix(g.InDim, g.HiddenDim), whu: tensor.NewMatrix(g.HiddenDim, g.HiddenDim),
		wxc: tensor.NewMatrix(g.InDim, g.HiddenDim), whc: tensor.NewMatrix(g.HiddenDim, g.HiddenDim),
		br: tensor.NewVector(g.HiddenDim), bu: tensor.NewVector(g.HiddenDim), bc: tensor.NewVector(g.HiddenDim),
		wo: tensor.NewMatrix(g.HiddenDim, g.OutDim), bo: tensor.NewVector(g.OutDim),
	}
}

func (gr *gruGrads) slices() [][]float64 {
	return [][]float64{
		gr.wxr.Data, gr.whr.Data, gr.wxu.Data, gr.whu.Data, gr.wxc.Data, gr.whc.Data,
		gr.br, gr.bu, gr.bc, gr.wo.Data, gr.bo,
	}
}

func (g *GRU) paramSlices() [][]float64 {
	return [][]float64{
		g.Wxr.Data, g.Whr.Data, g.Wxu.Data, g.Whu.Data, g.Wxc.Data, g.Whc.Data,
		g.Br, g.Bu, g.Bc, g.Wo.Data, g.Bo,
	}
}

func (gr *gruGrads) zero() {
	for _, s := range gr.slices() {
		for i := range s {
			s[i] = 0
		}
	}
}

// TrainGRU fits the GRU in place with minibatch SGD and full BPTT, one
// recurrent mask per sequence.
func TrainGRU(g *GRU, data []Sample, cfg TrainConfig) error {
	if err := cfg.validate(len(data)); err != nil {
		return err
	}
	for i, s := range data {
		if err := g.checkSeq(s.Xs); err != nil {
			return fmt.Errorf("sample %d: %w", i, err)
		}
		if len(s.Y) == 0 {
			return fmt.Errorf("sample %d: empty target: %w", i, ErrConfig)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	perm := rng.Perm(len(data))
	grads := newGRUGrads(g)
	lossGrad := tensor.NewVector(g.OutDim)

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		var epochLoss float64
		for start := 0; start < len(perm); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(perm) {
				end = len(perm)
			}
			grads.zero()
			for _, idx := range perm[start:end] {
				lv, err := g.bptt(data[idx], cfg.Loss, lossGrad, grads, rng)
				if err != nil {
					return fmt.Errorf("gru: sample %d: %w", idx, err)
				}
				epochLoss += lv
			}
			applyClippedSGD(g.paramSlices(), grads.slices(), cfg, 1.0/float64(end-start))
		}
		if cfg.Logf != nil {
			cfg.Logf("gru epoch %d: train %.5f", epoch, epochLoss/float64(len(perm)))
		}
	}
	return nil
}

// applyClippedSGD scales, clips (global norm), and applies gradients.
func applyClippedSGD(params, grads [][]float64, cfg TrainConfig, scale float64) {
	for _, gs := range grads {
		for i := range gs {
			gs[i] *= scale
		}
	}
	if cfg.ClipNorm > 0 {
		var norm2 float64
		for _, gs := range grads {
			for _, v := range gs {
				norm2 += v * v
			}
		}
		if norm2 > cfg.ClipNorm*cfg.ClipNorm {
			f := cfg.ClipNorm / math.Sqrt(norm2)
			for _, gs := range grads {
				for i := range gs {
					gs[i] *= f
				}
			}
		}
	}
	for pi, ps := range params {
		for i := range ps {
			ps[i] -= cfg.LearningRate * grads[pi][i]
		}
	}
}

// gruTrace stores one sequence's forward intermediates.
type gruTrace struct {
	hs     []tensor.Vector // h_0 .. h_T
	masked []tensor.Vector // ĥ per step
	rs     []tensor.Vector
	us     []tensor.Vector
	cs     []tensor.Vector
}

// bptt runs one stochastic pass and accumulates GRU BPTT gradients.
func (g *GRU) bptt(s Sample, loss train.Loss, lossGrad tensor.Vector, gr *gruGrads, rng *rand.Rand) (float64, error) {
	steps := len(s.Xs)
	n := g.HiddenDim
	mask := make([]float64, n)
	for i := range mask {
		if g.KeepProb >= 1 || rng.Float64() < g.KeepProb {
			mask[i] = 1
		}
	}

	tr := gruTrace{hs: make([]tensor.Vector, steps+1)}
	tr.hs[0] = tensor.NewVector(n)
	for t, x := range s.Xs {
		masked := make(tensor.Vector, n)
		for j := 0; j < n; j++ {
			masked[j] = tr.hs[t][j] * mask[j]
		}
		r, u, c, h := g.gruStep(x, tr.hs[t], masked)
		tr.masked = append(tr.masked, masked)
		tr.rs = append(tr.rs, r)
		tr.us = append(tr.us, u)
		tr.cs = append(tr.cs, c)
		tr.hs[t+1] = h
	}
	out := g.readout(tr.hs[steps])

	lv, err := loss.Eval(out, s.Y, lossGrad)
	if err != nil {
		return 0, err
	}

	if err := gr.wo.OuterAddInPlace(tr.hs[steps], lossGrad); err != nil {
		return 0, err
	}
	if err := gr.bo.AddInPlace(lossGrad); err != nil {
		return 0, err
	}
	dh, err := g.Wo.MulVecT(lossGrad)
	if err != nil {
		return 0, err
	}

	rm := make(tensor.Vector, n)
	for t := steps - 1; t >= 0; t-- {
		x := s.Xs[t]
		hPrev := tr.hs[t]
		masked := tr.masked[t]
		r, u, c := tr.rs[t], tr.us[t], tr.cs[t]

		daU := make(tensor.Vector, n)
		daC := make(tensor.Vector, n)
		dhPrev := make(tensor.Vector, n)
		for j := 0; j < n; j++ {
			du := dh[j] * (hPrev[j] - c[j])
			daU[j] = du * u[j] * (1 - u[j])
			dc := dh[j] * (1 - u[j])
			daC[j] = dc * (1 - c[j]*c[j])
			dhPrev[j] = dh[j] * u[j]
			rm[j] = r[j] * masked[j]
		}

		if err := gr.wxc.OuterAddInPlace(x, daC); err != nil {
			return 0, err
		}
		if err := gr.whc.OuterAddInPlace(rm, daC); err != nil {
			return 0, err
		}
		if err := gr.bc.AddInPlace(daC); err != nil {
			return 0, err
		}

		dRM, err := g.Whc.MulVecT(daC)
		if err != nil {
			return 0, err
		}
		daR := make(tensor.Vector, n)
		dMasked := make(tensor.Vector, n)
		for j := 0; j < n; j++ {
			dr := dRM[j] * masked[j]
			daR[j] = dr * r[j] * (1 - r[j])
			dMasked[j] = dRM[j] * r[j]
		}

		if err := gr.wxr.OuterAddInPlace(x, daR); err != nil {
			return 0, err
		}
		if err := gr.whr.OuterAddInPlace(masked, daR); err != nil {
			return 0, err
		}
		if err := gr.br.AddInPlace(daR); err != nil {
			return 0, err
		}
		if err := gr.wxu.OuterAddInPlace(x, daU); err != nil {
			return 0, err
		}
		if err := gr.whu.OuterAddInPlace(masked, daU); err != nil {
			return 0, err
		}
		if err := gr.bu.AddInPlace(daU); err != nil {
			return 0, err
		}

		backR, err := g.Whr.MulVecT(daR)
		if err != nil {
			return 0, err
		}
		backU, err := g.Whu.MulVecT(daU)
		if err != nil {
			return 0, err
		}
		for j := 0; j < n; j++ {
			dMasked[j] += backR[j] + backU[j]
			dhPrev[j] += dMasked[j] * mask[j]
		}
		dh = dhPrev
	}
	return lv, nil
}
