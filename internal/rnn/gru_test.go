package rnn

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/apdeepsense/apdeepsense/internal/tensor"
	"github.com/apdeepsense/apdeepsense/internal/train"
)

func TestNewGRUValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		in, hid, out int
		keep         float64
	}{
		{0, 4, 1, 1}, {1, 0, 1, 1}, {1, 4, 0, 1}, {1, 4, 1, 0}, {1, 4, 1, 2},
	}
	for i, c := range cases {
		if _, err := NewGRU(c.in, c.hid, c.out, c.keep, rng); !errors.Is(err, ErrConfig) {
			t.Errorf("case %d: err = %v, want ErrConfig", i, err)
		}
	}
	if _, err := NewGRU(2, 4, 1, 0.9, rng); err != nil {
		t.Errorf("valid GRU: %v", err)
	}
}

func TestGRUSequenceValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, _ := NewGRU(2, 4, 1, 0.9, rng)
	if _, err := g.Forward(nil); !errors.Is(err, ErrConfig) {
		t.Errorf("empty err = %v", err)
	}
	if _, err := g.ForwardSample([]tensor.Vector{{1}}, rng); !errors.Is(err, ErrConfig) {
		t.Errorf("dim err = %v", err)
	}
	if _, err := g.PropagateMoments([]tensor.Vector{{1}}); !errors.Is(err, ErrConfig) {
		t.Errorf("moments dim err = %v", err)
	}
}

func TestGRUNoDropoutDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, err := NewGRU(2, 6, 2, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	xs := []tensor.Vector{{1, -1}, {0.5, 0.2}, {-0.3, 0.8}}
	a, err := g.Forward(xs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.ForwardSample(xs, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b, 1e-12) {
		t.Errorf("no-dropout sample %v != forward %v", b, a)
	}
	// Gates keep the state bounded: outputs finite and small.
	for _, v := range a {
		if math.IsNaN(v) || math.Abs(v) > 100 {
			t.Errorf("implausible GRU output %v", v)
		}
	}
}

func TestProductMoments(t *testing.T) {
	// Verify against Monte Carlo.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		mu1, v1 := rng.NormFloat64(), rng.Float64()
		mu2, v2 := rng.NormFloat64(), rng.Float64()
		gotM, gotV := productMoments(mu1, v1, mu2, v2)
		var sum, sum2 float64
		const samples = 400000
		s1, s2 := math.Sqrt(v1), math.Sqrt(v2)
		for i := 0; i < samples; i++ {
			prod := (mu1 + s1*rng.NormFloat64()) * (mu2 + s2*rng.NormFloat64())
			sum += prod
			sum2 += prod * prod
		}
		mcM := sum / samples
		mcV := sum2/samples - mcM*mcM
		if math.Abs(gotM-mcM) > 0.01+0.01*math.Abs(mcM) {
			t.Errorf("trial %d: mean %v vs MC %v", trial, gotM, mcM)
		}
		if math.Abs(gotV-mcV) > 0.03*mcV+0.01 {
			t.Errorf("trial %d: var %v vs MC %v", trial, gotV, mcV)
		}
	}
}

// TestGRUMomentsVsMonteCarlo: means must track the sampled means; the
// variance is order-of-magnitude (the diagonal family drops the gate/state
// and temporal correlations).
func TestGRUMomentsVsMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g, err := NewGRU(2, 10, 2, 0.8, rng)
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]tensor.Vector, 5)
	for i := range xs {
		xs[i] = tensor.Vector{rng.NormFloat64(), rng.NormFloat64()}
	}
	got, err := g.PropagateMoments(xs)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("moments invalid: %v", err)
	}

	const samples = 50000
	sum := make(tensor.Vector, 2)
	sum2 := make(tensor.Vector, 2)
	for s := 0; s < samples; s++ {
		y, err := g.ForwardSample(xs, rng)
		if err != nil {
			t.Fatal(err)
		}
		for j := range y {
			sum[j] += y[j]
			sum2[j] += y[j] * y[j]
		}
	}
	for j := 0; j < 2; j++ {
		mcMean := sum[j] / samples
		mcVar := sum2[j]/samples - mcMean*mcMean
		if math.Abs(got.Mean[j]-mcMean) > 0.6*math.Sqrt(mcVar)+0.08 {
			t.Errorf("out %d: mean %v vs MC %v", j, got.Mean[j], mcMean)
		}
		if mcVar > 1e-8 {
			ratio := got.Var[j] / mcVar
			if ratio < 0.05 || ratio > 20 {
				t.Errorf("out %d: var %v vs MC %v (ratio %v)", j, got.Var[j], mcVar, ratio)
			}
		}
	}
}

// TestGRUGradientCheck verifies the GRU BPTT against finite differences on
// a dropout-free cell, over every parameter group.
func TestGRUGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g, err := NewGRU(2, 3, 2, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	s := Sample{
		Xs: []tensor.Vector{{0.5, -1}, {0.2, 0.8}, {-0.4, 0.1}},
		Y:  tensor.Vector{0.3, -0.6},
	}
	loss := train.MSE{}
	gr := newGRUGrads(g)
	lossGrad := tensor.NewVector(2)
	if _, err := g.bptt(s, loss, lossGrad, gr, rng); err != nil {
		t.Fatal(err)
	}

	lossAt := func() float64 {
		out, err := g.Forward(s.Xs)
		if err != nil {
			t.Fatal(err)
		}
		lg := tensor.NewVector(2)
		lv, err := loss.Eval(out, s.Y, lg)
		if err != nil {
			t.Fatal(err)
		}
		return lv
	}
	const h = 1e-6
	params := g.paramSlices()
	grads := gr.slices()
	names := []string{"Wxr", "Whr", "Wxu", "Whu", "Wxc", "Whc", "Br", "Bu", "Bc", "Wo", "Bo"}
	for pi := range params {
		for idx := range params[pi] {
			orig := params[pi][idx]
			params[pi][idx] = orig + h
			up := lossAt()
			params[pi][idx] = orig - h
			down := lossAt()
			params[pi][idx] = orig
			num := (up - down) / (2 * h)
			if math.Abs(num-grads[pi][idx]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("%s[%d]: analytic %v vs numeric %v", names[pi], idx, grads[pi][idx], num)
			}
		}
	}
}

// TestGRUTrainingConverges fits the last-value memory task: output the mean
// of the final three inputs.
func TestGRUTrainingConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	mkSample := func() Sample {
		steps := 6
		xs := make([]tensor.Vector, steps)
		for i := range xs {
			xs[i] = tensor.Vector{rng.NormFloat64()}
		}
		m := (xs[3][0] + xs[4][0] + xs[5][0]) / 3
		return Sample{Xs: xs, Y: tensor.Vector{m}}
	}
	var data []Sample
	for i := 0; i < 400; i++ {
		data = append(data, mkSample())
	}
	g, err := NewGRU(1, 12, 1, 0.95, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := TrainGRU(g, data, TrainConfig{
		Epochs: 60, BatchSize: 16, LearningRate: 0.05, ClipNorm: 5, Seed: 2,
		Loss: train.MSE{},
	}); err != nil {
		t.Fatal(err)
	}
	var sumErr float64
	for _, s := range data[:100] {
		out, err := g.Forward(s.Xs)
		if err != nil {
			t.Fatal(err)
		}
		sumErr += math.Abs(out[0] - s.Y[0])
	}
	if mae := sumErr / 100; mae > 0.2 {
		t.Errorf("GRU memory-task MAE = %v, want < 0.2", mae)
	}
}

func TestTrainGRUValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, _ := NewGRU(1, 4, 1, 0.9, rng)
	data := []Sample{{Xs: seqOf(1, 2), Y: tensor.Vector{1}}}
	if err := TrainGRU(g, data, TrainConfig{Epochs: 0, BatchSize: 1, LearningRate: 0.1, Loss: train.MSE{}}); !errors.Is(err, ErrConfig) {
		t.Errorf("bad cfg err = %v", err)
	}
	badData := []Sample{{Xs: []tensor.Vector{{1, 2}}, Y: tensor.Vector{1}}}
	if err := TrainGRU(g, badData, TrainConfig{Epochs: 1, BatchSize: 1, LearningRate: 0.1, Loss: train.MSE{}}); !errors.Is(err, ErrConfig) {
		t.Errorf("bad seq err = %v", err)
	}
	noY := []Sample{{Xs: seqOf(1), Y: nil}}
	if err := TrainGRU(g, noY, TrainConfig{Epochs: 1, BatchSize: 1, LearningRate: 0.1, Loss: train.MSE{}}); !errors.Is(err, ErrConfig) {
		t.Errorf("no target err = %v", err)
	}
}
