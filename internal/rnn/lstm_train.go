package rnn

import (
	"fmt"
	"math/rand"

	"github.com/apdeepsense/apdeepsense/internal/tensor"
	"github.com/apdeepsense/apdeepsense/internal/train"
)

// lstmGrads accumulates LSTM parameter gradients, ordered as paramSlices.
type lstmGrads struct {
	wxi, whi, wxf, whf, wxo, who, wxg, whg *tensor.Matrix
	bi, bf, bo, bg                         tensor.Vector
	wo                                     *tensor.Matrix
	bro                                    tensor.Vector
}

func newLSTMGrads(l *LSTM) *lstmGrads {
	return &lstmGrads{
		wxi: tensor.NewMatrix(l.InDim, l.HiddenDim), whi: tensor.NewMatrix(l.HiddenDim, l.HiddenDim),
		wxf: tensor.NewMatrix(l.InDim, l.HiddenDim), whf: tensor.NewMatrix(l.HiddenDim, l.HiddenDim),
		wxo: tensor.NewMatrix(l.InDim, l.HiddenDim), who: tensor.NewMatrix(l.HiddenDim, l.HiddenDim),
		wxg: tensor.NewMatrix(l.InDim, l.HiddenDim), whg: tensor.NewMatrix(l.HiddenDim, l.HiddenDim),
		bi: tensor.NewVector(l.HiddenDim), bf: tensor.NewVector(l.HiddenDim),
		bo: tensor.NewVector(l.HiddenDim), bg: tensor.NewVector(l.HiddenDim),
		wo: tensor.NewMatrix(l.HiddenDim, l.OutDim), bro: tensor.NewVector(l.OutDim),
	}
}

func (gr *lstmGrads) slices() [][]float64 {
	return [][]float64{
		gr.wxi.Data, gr.whi.Data, gr.wxf.Data, gr.whf.Data,
		gr.wxo.Data, gr.who.Data, gr.wxg.Data, gr.whg.Data,
		gr.bi, gr.bf, gr.bo, gr.bg, gr.wo.Data, gr.bro,
	}
}

func (l *LSTM) paramSlices() [][]float64 {
	return [][]float64{
		l.Wxi.Data, l.Whi.Data, l.Wxf.Data, l.Whf.Data,
		l.Wxo.Data, l.Who.Data, l.Wxg.Data, l.Whg.Data,
		l.Bi, l.Bf, l.Bo, l.Bg, l.Wo.Data, l.Bro,
	}
}

func (gr *lstmGrads) zero() {
	for _, s := range gr.slices() {
		for i := range s {
			s[i] = 0
		}
	}
}

// TrainLSTM fits the LSTM in place with minibatch SGD and full BPTT, one
// recurrent mask per sequence (variational recurrent dropout training).
func TrainLSTM(l *LSTM, data []Sample, cfg TrainConfig) error {
	if err := cfg.validate(len(data)); err != nil {
		return err
	}
	for i, s := range data {
		if err := l.checkSeq(s.Xs); err != nil {
			return fmt.Errorf("sample %d: %w", i, err)
		}
		if len(s.Y) == 0 {
			return fmt.Errorf("sample %d: empty target: %w", i, ErrConfig)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	perm := rng.Perm(len(data))
	grads := newLSTMGrads(l)
	lossGrad := tensor.NewVector(l.OutDim)

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		var epochLoss float64
		for start := 0; start < len(perm); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(perm) {
				end = len(perm)
			}
			grads.zero()
			for _, idx := range perm[start:end] {
				lv, err := l.bptt(data[idx], cfg.Loss, lossGrad, grads, rng)
				if err != nil {
					return fmt.Errorf("lstm: sample %d: %w", idx, err)
				}
				epochLoss += lv
			}
			applyClippedSGD(l.paramSlices(), grads.slices(), cfg, 1.0/float64(end-start))
		}
		if cfg.Logf != nil {
			cfg.Logf("lstm epoch %d: train %.5f", epoch, epochLoss/float64(len(perm)))
		}
	}
	return nil
}

// lstmTrace stores one sequence's forward intermediates for BPTT.
type lstmTrace struct {
	hs, cs              []tensor.Vector // states h_0..h_T, c_0..c_T
	masked              []tensor.Vector
	is, fs, os, gs, tcs []tensor.Vector
}

// bptt runs one stochastic pass and accumulates LSTM BPTT gradients.
func (l *LSTM) bptt(s Sample, loss train.Loss, lossGrad tensor.Vector, gr *lstmGrads, rng *rand.Rand) (float64, error) {
	steps := len(s.Xs)
	n := l.HiddenDim
	mask := make([]float64, n)
	for j := range mask {
		if l.KeepProb >= 1 || rng.Float64() < l.KeepProb {
			mask[j] = 1
		}
	}

	tr := lstmTrace{hs: make([]tensor.Vector, steps+1), cs: make([]tensor.Vector, steps+1)}
	tr.hs[0] = tensor.NewVector(n)
	tr.cs[0] = tensor.NewVector(n)
	for t, x := range s.Xs {
		masked := make(tensor.Vector, n)
		for j := 0; j < n; j++ {
			masked[j] = tr.hs[t][j] * mask[j]
		}
		i, f, o, g, c, tc, h := l.lstmStep(x, masked, tr.cs[t])
		tr.masked = append(tr.masked, masked)
		tr.is = append(tr.is, i)
		tr.fs = append(tr.fs, f)
		tr.os = append(tr.os, o)
		tr.gs = append(tr.gs, g)
		tr.tcs = append(tr.tcs, tc)
		tr.hs[t+1] = h
		tr.cs[t+1] = c
	}
	out := l.readout(tr.hs[steps])

	lv, err := loss.Eval(out, s.Y, lossGrad)
	if err != nil {
		return 0, err
	}
	if err := gr.wo.OuterAddInPlace(tr.hs[steps], lossGrad); err != nil {
		return 0, err
	}
	if err := gr.bro.AddInPlace(lossGrad); err != nil {
		return 0, err
	}
	dh, err := l.Wo.MulVecT(lossGrad)
	if err != nil {
		return 0, err
	}
	dc := tensor.NewVector(n)

	for t := steps - 1; t >= 0; t-- {
		x := s.Xs[t]
		masked := tr.masked[t]
		i, f, o, g, tc := tr.is[t], tr.fs[t], tr.os[t], tr.gs[t], tr.tcs[t]
		cPrev := tr.cs[t]

		daI := make(tensor.Vector, n)
		daF := make(tensor.Vector, n)
		daO := make(tensor.Vector, n)
		daG := make(tensor.Vector, n)
		dcPrev := make(tensor.Vector, n)
		for j := 0; j < n; j++ {
			do := dh[j] * tc[j]
			dcj := dc[j] + dh[j]*o[j]*(1-tc[j]*tc[j])
			daO[j] = do * o[j] * (1 - o[j])
			daF[j] = dcj * cPrev[j] * f[j] * (1 - f[j])
			daI[j] = dcj * g[j] * i[j] * (1 - i[j])
			daG[j] = dcj * i[j] * (1 - g[j]*g[j])
			dcPrev[j] = dcj * f[j]
		}

		type gradPair struct {
			wx, wh *tensor.Matrix
			b      tensor.Vector
			da     tensor.Vector
			whSrc  *tensor.Matrix
		}
		pairs := []gradPair{
			{gr.wxi, gr.whi, gr.bi, daI, l.Whi},
			{gr.wxf, gr.whf, gr.bf, daF, l.Whf},
			{gr.wxo, gr.who, gr.bo, daO, l.Who},
			{gr.wxg, gr.whg, gr.bg, daG, l.Whg},
		}
		dMasked := tensor.NewVector(n)
		for _, pr := range pairs {
			if err := pr.wx.OuterAddInPlace(x, pr.da); err != nil {
				return 0, err
			}
			if err := pr.wh.OuterAddInPlace(masked, pr.da); err != nil {
				return 0, err
			}
			if err := pr.b.AddInPlace(pr.da); err != nil {
				return 0, err
			}
			back, err := pr.whSrc.MulVecT(pr.da)
			if err != nil {
				return 0, err
			}
			if err := dMasked.AddInPlace(back); err != nil {
				return 0, err
			}
		}
		dhPrev := make(tensor.Vector, n)
		for j := 0; j < n; j++ {
			dhPrev[j] = dMasked[j] * mask[j]
		}
		dh = dhPrev
		dc = dcPrev
	}
	return lv, nil
}
