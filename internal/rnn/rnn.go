// Package rnn implements the second half of the paper's future-work
// extension (§VI): ApDeepSense-style closed-form uncertainty propagation for
// recurrent networks with *recurrent dropout* (Gal & Ghahramani's
// variational RNN, the paper's [37]).
//
// Recurrent dropout samples ONE Bernoulli mask per sequence — the same mask
// multiplies the recurrent state at every timestep. The moment propagation
// applies the dense dropout moment formulas (paper eqs. 9–10) to the
// recurrent term at each step and pushes the result through the PWL
// activation machinery (eqs. 12–26). As everywhere in ApDeepSense the
// layer-wise (here: step-wise) diagonal Gaussian family drops the
// correlations the shared mask induces across timesteps; the Monte-Carlo
// tests quantify that approximation.
//
// The package provides a single-layer Elman recurrence with a dense readout,
// deterministic and stochastic forward passes, truncated-BPTT training, and
// the closed-form moment pass.
package rnn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/piecewise"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// ErrConfig is returned (wrapped) for invalid configurations.
var ErrConfig = errors.New("rnn: invalid configuration")

// Cell is an Elman recurrence with recurrent dropout:
//
//	h_t = f( x_t Wx + (h_{t−1} ⊙ z) Wh + b ),   z ~ Bernoulli(KeepProb) per sequence
//
// followed by a linear readout y = h_T Wo + bo of the final state.
type Cell struct {
	// InDim, HiddenDim, OutDim define the geometry.
	InDim, HiddenDim, OutDim int
	// Wx is InDim×HiddenDim, Wh is HiddenDim×HiddenDim, Wo is
	// HiddenDim×OutDim.
	Wx, Wh, Wo *tensor.Matrix
	// B and Bo are the recurrence and readout biases.
	B, Bo tensor.Vector
	// Act is the recurrence non-linearity (typically tanh).
	Act nn.Activation
	// KeepProb is the recurrent-state keep probability.
	KeepProb float64
}

// NewCell builds a Glorot-initialized cell.
func NewCell(inDim, hiddenDim, outDim int, act nn.Activation, keepProb float64, rng *rand.Rand) (*Cell, error) {
	if inDim < 1 || hiddenDim < 1 || outDim < 1 {
		return nil, fmt.Errorf("dims %d/%d/%d: %w", inDim, hiddenDim, outDim, ErrConfig)
	}
	if keepProb <= 0 || keepProb > 1 {
		return nil, fmt.Errorf("keep prob %v: %w", keepProb, ErrConfig)
	}
	if !act.Valid() {
		return nil, fmt.Errorf("activation %v: %w", act, ErrConfig)
	}
	c := &Cell{
		InDim: inDim, HiddenDim: hiddenDim, OutDim: outDim,
		Wx:  tensor.NewMatrix(inDim, hiddenDim),
		Wh:  tensor.NewMatrix(hiddenDim, hiddenDim),
		Wo:  tensor.NewMatrix(hiddenDim, outDim),
		B:   tensor.NewVector(hiddenDim),
		Bo:  tensor.NewVector(outDim),
		Act: act, KeepProb: keepProb,
	}
	c.Wx.GlorotUniform(rng)
	c.Wh.GlorotUniform(rng)
	// Scale the recurrent matrix down for stability of the untrained cell.
	c.Wh.ScaleInPlace(0.5)
	c.Wo.GlorotUniform(rng)
	return c, nil
}

// stepDet advances the deterministic (weight-scaled) recurrence one step.
func (c *Cell) stepDet(x, h tensor.Vector, out tensor.Vector) {
	c.Wx.MulVecInto(x, out)
	tmp := make(tensor.Vector, c.HiddenDim)
	scaled := h
	if c.KeepProb < 1 {
		scaled = h.Scale(c.KeepProb)
	}
	c.Wh.MulVecInto(scaled, tmp)
	for j := range out {
		out[j] = c.Act.Apply(out[j] + tmp[j] + c.B[j])
	}
}

// Forward runs the weight-scaled deterministic pass over a sequence of
// input vectors and returns the readout of the final hidden state.
func (c *Cell) Forward(xs []tensor.Vector) (tensor.Vector, error) {
	if err := c.checkSeq(xs); err != nil {
		return nil, err
	}
	h := make(tensor.Vector, c.HiddenDim)
	next := make(tensor.Vector, c.HiddenDim)
	for _, x := range xs {
		c.stepDet(x, h, next)
		h, next = next, h
	}
	return c.readout(h), nil
}

// ForwardSample runs one stochastic pass: a single recurrent mask is drawn
// and reused at every timestep (variational recurrent dropout).
func (c *Cell) ForwardSample(xs []tensor.Vector, rng *rand.Rand) (tensor.Vector, error) {
	if err := c.checkSeq(xs); err != nil {
		return nil, err
	}
	mask := make([]float64, c.HiddenDim)
	for i := range mask {
		if c.KeepProb >= 1 || rng.Float64() < c.KeepProb {
			mask[i] = 1
		}
	}
	h := make(tensor.Vector, c.HiddenDim)
	masked := make(tensor.Vector, c.HiddenDim)
	tmp := make(tensor.Vector, c.HiddenDim)
	next := make(tensor.Vector, c.HiddenDim)
	for _, x := range xs {
		for i := range masked {
			masked[i] = h[i] * mask[i]
		}
		c.Wx.MulVecInto(x, next)
		c.Wh.MulVecInto(masked, tmp)
		for j := range next {
			next[j] = c.Act.Apply(next[j] + tmp[j] + c.B[j])
		}
		h, next = next, h
	}
	return c.readout(h), nil
}

func (c *Cell) readout(h tensor.Vector) tensor.Vector {
	out := make(tensor.Vector, c.OutDim)
	c.Wo.MulVecInto(h, out)
	for j := range out {
		out[j] += c.Bo[j]
	}
	return out
}

func (c *Cell) checkSeq(xs []tensor.Vector) error {
	if len(xs) == 0 {
		return fmt.Errorf("empty sequence: %w", ErrConfig)
	}
	for t, x := range xs {
		if len(x) != c.InDim {
			return fmt.Errorf("step %d has dim %d, want %d: %w", t, len(x), c.InDim, ErrConfig)
		}
	}
	return nil
}

// PropagateMoments runs the closed-form moment pass: the hidden state is a
// diagonal Gaussian updated per step —
//
//	pre   = x_t Wx + b + dropout-moments(h_{t−1}) Wh      (eqs. 9–10)
//	h_t   ~ PWL-activation moments of pre                  (eqs. 12–26)
//
// — and the readout maps the final state's moments linearly. The per-step
// application of the dropout formulas treats the recurrent mask as fresh at
// each step; the shared-mask temporal correlation is dropped, which the
// tests show is a variance-underestimating approximation of the same nature
// as the paper's layer-wise independence.
func (c *Cell) PropagateMoments(xs []tensor.Vector) (core.GaussianVec, error) {
	if err := c.checkSeq(xs); err != nil {
		return core.GaussianVec{}, err
	}
	act, err := actFunc(c.Act)
	if err != nil {
		return core.GaussianVec{}, err
	}
	whSq := c.Wh.Square()
	woSq := c.Wo.Square()
	p := c.KeepProb

	h := core.NewGaussianVec(c.HiddenDim)
	preMean := make(tensor.Vector, c.HiddenDim)
	preVar := make(tensor.Vector, c.HiddenDim)
	muIn := make(tensor.Vector, c.HiddenDim)
	varIn := make(tensor.Vector, c.HiddenDim)
	xContrib := make(tensor.Vector, c.HiddenDim)

	for _, x := range xs {
		c.Wx.MulVecInto(x, xContrib)
		for i := 0; i < c.HiddenDim; i++ {
			mu, s2 := h.Mean[i], h.Var[i]
			muIn[i] = mu * p
			varIn[i] = (mu*mu+s2)*p - mu*mu*p*p
		}
		c.Wh.MulVecInto(muIn, preMean)
		whSq.MulVecInto(varIn, preVar)
		for j := 0; j < c.HiddenDim; j++ {
			m := xContrib[j] + preMean[j] + c.B[j]
			v := preVar[j]
			if v < 0 {
				v = 0
			}
			h.Mean[j], h.Var[j] = core.ActivationMoments(m, v, act)
		}
	}

	out := core.NewGaussianVec(c.OutDim)
	c.Wo.MulVecInto(h.Mean, out.Mean)
	woSq.MulVecInto(h.Var, out.Var)
	for j := range out.Mean {
		out.Mean[j] += c.Bo[j]
	}
	return out, nil
}

// actFunc resolves the PWL representation with the paper's defaults.
func actFunc(act nn.Activation) (*piecewise.Func, error) {
	switch act {
	case nn.ActIdentity:
		return piecewise.Identity(), nil
	case nn.ActReLU:
		return piecewise.ReLU(), nil
	case nn.ActTanh:
		return piecewise.Tanh(7)
	case nn.ActSigmoid:
		return piecewise.Sigmoid(7)
	default:
		return nil, fmt.Errorf("activation %v: %w", act, ErrConfig)
	}
}

// SpectralRadiusBound returns a crude stability bound on the recurrent
// weights: the Frobenius norm of Wh scaled by the keep probability. Values
// well above 1 indicate the recurrence may amplify variance unboundedly.
func (c *Cell) SpectralRadiusBound() float64 {
	var s float64
	for _, w := range c.Wh.Data {
		s += w * w
	}
	return c.KeepProb * math.Sqrt(s)
}
