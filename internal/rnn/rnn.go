// Package rnn implements the second half of the paper's future-work
// extension (§VI): ApDeepSense-style closed-form uncertainty propagation for
// recurrent networks with *recurrent dropout* (Gal & Ghahramani's
// variational RNN, the paper's [37]).
//
// Recurrent dropout samples ONE Bernoulli mask per sequence — the same mask
// multiplies the recurrent state at every timestep. The moment propagation
// applies the dense dropout moment formulas (paper eqs. 9–10) to the
// recurrent term at each step and pushes the result through the PWL
// activation machinery (eqs. 12–26). As everywhere in ApDeepSense the
// layer-wise (here: step-wise) diagonal Gaussian family drops the
// correlations the shared mask induces across timesteps; the Monte-Carlo
// tests quantify that approximation.
//
// The package provides a single-layer Elman recurrence with a dense readout,
// deterministic and stochastic forward passes, truncated-BPTT training, and
// the closed-form moment pass.
package rnn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/stats"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// ErrConfig is returned (wrapped) for invalid configurations.
var ErrConfig = errors.New("rnn: invalid configuration")

// Cell is an Elman recurrence with recurrent dropout:
//
//	h_t = f( x_t Wx + (h_{t−1} ⊙ z) Wh + b ),   z ~ Bernoulli(KeepProb) per sequence
//
// followed by a linear readout y = h_T Wo + bo of the final state.
type Cell struct {
	// InDim, HiddenDim, OutDim define the geometry.
	InDim, HiddenDim, OutDim int
	// Wx is InDim×HiddenDim, Wh is HiddenDim×HiddenDim, Wo is
	// HiddenDim×OutDim.
	Wx, Wh, Wo *tensor.Matrix
	// B and Bo are the recurrence and readout biases.
	B, Bo tensor.Vector
	// Act is the recurrence non-linearity (typically tanh).
	Act nn.Activation
	// KeepProb is the recurrent-state keep probability.
	KeepProb float64
	// Moments selects the activation-moment backend for the recurrence
	// (auto resolves to the exact closed form for rectifiers).
	Moments nn.MomentMode
}

// NewCell builds a Glorot-initialized cell.
func NewCell(inDim, hiddenDim, outDim int, act nn.Activation, keepProb float64, rng *rand.Rand) (*Cell, error) {
	if inDim < 1 || hiddenDim < 1 || outDim < 1 {
		return nil, fmt.Errorf("dims %d/%d/%d: %w", inDim, hiddenDim, outDim, ErrConfig)
	}
	if keepProb <= 0 || keepProb > 1 {
		return nil, fmt.Errorf("keep prob %v: %w", keepProb, ErrConfig)
	}
	if !act.Valid() {
		return nil, fmt.Errorf("activation %v: %w", act, ErrConfig)
	}
	c := &Cell{
		InDim: inDim, HiddenDim: hiddenDim, OutDim: outDim,
		Wx:  tensor.NewMatrix(inDim, hiddenDim),
		Wh:  tensor.NewMatrix(hiddenDim, hiddenDim),
		Wo:  tensor.NewMatrix(hiddenDim, outDim),
		B:   tensor.NewVector(hiddenDim),
		Bo:  tensor.NewVector(outDim),
		Act: act, KeepProb: keepProb,
	}
	c.Wx.GlorotUniform(rng)
	c.Wh.GlorotUniform(rng)
	// Scale the recurrent matrix down for stability of the untrained cell.
	c.Wh.ScaleInPlace(0.5)
	c.Wo.GlorotUniform(rng)
	return c, nil
}

// stepDet advances the deterministic (weight-scaled) recurrence one step.
func (c *Cell) stepDet(x, h tensor.Vector, out tensor.Vector) {
	c.Wx.MulVecInto(x, out)
	tmp := make(tensor.Vector, c.HiddenDim)
	scaled := h
	if c.KeepProb < 1 {
		scaled = h.Scale(c.KeepProb)
	}
	c.Wh.MulVecInto(scaled, tmp)
	for j := range out {
		out[j] = c.Act.Apply(out[j] + tmp[j] + c.B[j])
	}
}

// Forward runs the weight-scaled deterministic pass over a sequence of
// input vectors and returns the readout of the final hidden state.
func (c *Cell) Forward(xs []tensor.Vector) (tensor.Vector, error) {
	if err := c.checkSeq(xs); err != nil {
		return nil, err
	}
	h := make(tensor.Vector, c.HiddenDim)
	next := make(tensor.Vector, c.HiddenDim)
	for _, x := range xs {
		c.stepDet(x, h, next)
		h, next = next, h
	}
	return c.readout(h), nil
}

// ForwardSample runs one stochastic pass: a single recurrent mask is drawn
// and reused at every timestep (variational recurrent dropout).
func (c *Cell) ForwardSample(xs []tensor.Vector, rng *rand.Rand) (tensor.Vector, error) {
	if err := c.checkSeq(xs); err != nil {
		return nil, err
	}
	mask := make([]float64, c.HiddenDim)
	for i := range mask {
		if c.KeepProb >= 1 || rng.Float64() < c.KeepProb {
			mask[i] = 1
		}
	}
	h := make(tensor.Vector, c.HiddenDim)
	masked := make(tensor.Vector, c.HiddenDim)
	tmp := make(tensor.Vector, c.HiddenDim)
	next := make(tensor.Vector, c.HiddenDim)
	for _, x := range xs {
		for i := range masked {
			masked[i] = h[i] * mask[i]
		}
		c.Wx.MulVecInto(x, next)
		c.Wh.MulVecInto(masked, tmp)
		for j := range next {
			next[j] = c.Act.Apply(next[j] + tmp[j] + c.B[j])
		}
		h, next = next, h
	}
	return c.readout(h), nil
}

func (c *Cell) readout(h tensor.Vector) tensor.Vector {
	out := make(tensor.Vector, c.OutDim)
	c.Wo.MulVecInto(h, out)
	for j := range out {
		out[j] += c.Bo[j]
	}
	return out
}

func (c *Cell) checkSeq(xs []tensor.Vector) error {
	if len(xs) == 0 {
		return fmt.Errorf("empty sequence: %w", ErrConfig)
	}
	for t, x := range xs {
		if len(x) != c.InDim {
			return fmt.Errorf("step %d has dim %d, want %d: %w", t, len(x), c.InDim, ErrConfig)
		}
	}
	return nil
}

// CellProp is a prepared moment propagator for one Cell: the squared weight
// matrices, the resolved activation-moment kernel (exact closed form for
// rectifier recurrences by default, PWL otherwise — the same dispatch as the
// dense propagator, via core.KernelFor), and reusable scratch. Build once
// per trained cell with Cell.NewProp; Step/Readout are the first-class
// step-level propagation API the differential harness exercises.
//
// A CellProp snapshots W² at construction; rebuild it after mutating the
// cell's weights.
type CellProp struct {
	c    *Cell
	ak   *core.ActKernel
	whSq *tensor.Matrix
	woSq *tensor.Matrix

	preMean, preVar, muIn, varIn, xContrib tensor.Vector
	bounds                                 []stats.Boundary
	pms                                    []stats.PartialMoments
}

// NewProp prepares moment propagation for the cell's current weights.
func (c *Cell) NewProp() (*CellProp, error) {
	mode := c.Moments
	_, ak, err := core.KernelFor(c.Act, mode, core.Options{})
	if err != nil {
		return nil, fmt.Errorf("rnn: %w", err)
	}
	return &CellProp{
		c: c, ak: ak,
		whSq: c.Wh.Square(), woSq: c.Wo.Square(),
		preMean:  make(tensor.Vector, c.HiddenDim),
		preVar:   make(tensor.Vector, c.HiddenDim),
		muIn:     make(tensor.Vector, c.HiddenDim),
		varIn:    make(tensor.Vector, c.HiddenDim),
		xContrib: make(tensor.Vector, c.HiddenDim),
		bounds:   make([]stats.Boundary, ak.NumBounds()),
		pms:      make([]stats.PartialMoments, ak.NumBounds()),
	}, nil
}

// MomentsExact reports whether the recurrence serves the exact analytical
// activation-moment backend.
func (p *CellProp) MomentsExact() bool { return p.ak.Exact() }

// Step advances the hidden-state moments one timestep in place:
//
//	pre = x_t Wx + b + dropout-moments(h_{t−1}) Wh      (eqs. 9–10)
//	h_t ~ activation moments of pre                      (eqs. 12–26 / exact)
//
// KeepProb == 1 bypasses the dropout moment algebra — (μ²+σ²)·p − μ²·p²
// rounds σ² away against a large μ, and with no mask the input moments pass
// through unchanged.
func (p *CellProp) Step(h core.GaussianVec, x tensor.Vector) error {
	c := p.c
	if len(x) != c.InDim {
		return fmt.Errorf("step input dim %d, want %d: %w", len(x), c.InDim, ErrConfig)
	}
	if h.Dim() != c.HiddenDim {
		return fmt.Errorf("state dim %d, want %d: %w", h.Dim(), c.HiddenDim, ErrConfig)
	}
	kp := c.KeepProb
	c.Wx.MulVecInto(x, p.xContrib)
	if kp == 1 {
		copy(p.muIn, h.Mean)
		copy(p.varIn, h.Var)
	} else {
		for i := 0; i < c.HiddenDim; i++ {
			mu, s2 := h.Mean[i], h.Var[i]
			p.muIn[i] = mu * kp
			p.varIn[i] = (mu*mu+s2)*kp - mu*mu*kp*kp
		}
	}
	c.Wh.MulVecInto(p.muIn, p.preMean)
	p.whSq.MulVecInto(p.varIn, p.preVar)
	for j := 0; j < c.HiddenDim; j++ {
		m := p.xContrib[j] + p.preMean[j] + c.B[j]
		v := p.preVar[j]
		if v < 0 {
			v = 0
		}
		h.Mean[j], h.Var[j] = p.ak.Moments(m, v, p.bounds, p.pms)
	}
	return nil
}

// Readout maps final-state moments through the linear readout.
func (p *CellProp) Readout(h core.GaussianVec) core.GaussianVec {
	c := p.c
	out := core.NewGaussianVec(c.OutDim)
	c.Wo.MulVecInto(h.Mean, out.Mean)
	p.woSq.MulVecInto(h.Var, out.Var)
	for j := range out.Mean {
		out.Mean[j] += c.Bo[j]
	}
	return out
}

// PropagateMoments runs the closed-form moment pass: the hidden state is a
// diagonal Gaussian updated per step (CellProp.Step), and the readout maps
// the final state's moments linearly. The per-step application of the
// dropout formulas treats the recurrent mask as fresh at each step; the
// shared-mask temporal correlation is dropped, which the tests show is a
// variance-underestimating approximation of the same nature as the paper's
// layer-wise independence.
func (c *Cell) PropagateMoments(xs []tensor.Vector) (core.GaussianVec, error) {
	if err := c.checkSeq(xs); err != nil {
		return core.GaussianVec{}, err
	}
	prop, err := c.NewProp()
	if err != nil {
		return core.GaussianVec{}, err
	}
	h := core.NewGaussianVec(c.HiddenDim)
	for _, x := range xs {
		if err := prop.Step(h, x); err != nil {
			return core.GaussianVec{}, err
		}
	}
	return prop.Readout(h), nil
}

// PropagateMomentsBatch runs PropagateMoments over a batch of sequences
// with one shared CellProp. Each sequence's recursion is independent, so
// the result is bit-identical to sequential PropagateMoments calls — the
// property the differential harness pins.
func (c *Cell) PropagateMomentsBatch(seqs [][]tensor.Vector) ([]core.GaussianVec, error) {
	prop, err := c.NewProp()
	if err != nil {
		return nil, err
	}
	out := make([]core.GaussianVec, len(seqs))
	for s, xs := range seqs {
		if err := c.checkSeq(xs); err != nil {
			return nil, fmt.Errorf("sequence %d: %w", s, err)
		}
		h := core.NewGaussianVec(c.HiddenDim)
		for _, x := range xs {
			if err := prop.Step(h, x); err != nil {
				return nil, fmt.Errorf("sequence %d: %w", s, err)
			}
		}
		out[s] = prop.Readout(h)
	}
	return out, nil
}

// SpectralRadiusBound returns a crude stability bound on the recurrent
// weights: the Frobenius norm of Wh scaled by the keep probability. Values
// well above 1 indicate the recurrence may amplify variance unboundedly.
func (c *Cell) SpectralRadiusBound() float64 {
	var s float64
	for _, w := range c.Wh.Data {
		s += w * w
	}
	return c.KeepProb * math.Sqrt(s)
}
