package rnn

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/apdeepsense/apdeepsense/internal/tensor"
	"github.com/apdeepsense/apdeepsense/internal/train"
)

func TestNewLSTMValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		in, hid, out int
		keep         float64
	}{
		{0, 4, 1, 1}, {1, 0, 1, 1}, {1, 4, 0, 1}, {1, 4, 1, 0}, {1, 4, 1, 1.1},
	}
	for i, c := range cases {
		if _, err := NewLSTM(c.in, c.hid, c.out, c.keep, rng); !errors.Is(err, ErrConfig) {
			t.Errorf("case %d: err = %v, want ErrConfig", i, err)
		}
	}
	l, err := NewLSTM(2, 4, 1, 0.9, rng)
	if err != nil {
		t.Fatalf("valid LSTM: %v", err)
	}
	// Forget bias initialized to +1.
	for _, b := range l.Bf {
		if b != 1 {
			t.Errorf("forget bias %v, want 1", b)
		}
	}
}

func TestLSTMSequenceValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l, _ := NewLSTM(2, 4, 1, 0.9, rng)
	if _, err := l.Forward(nil); !errors.Is(err, ErrConfig) {
		t.Errorf("empty err = %v", err)
	}
	if _, err := l.ForwardSample([]tensor.Vector{{1}}, rng); !errors.Is(err, ErrConfig) {
		t.Errorf("dim err = %v", err)
	}
	if _, err := l.PropagateMoments([]tensor.Vector{{1}}); !errors.Is(err, ErrConfig) {
		t.Errorf("moments dim err = %v", err)
	}
}

func TestLSTMNoDropoutDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l, err := NewLSTM(2, 6, 2, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	xs := []tensor.Vector{{1, -1}, {0.5, 0.2}, {-0.3, 0.8}}
	a, err := l.Forward(xs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.ForwardSample(xs, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b, 1e-12) {
		t.Errorf("no-dropout sample %v != forward %v", b, a)
	}
}

// TestLSTMMomentsVsMonteCarlo: mean tracking with order-of-magnitude
// variance agreement (the same diagonal-family caveats as the GRU).
func TestLSTMMomentsVsMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l, err := NewLSTM(2, 10, 2, 0.8, rng)
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]tensor.Vector, 5)
	for i := range xs {
		xs[i] = tensor.Vector{rng.NormFloat64(), rng.NormFloat64()}
	}
	got, err := l.PropagateMoments(xs)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("moments invalid: %v", err)
	}

	const samples = 50000
	sum := make(tensor.Vector, 2)
	sum2 := make(tensor.Vector, 2)
	for s := 0; s < samples; s++ {
		y, err := l.ForwardSample(xs, rng)
		if err != nil {
			t.Fatal(err)
		}
		for j := range y {
			sum[j] += y[j]
			sum2[j] += y[j] * y[j]
		}
	}
	for j := 0; j < 2; j++ {
		mcMean := sum[j] / samples
		mcVar := sum2[j]/samples - mcMean*mcMean
		if math.Abs(got.Mean[j]-mcMean) > 0.6*math.Sqrt(mcVar)+0.08 {
			t.Errorf("out %d: mean %v vs MC %v", j, got.Mean[j], mcMean)
		}
		if mcVar > 1e-8 {
			ratio := got.Var[j] / mcVar
			if ratio < 0.05 || ratio > 20 {
				t.Errorf("out %d: var %v vs MC %v (ratio %v)", j, got.Var[j], mcVar, ratio)
			}
		}
	}
}

// TestLSTMGradientCheck verifies the LSTM BPTT against finite differences
// on a dropout-free cell over every parameter group.
func TestLSTMGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	l, err := NewLSTM(2, 3, 2, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	s := Sample{
		Xs: []tensor.Vector{{0.5, -1}, {0.2, 0.8}, {-0.4, 0.1}},
		Y:  tensor.Vector{0.3, -0.6},
	}
	loss := train.MSE{}
	gr := newLSTMGrads(l)
	lossGrad := tensor.NewVector(2)
	if _, err := l.bptt(s, loss, lossGrad, gr, rng); err != nil {
		t.Fatal(err)
	}

	lossAt := func() float64 {
		out, err := l.Forward(s.Xs)
		if err != nil {
			t.Fatal(err)
		}
		lg := tensor.NewVector(2)
		lv, err := loss.Eval(out, s.Y, lg)
		if err != nil {
			t.Fatal(err)
		}
		return lv
	}
	const h = 1e-6
	params := l.paramSlices()
	grads := gr.slices()
	names := []string{"Wxi", "Whi", "Wxf", "Whf", "Wxo", "Who", "Wxg", "Whg", "Bi", "Bf", "Bo", "Bg", "Wo", "Bro"}
	for pi := range params {
		for idx := range params[pi] {
			orig := params[pi][idx]
			params[pi][idx] = orig + h
			up := lossAt()
			params[pi][idx] = orig - h
			down := lossAt()
			params[pi][idx] = orig
			num := (up - down) / (2 * h)
			if math.Abs(num-grads[pi][idx]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("%s[%d]: analytic %v vs numeric %v", names[pi], idx, grads[pi][idx], num)
			}
		}
	}
}

// TestLSTMTrainingConverges fits a long-range memory task the LSTM is built
// for: output the FIRST input of the sequence.
func TestLSTMTrainingConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	mkSample := func() Sample {
		steps := 8
		xs := make([]tensor.Vector, steps)
		for i := range xs {
			xs[i] = tensor.Vector{rng.NormFloat64()}
		}
		return Sample{Xs: xs, Y: tensor.Vector{xs[0][0]}}
	}
	var data []Sample
	for i := 0; i < 500; i++ {
		data = append(data, mkSample())
	}
	l, err := NewLSTM(1, 16, 1, 0.95, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := TrainLSTM(l, data, TrainConfig{
		Epochs: 80, BatchSize: 16, LearningRate: 0.05, ClipNorm: 5, Seed: 2,
		Loss: train.MSE{},
	}); err != nil {
		t.Fatal(err)
	}
	var sumErr float64
	for _, s := range data[:100] {
		out, err := l.Forward(s.Xs)
		if err != nil {
			t.Fatal(err)
		}
		sumErr += math.Abs(out[0] - s.Y[0])
	}
	if mae := sumErr / 100; mae > 0.35 {
		t.Errorf("LSTM first-value memory MAE = %v, want < 0.35", mae)
	}
}

func TestTrainLSTMValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l, _ := NewLSTM(1, 4, 1, 0.9, rng)
	data := []Sample{{Xs: seqOf(1, 2), Y: tensor.Vector{1}}}
	if err := TrainLSTM(l, data, TrainConfig{Epochs: 0, BatchSize: 1, LearningRate: 0.1, Loss: train.MSE{}}); !errors.Is(err, ErrConfig) {
		t.Errorf("bad cfg err = %v", err)
	}
	badData := []Sample{{Xs: []tensor.Vector{{1, 2}}, Y: tensor.Vector{1}}}
	if err := TrainLSTM(l, badData, TrainConfig{Epochs: 1, BatchSize: 1, LearningRate: 0.1, Loss: train.MSE{}}); !errors.Is(err, ErrConfig) {
		t.Errorf("bad seq err = %v", err)
	}
	noY := []Sample{{Xs: seqOf(1), Y: nil}}
	if err := TrainLSTM(l, noY, TrainConfig{Epochs: 1, BatchSize: 1, LearningRate: 0.1, Loss: train.MSE{}}); !errors.Is(err, ErrConfig) {
		t.Errorf("no target err = %v", err)
	}
}
