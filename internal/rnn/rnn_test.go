package rnn

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
	"github.com/apdeepsense/apdeepsense/internal/train"
)

func TestNewCellValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		in, hid, out int
		keep         float64
		act          nn.Activation
	}{
		{0, 4, 1, 1, nn.ActTanh},
		{1, 0, 1, 1, nn.ActTanh},
		{1, 4, 0, 1, nn.ActTanh},
		{1, 4, 1, 0, nn.ActTanh},
		{1, 4, 1, 1.5, nn.ActTanh},
		{1, 4, 1, 1, nn.Activation(99)},
	}
	for i, c := range cases {
		if _, err := NewCell(c.in, c.hid, c.out, c.act, c.keep, rng); !errors.Is(err, ErrConfig) {
			t.Errorf("case %d: err = %v, want ErrConfig", i, err)
		}
	}
}

func seqOf(vals ...float64) []tensor.Vector {
	out := make([]tensor.Vector, len(vals))
	for i, v := range vals {
		out[i] = tensor.Vector{v}
	}
	return out
}

func TestForwardHandComputed(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c, err := NewCell(1, 1, 1, nn.ActIdentity, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	// h_t = x_t*wx + h_{t-1}*wh + b; y = h_T*wo + bo.
	c.Wx.Set(0, 0, 1)
	c.Wh.Set(0, 0, 0.5)
	c.B[0] = 0
	c.Wo.Set(0, 0, 2)
	c.Bo[0] = 1
	// x = [1, 1]: h1 = 1, h2 = 1 + 0.5 = 1.5; y = 4.
	out, err := c.Forward(seqOf(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-4) > 1e-12 {
		t.Errorf("Forward = %v, want 4", out[0])
	}
}

func TestSequenceValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c, _ := NewCell(2, 4, 1, nn.ActTanh, 0.9, rng)
	if _, err := c.Forward(nil); !errors.Is(err, ErrConfig) {
		t.Errorf("empty seq err = %v", err)
	}
	if _, err := c.Forward([]tensor.Vector{{1}}); !errors.Is(err, ErrConfig) {
		t.Errorf("bad dim err = %v", err)
	}
	if _, err := c.ForwardSample([]tensor.Vector{{1}}, rng); !errors.Is(err, ErrConfig) {
		t.Errorf("sample bad dim err = %v", err)
	}
	if _, err := c.PropagateMoments([]tensor.Vector{{1}}); !errors.Is(err, ErrConfig) {
		t.Errorf("moments bad dim err = %v", err)
	}
}

func TestNoDropoutSampleEqualsForward(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c, err := NewCell(2, 6, 2, nn.ActTanh, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	xs := []tensor.Vector{{1, -1}, {0.5, 0.2}, {-0.3, 0.8}}
	a, err := c.Forward(xs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.ForwardSample(xs, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b, 1e-12) {
		t.Errorf("no-dropout sample %v != forward %v", b, a)
	}
	// And moments reduce to the deterministic output with zero variance
	// for the exact-PWL case... tanh is approximate, so check identity act.
	cid, err := NewCell(2, 6, 2, nn.ActReLU, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	g, err := cid.PropagateMoments(xs)
	if err != nil {
		t.Fatal(err)
	}
	det, err := cid.Forward(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Mean.Equal(det, 1e-9) {
		t.Errorf("moment mean %v != forward %v", g.Mean, det)
	}
	for j, v := range g.Var {
		if v > 1e-12 {
			t.Errorf("var[%d] = %v, want 0", j, v)
		}
	}
}

// TestMomentsVsMonteCarlo validates the recurrent moment propagation against
// sampling. The per-step treatment resamples the mask conceptually, while
// the true variational dropout shares it across time, so the variance
// comparison is order-of-magnitude by design; the mean must match well.
func TestMomentsVsMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c, err := NewCell(2, 12, 2, nn.ActTanh, 0.8, rng)
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]tensor.Vector, 6)
	for i := range xs {
		xs[i] = tensor.Vector{rng.NormFloat64(), rng.NormFloat64()}
	}
	g, err := c.PropagateMoments(xs)
	if err != nil {
		t.Fatal(err)
	}

	const samples = 60000
	sum := make(tensor.Vector, 2)
	sum2 := make(tensor.Vector, 2)
	for s := 0; s < samples; s++ {
		y, err := c.ForwardSample(xs, rng)
		if err != nil {
			t.Fatal(err)
		}
		for j := range y {
			sum[j] += y[j]
			sum2[j] += y[j] * y[j]
		}
	}
	for j := 0; j < 2; j++ {
		mcMean := sum[j] / samples
		mcVar := sum2[j]/samples - mcMean*mcMean
		// Mean bias compounds the tanh PWL surrogate over 6 recurrent steps
		// (MC evaluates the true tanh), so the mean tolerance covers that
		// approximation, not just sampling noise.
		if math.Abs(g.Mean[j]-mcMean) > 0.5*math.Sqrt(mcVar)+0.06 {
			t.Errorf("out %d: mean %v vs MC %v", j, g.Mean[j], mcMean)
		}
		if mcVar > 1e-8 {
			ratio := g.Var[j] / mcVar
			if ratio < 0.1 || ratio > 10 {
				t.Errorf("out %d: var %v vs MC %v (ratio %v)", j, g.Var[j], mcVar, ratio)
			}
		}
	}
}

// TestBPTTGradientCheck verifies backpropagation-through-time against finite
// differences on a dropout-free cell.
func TestBPTTGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c, err := NewCell(2, 4, 2, nn.ActTanh, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	s := Sample{
		Xs: []tensor.Vector{{0.5, -1}, {0.2, 0.8}, {-0.4, 0.1}},
		Y:  tensor.Vector{0.3, -0.6},
	}
	loss := train.MSE{}
	g := newCellGrads(c)
	lossGrad := tensor.NewVector(2)
	if _, err := c.bptt(s, loss, lossGrad, g, rng); err != nil {
		t.Fatal(err)
	}

	lossAt := func() float64 {
		out, err := c.Forward(s.Xs)
		if err != nil {
			t.Fatal(err)
		}
		lg := tensor.NewVector(2)
		lv, err := loss.Eval(out, s.Y, lg)
		if err != nil {
			t.Fatal(err)
		}
		return lv
	}
	const h = 1e-6
	check := func(name string, param, grad []float64) {
		t.Helper()
		for idx := range param {
			orig := param[idx]
			param[idx] = orig + h
			up := lossAt()
			param[idx] = orig - h
			down := lossAt()
			param[idx] = orig
			num := (up - down) / (2 * h)
			if math.Abs(num-grad[idx]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("%s[%d]: analytic %v vs numeric %v", name, idx, grad[idx], num)
			}
		}
	}
	check("Wx", c.Wx.Data, g.wx.Data)
	check("Wh", c.Wh.Data, g.wh.Data)
	check("Wo", c.Wo.Data, g.wo.Data)
	check("B", c.B, g.b)
	check("Bo", c.Bo, g.bo)
}

// TestTrainingConverges fits the parity-of-last-three-steps style task:
// predict the running mean of the sequence.
func TestTrainingConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	mkSample := func() Sample {
		steps := 8
		xs := make([]tensor.Vector, steps)
		var mean float64
		for i := range xs {
			v := rng.NormFloat64()
			xs[i] = tensor.Vector{v}
			mean += v
		}
		return Sample{Xs: xs, Y: tensor.Vector{mean / float64(steps)}}
	}
	var data []Sample
	for i := 0; i < 400; i++ {
		data = append(data, mkSample())
	}
	c, err := NewCell(1, 12, 1, nn.ActTanh, 0.95, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := Train(c, data, TrainConfig{
		Epochs: 40, BatchSize: 16, LearningRate: 0.05, ClipNorm: 5, Seed: 2,
		Loss: train.MSE{},
	}); err != nil {
		t.Fatal(err)
	}
	var sumErr float64
	for _, s := range data[:100] {
		out, err := c.Forward(s.Xs)
		if err != nil {
			t.Fatal(err)
		}
		sumErr += math.Abs(out[0] - s.Y[0])
	}
	if mae := sumErr / 100; mae > 0.12 {
		t.Errorf("running-mean MAE = %v, want < 0.12", mae)
	}
}

func TestTrainValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c, _ := NewCell(1, 4, 1, nn.ActTanh, 0.9, rng)
	data := []Sample{{Xs: seqOf(1, 2), Y: tensor.Vector{1}}}
	bad := []TrainConfig{
		{Epochs: 0, BatchSize: 1, LearningRate: 0.1, Loss: train.MSE{}},
		{Epochs: 1, BatchSize: 0, LearningRate: 0.1, Loss: train.MSE{}},
		{Epochs: 1, BatchSize: 9, LearningRate: 0.1, Loss: train.MSE{}},
		{Epochs: 1, BatchSize: 1, LearningRate: 0, Loss: train.MSE{}},
		{Epochs: 1, BatchSize: 1, LearningRate: 0.1, Loss: nil},
		{Epochs: 1, BatchSize: 1, LearningRate: 0.1, ClipNorm: -1, Loss: train.MSE{}},
	}
	for i, cfg := range bad {
		if err := Train(c, data, cfg); !errors.Is(err, ErrConfig) {
			t.Errorf("case %d: err = %v, want ErrConfig", i, err)
		}
	}
	badData := []Sample{{Xs: []tensor.Vector{{1, 2}}, Y: tensor.Vector{1}}}
	if err := Train(c, badData, TrainConfig{Epochs: 1, BatchSize: 1, LearningRate: 0.1, Loss: train.MSE{}}); !errors.Is(err, ErrConfig) {
		t.Errorf("bad seq err = %v", err)
	}
	noTarget := []Sample{{Xs: seqOf(1), Y: nil}}
	if err := Train(c, noTarget, TrainConfig{Epochs: 1, BatchSize: 1, LearningRate: 0.1, Loss: train.MSE{}}); !errors.Is(err, ErrConfig) {
		t.Errorf("no target err = %v", err)
	}
}

func TestSpectralRadiusBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c, _ := NewCell(1, 4, 1, nn.ActTanh, 0.5, rng)
	full, _ := NewCell(1, 4, 1, nn.ActTanh, 1, rng)
	copy(full.Wh.Data, c.Wh.Data)
	if c.SpectralRadiusBound() >= full.SpectralRadiusBound() {
		t.Error("lower keep prob should shrink the bound")
	}
	if c.SpectralRadiusBound() <= 0 {
		t.Error("bound should be positive")
	}
}
