package rnn

import (
	"fmt"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/edison"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// Estimator adapts a Cell to the core.Estimator contract so recurrent
// models plug into the registry, the serving tier, and the benchmark
// harness alongside dense ApDeepSense. The flat input vector is interpreted
// as a fixed-length sequence in step-major layout (x[t*inDim+i]); the step
// count is fixed at construction because the estimator contract has no
// shape channel.
type Estimator struct {
	prop   *CellProp
	steps  int
	obsVar float64
	cost   edison.Cost
}

var _ core.Estimator = (*Estimator)(nil)

// NewEstimator wraps cell as an estimator over steps-long sequences. obsVar
// (>= 0) is the observation-noise variance added to regression predictive
// variances, mirroring core.NewApDeepSense.
func NewEstimator(cell *Cell, steps int, obsVar float64) (*Estimator, error) {
	if cell == nil {
		return nil, fmt.Errorf("rnn: nil cell: %w", ErrConfig)
	}
	if steps < 1 {
		return nil, fmt.Errorf("rnn: steps %d: %w", steps, ErrConfig)
	}
	if obsVar < 0 {
		return nil, fmt.Errorf("rnn: negative obsVar %v: %w", obsVar, ErrConfig)
	}
	prop, err := cell.NewProp()
	if err != nil {
		return nil, err
	}
	return &Estimator{prop: prop, steps: steps, obsVar: obsVar, cost: cellCost(cell, steps, prop)}, nil
}

// cellCost models one PropagateMoments pass: per step, the input and
// recurrent mean matmuls plus the W² variance matmul, the dropout moment
// algebra, and the activation moment charge (exact closed form or per-piece
// PWL, the dense propagator's model); then the linear readout.
func cellCost(c *Cell, steps int, prop *CellProp) edison.Cost {
	var cost edison.Cost
	in, h, out := int64(c.InDim), int64(c.HiddenDim), int64(c.OutDim)
	perStep := edison.Cost{
		DenseFLOPs: 2*in*h + 2*2*h*h,
		ElementOps: 5*h + h,
	}
	if prop.ak.Exact() {
		perStep.ElementOps += h * core.OpsPerExactMoments
	} else {
		for _, piece := range prop.ak.Func().Pieces() {
			if piece.K == 0 {
				perStep.ElementOps += h * core.OpsPerConstPiece
			} else {
				perStep.ElementOps += h * core.OpsPerLinearPiece
			}
		}
	}
	cost = cost.Add(perStep.Scale(int64(steps)))
	cost.DenseFLOPs += 2 * 2 * h * out
	cost.ElementOps += out
	return cost
}

// Steps returns the fixed sequence length the estimator expects.
func (e *Estimator) Steps() int { return e.steps }

// Cell returns the underlying cell.
func (e *Estimator) Cell() *Cell { return e.prop.c }

// Name implements core.Estimator.
func (e *Estimator) Name() string { return "ApDeepSense-RNN" }

func (e *Estimator) seq(x tensor.Vector) ([]tensor.Vector, error) {
	in := e.prop.c.InDim
	if len(x) != e.steps*in {
		return nil, fmt.Errorf("rnn: input length %d != steps %d × dim %d: %w",
			len(x), e.steps, in, ErrConfig)
	}
	xs := make([]tensor.Vector, e.steps)
	for t := 0; t < e.steps; t++ {
		xs[t] = tensor.Vector(x[t*in : (t+1)*in])
	}
	return xs, nil
}

func (e *Estimator) propagate(x tensor.Vector) (core.GaussianVec, error) {
	xs, err := e.seq(x)
	if err != nil {
		return core.GaussianVec{}, err
	}
	h := core.NewGaussianVec(e.prop.c.HiddenDim)
	for _, step := range xs {
		if err := e.prop.Step(h, step); err != nil {
			return core.GaussianVec{}, err
		}
	}
	return e.prop.Readout(h), nil
}

// Predict implements core.Estimator: one closed-form moment pass through
// the recurrence and readout.
func (e *Estimator) Predict(x tensor.Vector) (core.GaussianVec, error) {
	g, err := e.propagate(x)
	if err != nil {
		return core.GaussianVec{}, err
	}
	for i := range g.Var {
		g.Var[i] += e.obsVar
	}
	return g, nil
}

// PredictProbs implements core.Estimator: Gaussian logits through the
// mean-field softmax link, without the observation-noise floor.
func (e *Estimator) PredictProbs(x tensor.Vector) (tensor.Vector, error) {
	g, err := e.propagate(x)
	if err != nil {
		return nil, err
	}
	return core.MeanFieldSoftmax(g), nil
}

// Cost implements core.Estimator.
func (e *Estimator) Cost() edison.Cost { return e.cost }

// GRUEstimator adapts a GRU to the core.Estimator contract with the same
// flat step-major input convention as Estimator.
type GRUEstimator struct {
	prop   *GRUProp
	steps  int
	obsVar float64
	cost   edison.Cost
}

var _ core.Estimator = (*GRUEstimator)(nil)

// NewGRUEstimator wraps g as an estimator over steps-long sequences.
func NewGRUEstimator(g *GRU, steps int, obsVar float64) (*GRUEstimator, error) {
	if g == nil {
		return nil, fmt.Errorf("gru: nil model: %w", ErrConfig)
	}
	if steps < 1 {
		return nil, fmt.Errorf("gru: steps %d: %w", steps, ErrConfig)
	}
	if obsVar < 0 {
		return nil, fmt.Errorf("gru: negative obsVar %v: %w", obsVar, ErrConfig)
	}
	prop, err := g.NewProp()
	if err != nil {
		return nil, err
	}
	return &GRUEstimator{prop: prop, steps: steps, obsVar: obsVar, cost: gruCost(g, steps, prop)}, nil
}

// gruCost models one GRU moment pass: three input matmuls, three recurrent
// mean matmuls plus their W² variance twins, two sigmoid and one tanh PWL
// moment passes, and the product-moment element work; then the readout.
func gruCost(g *GRU, steps int, prop *GRUProp) edison.Cost {
	var cost edison.Cost
	in, h, out := int64(g.InDim), int64(g.HiddenDim), int64(g.OutDim)
	perStep := edison.Cost{
		DenseFLOPs: 3*2*in*h + 3*2*2*h*h,
		// Mask algebra (5), three gate bias adds (3), two products of
		// Gaussians and the convex combination (~5 each).
		ElementOps: 5*h + 3*h + 15*h,
	}
	for _, ak := range []*core.ActKernel{prop.sig, prop.sig, prop.tanh} {
		for _, piece := range ak.Func().Pieces() {
			if piece.K == 0 {
				perStep.ElementOps += h * core.OpsPerConstPiece
			} else {
				perStep.ElementOps += h * core.OpsPerLinearPiece
			}
		}
	}
	cost = cost.Add(perStep.Scale(int64(steps)))
	cost.DenseFLOPs += 2 * 2 * h * out
	cost.ElementOps += out
	return cost
}

// Steps returns the fixed sequence length the estimator expects.
func (e *GRUEstimator) Steps() int { return e.steps }

// GRU returns the underlying model.
func (e *GRUEstimator) GRU() *GRU { return e.prop.g }

// Name implements core.Estimator.
func (e *GRUEstimator) Name() string { return "ApDeepSense-GRU" }

func (e *GRUEstimator) propagate(x tensor.Vector) (core.GaussianVec, error) {
	in := e.prop.g.InDim
	if len(x) != e.steps*in {
		return core.GaussianVec{}, fmt.Errorf("gru: input length %d != steps %d × dim %d: %w",
			len(x), e.steps, in, ErrConfig)
	}
	h := core.NewGaussianVec(e.prop.g.HiddenDim)
	for t := 0; t < e.steps; t++ {
		if err := e.prop.StepMoments(h, tensor.Vector(x[t*in:(t+1)*in])); err != nil {
			return core.GaussianVec{}, err
		}
	}
	return e.prop.ReadoutMoments(h), nil
}

// Predict implements core.Estimator.
func (e *GRUEstimator) Predict(x tensor.Vector) (core.GaussianVec, error) {
	g, err := e.propagate(x)
	if err != nil {
		return core.GaussianVec{}, err
	}
	for i := range g.Var {
		g.Var[i] += e.obsVar
	}
	return g, nil
}

// PredictProbs implements core.Estimator.
func (e *GRUEstimator) PredictProbs(x tensor.Vector) (tensor.Vector, error) {
	g, err := e.propagate(x)
	if err != nil {
		return nil, err
	}
	return core.MeanFieldSoftmax(g), nil
}

// Cost implements core.Estimator.
func (e *GRUEstimator) Cost() edison.Cost { return e.cost }
