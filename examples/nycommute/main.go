// NYCommute example: smart-city trip-time estimation — the paper's
// transportation task. Compares what a dispatcher sees with ApDeepSense
// versus MCDrop-k on the same dropout network: ETA intervals of similar
// quality at a fraction of the modeled on-device cost.
//
// Run with:
//
//	go run ./examples/nycommute
package main

import (
	"fmt"
	"log"
	"math"

	apds "github.com/apdeepsense/apdeepsense"
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("generating synthetic NYC taxi dataset...")
	ds, err := apds.NYCommute(apds.DatasetSize{Train: 4000, Val: 500, Test: 800, Seed: 41})
	if err != nil {
		return err
	}

	net, err := apds.NewNetwork(apds.NetworkConfig{
		InputDim: ds.InputDim, Hidden: []int{64, 64, 64, 64}, OutputDim: ds.OutputDim,
		Activation:       apds.ActReLU,
		OutputActivation: apds.ActIdentity,
		KeepProb:         0.9,
		Seed:             17,
	})
	if err != nil {
		return err
	}
	fmt.Println("training", net.Summary())
	if _, err := apds.Fit(net, ds.Train, ds.Val, apds.TrainConfig{
		Epochs: 20, BatchSize: 32, Seed: 8,
		Loss: apds.MSELoss(), Optimizer: apds.NewAdam(0.002),
		EarlyStopPatience: 5,
	}); err != nil {
		return err
	}

	est, err := apds.New(net, apds.Options{})
	if err != nil {
		return err
	}
	mc10, err := apds.NewMCDrop(net, 10, 0, 5)
	if err != nil {
		return err
	}

	device := apds.NewEdison()
	fmt.Printf("\nmodeled Edison cost: ApDeepSense %.2f ms vs MCDrop-10 %.2f ms\n\n",
		device.TimeMillis(est.Cost()), device.TimeMillis(mc10.Cost()))

	fmt.Println("  trip   actual      ApDeepSense ETA      MCDrop-10 ETA")
	for i := 0; i < 8; i++ {
		s := ds.Test[i]
		g, err := est.Predict(s.X)
		if err != nil {
			return err
		}
		m, err := mc10.Predict(s.X)
		if err != nil {
			return err
		}
		gMean, gVar := ds.DenormPrediction(g.Mean, g.Var)
		mMean, mVar := ds.DenormPrediction(m.Mean, m.Var)
		truth := ds.DenormTarget(s.Y)
		fmt.Printf("  %4d   %5.1f min   %5.1f ± %4.1f min     %5.1f ± %4.1f min\n",
			i, truth[0], gMean[0], math.Sqrt(gVar[0]), mMean[0], math.Sqrt(mVar[0]))
	}
	return nil
}
