// Observability plumbing for the inference server: the metrics the handlers
// and propagator hooks update, the request-ID + access-log + histogram
// middleware every route passes through, and the /metrics handler that
// renders it all as Prometheus text exposition format.
//
// Metric names (see README "Observability"):
//
//	apds_http_requests_total{route,code}     requests by route and status
//	apds_http_request_seconds{route}         request latency histogram
//	apds_http_inflight_requests              currently executing requests
//	apds_predict_batch_rows                  /predict batch-size histogram
//	apds_propagate_layer_seconds{layer}      per-layer propagation wall time
//	apds_scratch_pool_gets_total{result}     batch scratch pool hit/miss
//	apds_model_params                        parameter count of the served model
//
// The request coalescer registers its own family on the same registry (see
// internal/serve): apds_serve_batch_rows, apds_serve_queue_wait_seconds,
// apds_serve_queue_depth, apds_serve_flushes_total{reason},
// apds_serve_rejected_total, apds_serve_cancelled_total.
package main

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	apds "github.com/apdeepsense/apdeepsense"
)

// serverMetrics bundles the registry and the handles the hot paths update.
type serverMetrics struct {
	reg *apds.ObsRegistry

	requests  *apds.ObsCounterVec
	latency   *apds.ObsHistogramVec
	inflight  *apds.ObsGauge
	batchRows *apds.ObsHistogram
	layerTime *apds.ObsHistogramVec
	scratch   *apds.ObsCounterVec
	params    *apds.ObsGauge
}

func newServerMetrics() *serverMetrics {
	reg := apds.NewObsRegistry()
	return &serverMetrics{
		reg: reg,
		requests: reg.CounterVec("apds_http_requests_total",
			"HTTP requests by route and status code.", "route", "code"),
		latency: reg.HistogramVec("apds_http_request_seconds",
			"HTTP request latency.", apds.ObsLatencyBuckets(), "route"),
		inflight: reg.Gauge("apds_http_inflight_requests",
			"Requests currently being served."),
		batchRows: reg.Histogram("apds_predict_batch_rows",
			"Rows per batched propagation call (all /predict traffic flushes through the coalescer).",
			apds.ObsExpBuckets(1, 2, 12)),
		layerTime: reg.HistogramVec("apds_propagate_layer_seconds",
			"Wall time per network layer per propagation chunk.",
			apds.ObsExpBuckets(1e-6, 2, 16), "layer"),
		scratch: reg.CounterVec("apds_scratch_pool_gets_total",
			"Batch scratch-buffer acquisitions by pool outcome.", "result"),
		params: reg.Gauge("apds_model_params",
			"Parameter count of the served model."),
	}
}

// hooks builds the propagator callbacks feeding the registry. Layer labels
// are the layer indices, so scraping shows where propagation time goes.
func (m *serverMetrics) hooks() *apds.PropagatorHooks {
	hit := m.scratch.With("hit")
	miss := m.scratch.With("miss")
	return &apds.PropagatorHooks{
		BatchStart: func(rows int) { m.batchRows.Observe(float64(rows)) },
		LayerTime: func(layer, rows int, d time.Duration) {
			m.layerTime.With(strconv.Itoa(layer)).Observe(d.Seconds())
		},
		ScratchGet: func(ok bool) {
			if ok {
				hit.Inc()
			} else {
				miss.Inc()
			}
		},
	}
}

// handleMetrics renders the registry in Prometheus text exposition format.
func (s *service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	// Hot-swaps change the served parameter count at any time; refresh the
	// gauge from the model registry at scrape time.
	var params int64
	for _, st := range s.reg.Models() {
		params += st.Params
	}
	s.metrics.params.Set(float64(params))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.metrics.reg.WriteText(w); err != nil {
		s.logger.Error("write metrics", "err", err)
	}
}

// reqIDPrefix and reqIDCounter generate process-unique request IDs of the
// form "f3a9c1d2-42": a random process prefix plus a sequence number.
var (
	reqIDPrefix  = randomPrefix()
	reqIDCounter atomic.Uint64
)

func randomPrefix() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unrecoverable for this process anyway;
		// fall back to a fixed prefix rather than refuse to serve.
		return "00000000"
	}
	return hex.EncodeToString(b[:])
}

func nextRequestID() string {
	return reqIDPrefix + "-" + strconv.FormatUint(reqIDCounter.Add(1), 10)
}

// traceKey carries the request's *apds.ObsTrace through the context.
type traceKey struct{}

// traceFrom returns the request trace installed by instrument, or a
// throwaway trace so direct handler calls (tests) need no middleware.
func traceFrom(ctx context.Context) *apds.ObsTrace {
	if tr, ok := ctx.Value(traceKey{}).(*apds.ObsTrace); ok {
		return tr
	}
	return apds.NewObsTrace("untraced")
}

// statusWriter captures the status code and body size for metrics/logs.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// instrument wraps a route handler with the full observability stack:
// request-ID assignment (honoring an incoming X-Request-ID), a per-request
// trace, the in-flight gauge, per-route latency/status metrics, and one
// structured access-log line per request.
func (s *service) instrument(route string, next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = nextRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		tr := apds.NewObsTrace(id)

		s.metrics.inflight.Add(1)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next(sw, r.WithContext(context.WithValue(r.Context(), traceKey{}, tr)))
		s.metrics.inflight.Add(-1)

		elapsed := tr.Elapsed()
		s.metrics.requests.With(route, strconv.Itoa(sw.status)).Inc()
		s.metrics.latency.With(route).Observe(elapsed.Seconds())

		attrs := []any{
			"id", id,
			"method", r.Method,
			"route", route,
			"status", sw.status,
			"bytes", sw.bytes,
			"duration_us", elapsed.Microseconds(),
			"remote", r.RemoteAddr,
		}
		for _, span := range tr.Spans() {
			attrs = append(attrs, span.Name+"_us", span.Duration.Microseconds())
		}
		s.logger.Info("request", attrs...)
	}
}
