package main

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	apds "github.com/apdeepsense/apdeepsense"
)

func testNetwork(t *testing.T, seed int64) *apds.Network {
	t.Helper()
	net, err := apds.NewNetwork(apds.NetworkConfig{
		InputDim: 2, Hidden: []int{8}, OutputDim: 1,
		Activation: apds.ActReLU, OutputActivation: apds.ActIdentity,
		KeepProb: 0.9, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// emptyTestService wires the full registry-backed stack (metrics registry,
// propagator hooks, coalescer pools, discard logger) exactly as newService,
// but registers no model — readiness tests add their own. Warmup is skipped
// so metric counts stay exact.
func emptyTestService(t *testing.T, cfgs ...apds.ServeConfig) *service {
	t.Helper()
	var cfg apds.ServeConfig
	if len(cfgs) > 0 {
		cfg = cfgs[0]
	}
	m := newServerMetrics()
	cfg.Metrics = apds.NewServeMetrics(m.reg)
	reg := apds.NewModelRegistry(apds.ModelRegistryConfig{
		Serve:      cfg,
		Metrics:    apds.NewModelRegistryMetrics(m.reg),
		Hooks:      m.hooks(),
		SkipWarmup: true,
	})
	svc := &service{
		reg:     reg,
		device:  apds.NewEdison(),
		metrics: m,
		logger:  slog.New(slog.NewTextHandler(io.Discard, nil)),
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := svc.close(ctx); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return svc
}

// testService is emptyTestService plus a routable "default" model, the shape
// most handler tests need.
func testService(t *testing.T, cfgs ...apds.ServeConfig) *service {
	t.Helper()
	svc := emptyTestService(t, cfgs...)
	if _, err := svc.reg.AddVersion(defaultModel, "v1", testNetwork(t, 3)); err != nil {
		t.Fatal(err)
	}
	if err := svc.reg.SetRoutes(defaultModel, "v1", "", 0, ""); err != nil {
		t.Fatal(err)
	}
	return svc
}

func post(t *testing.T, svc *service, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/predict", strings.NewReader(body))
	rec := httptest.NewRecorder()
	svc.handlePredict(rec, req)
	return rec
}

func TestHandlePredictSingle(t *testing.T) {
	rec := post(t, testService(t), `{"input":[0.5,-1]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp predictResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Mean) != 1 || len(resp.Std) != 1 || resp.Results != nil {
		t.Errorf("unexpected single response shape: %+v", resp)
	}
	if resp.Model != defaultModel || resp.Version != "v1" || resp.Fingerprint == "" || resp.Route != apds.ModelRouteCurrent {
		t.Errorf("missing serving tag: %+v", resp)
	}
}

// TestHandlePredictBatch checks the "inputs" form returns one result per
// sample, matching the single-sample endpoint.
func TestHandlePredictBatch(t *testing.T) {
	svc := testService(t)
	rec := post(t, svc, `{"inputs":[[0.5,-1],[2,0.25],[-3,1]]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp predictResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 || resp.Mean != nil {
		t.Fatalf("unexpected batch response shape: %+v", resp)
	}
	single := post(t, svc, `{"input":[0.5,-1]}`)
	var want predictResponse
	if err := json.Unmarshal(single.Body.Bytes(), &want); err != nil {
		t.Fatal(err)
	}
	if resp.Results[0].Mean[0] != want.Mean[0] || resp.Results[0].Std[0] != want.Std[0] {
		t.Errorf("batch result %v differs from single-sample result %v", resp.Results[0], want)
	}
}

// TestCoalescedMatchesDirect is the serving-path bit-identity contract at the
// handler level: a /predict response produced through the registry's
// coalescer pool carries exactly the moments the served version's estimator
// returns for the same input.
func TestCoalescedMatchesDirect(t *testing.T) {
	svc := testService(t)
	rec := post(t, svc, `{"input":[0.5,-1]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp predictResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	v, err := svc.reg.Version(resp.Model, resp.Version)
	if err != nil {
		t.Fatal(err)
	}
	if v.Fingerprint != resp.Fingerprint {
		t.Fatalf("response fingerprint %s != version fingerprint %s", resp.Fingerprint, v.Fingerprint)
	}
	want, err := v.Estimator().Predict(apds.Vector{0.5, -1})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Mean[0] != want.Mean[0] || resp.Std[0] != want.Std(0) {
		t.Errorf("coalesced response %v/%v, direct predict %v/%v",
			resp.Mean[0], resp.Std[0], want.Mean[0], want.Std(0))
	}
}

// blockingEstimator wraps an estimator so every Predict stalls until release
// closes, signalling started first — the lever that deterministically wedges
// a version pool's flush worker for overload tests.
type blockingEstimator struct {
	apds.Estimator
	started chan struct{}
	release chan struct{}
}

func (b *blockingEstimator) Predict(x apds.Vector) (apds.GaussianVec, error) {
	b.started <- struct{}{}
	<-b.release
	return b.Estimator.Predict(x)
}

// TestHandlePredictQueueFull pins the overload contract end-to-end: with the
// flush worker wedged and the queue at capacity, the next request gets 429
// (not a hang, not a 500), and queued requests still complete once the worker
// frees up.
func TestHandlePredictQueueFull(t *testing.T) {
	net := testNetwork(t, 3)
	inner, err := apds.New(net, apds.Options{})
	if err != nil {
		t.Fatal(err)
	}
	est := &blockingEstimator{
		Estimator: inner,
		started:   make(chan struct{}, 8),
		release:   make(chan struct{}),
	}
	svc := emptyTestService(t, apds.ServeConfig{MaxBatch: 1, QueueDepth: 1})
	v, err := svc.reg.AddVersionEstimator(defaultModel, "v1", net, est)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.reg.SetRoutes(defaultModel, "v1", "", 0, ""); err != nil {
		t.Fatal(err)
	}

	// Request 1 flushes immediately (idle worker) and wedges on the blocking
	// estimator; request 2 fills the one queue slot behind it.
	results := make(chan *httptest.ResponseRecorder, 2)
	for i := 0; i < 2; i++ {
		go func() { results <- post(t, svc, `{"input":[0.5,-1]}`) }()
		if i == 0 {
			<-est.started // flush worker is now wedged
		} else {
			deadline := time.Now().Add(5 * time.Second)
			for v.QueueDepth() != 1 {
				if time.Now().After(deadline) {
					t.Fatal("request 2 never queued")
				}
				time.Sleep(100 * time.Microsecond)
			}
		}
	}

	// Request 3 finds the queue full: 429 plus a Retry-After budget (whole
	// seconds, at least 1) so callers back off instead of hammering.
	if rec := post(t, svc, `{"input":[0.5,-1]}`); rec.Code != http.StatusTooManyRequests {
		t.Errorf("over-capacity status %d, want 429 (%s)", rec.Code, rec.Body)
	} else if ra, err := strconv.Atoi(rec.Header().Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("429 Retry-After = %q, want an integer >= 1", rec.Header().Get("Retry-After"))
	}

	close(est.release)
	for i := 0; i < 2; i++ {
		if rec := <-results; rec.Code != http.StatusOK {
			t.Errorf("queued request status %d, want 200 (%s)", rec.Code, rec.Body)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := svc.close(ctx); err != nil {
		t.Fatal(err)
	}
	// After drain, new requests are refused as unavailable — also with a
	// Retry-After so load balancers know the rejection is retryable.
	if rec := post(t, svc, `{"input":[0.5,-1]}`); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("post-close status %d, want 503 (%s)", rec.Code, rec.Body)
	} else if rec.Header().Get("Retry-After") == "" {
		t.Error("503 response missing Retry-After header")
	}
}

// TestPredictStatus pins the error → HTTP status mapping.
func TestPredictStatus(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{apds.ErrServeQueueFull, http.StatusTooManyRequests},
		{apds.ErrServeClosed, http.StatusServiceUnavailable},
		{apds.ErrModelNotReady, http.StatusServiceUnavailable},
		{apds.ErrModelRegistryClosed, http.StatusServiceUnavailable},
		{apds.ErrModelNotFound, http.StatusNotFound},
		{context.Canceled, http.StatusServiceUnavailable},
		{context.DeadlineExceeded, http.StatusServiceUnavailable},
		{io.ErrUnexpectedEOF, http.StatusInternalServerError},
	}
	for _, c := range cases {
		if got := predictStatus(c.err); got != c.want {
			t.Errorf("predictStatus(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// TestHandlePredictRejects pins the 400 paths: malformed JSON, trailing
// garbage after the object, both/neither input fields, wrong dimensions, and
// payloads over the MaxBytesReader limit.
func TestHandlePredictRejects(t *testing.T) {
	svc := testService(t)
	cases := map[string]string{
		"malformed":       `{"input":`,
		"trailing":        `{"input":[1,2]} extra`,
		"second object":   `{"input":[1,2]}{"input":[3,4]}`,
		"both fields":     `{"input":[1,2],"inputs":[[1,2]]}`,
		"neither field":   `{}`,
		"wrong dim":       `{"input":[1]}`,
		"wrong batch dim": `{"inputs":[[1,2],[3]]}`,
		"oversized":       `{"inputs":[[` + strings.Repeat("1,", maxRequestBytes/2) + `1]]}`,
	}
	for name, body := range cases {
		if rec := post(t, svc, body); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", name, rec.Code, rec.Body)
		}
	}
}

func TestHandlePredictMethod(t *testing.T) {
	req := httptest.NewRequest(http.MethodGet, "/predict", nil)
	rec := httptest.NewRecorder()
	testService(t).handlePredict(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET status %d, want 405", rec.Code)
	}
}

// do sends one request through the full instrumented mux, so middleware,
// metrics, and routing are all exercised.
func do(t *testing.T, mux *http.ServeMux, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	return rec
}

// TestModelPredictEndpoint drives the per-model route: the named model
// serves, an unknown model 404s, and responses are tagged with the serving
// version.
func TestModelPredictEndpoint(t *testing.T) {
	svc := testService(t)
	mux := svc.mux()

	rec := do(t, mux, http.MethodPost, "/v1/models/default/predict", `{"input":[0.5,-1]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp predictResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Model != defaultModel || resp.Version != "v1" || resp.Fingerprint == "" {
		t.Errorf("missing serving tag: %+v", resp)
	}

	if rec := do(t, mux, http.MethodPost, "/v1/models/nope/predict", `{"input":[0.5,-1]}`); rec.Code != http.StatusNotFound {
		t.Errorf("unknown model status %d, want 404 (%s)", rec.Code, rec.Body)
	}
	if rec := do(t, mux, http.MethodPost, "/v1/models/default/predict", `{"inputs":[[0.5,-1],[2,0.25]]}`); rec.Code != http.StatusOK {
		t.Errorf("batch status %d (%s)", rec.Code, rec.Body)
	}
}

// TestModelsEndpoint checks the listing carries routes and fingerprints and
// sets the fingerprint ETag.
func TestModelsEndpoint(t *testing.T) {
	svc := testService(t)
	mux := svc.mux()

	rec := do(t, mux, http.MethodGet, "/v1/models", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var listing struct {
		Models []apds.ModelStatus `json:"models"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Models) != 1 {
		t.Fatalf("listing has %d models, want 1: %s", len(listing.Models), rec.Body)
	}
	st := listing.Models[0]
	if st.Name != defaultModel || st.Current != "v1" || st.CurrentFingerprint == "" || len(st.Versions) != 1 {
		t.Errorf("unexpected model status: %+v", st)
	}
	etag := rec.Header().Get("ETag")
	if !strings.Contains(etag, st.CurrentFingerprint) {
		t.Errorf("ETag %q does not carry fingerprint %s", etag, st.CurrentFingerprint)
	}
	if rec := do(t, mux, http.MethodPost, "/v1/models", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/models status %d, want 405", rec.Code)
	}
}

// TestReadinessLifecycle pins the probe semantics across the service's life:
// /livez is always 200; /readyz (and its /healthz alias) is 503 before the
// first version routes, 200 once one does, stays 200 across a hot-swap with
// traffic in flight, and drops back to 503 after shutdown.
func TestReadinessLifecycle(t *testing.T) {
	svc := emptyTestService(t)
	mux := svc.mux()

	if rec := do(t, mux, http.MethodGet, "/livez", ""); rec.Code != http.StatusOK {
		t.Errorf("livez before model: %d", rec.Code)
	}
	for _, path := range []string{"/readyz", "/healthz"} {
		if rec := do(t, mux, http.MethodGet, path, ""); rec.Code != http.StatusServiceUnavailable {
			t.Errorf("%s before model: status %d, want 503", path, rec.Code)
		}
	}

	// A registered-but-unrouted version is not ready yet (the startup
	// window: loaded, warmed, awaiting its first SetRoutes).
	if _, err := svc.reg.AddVersion(defaultModel, "v1", testNetwork(t, 3)); err != nil {
		t.Fatal(err)
	}
	if rec := do(t, mux, http.MethodGet, "/readyz", ""); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz with unrouted version: status %d, want 503", rec.Code)
	}
	if err := svc.reg.SetRoutes(defaultModel, "v1", "", 0, ""); err != nil {
		t.Fatal(err)
	}
	rec := do(t, mux, http.MethodGet, "/readyz", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("readyz after route: status %d (%s)", rec.Code, rec.Body)
	}
	var ready struct {
		Ready  bool               `json:"ready"`
		Models []apds.ModelStatus `json:"models"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &ready); err != nil {
		t.Fatal(err)
	}
	if !ready.Ready || len(ready.Models) != 1 {
		t.Errorf("unexpected readyz body: %s", rec.Body)
	}
	oldETag := rec.Header().Get("ETag")

	// Hot-swap under load: predictions and readiness must hold through the
	// entire swap — zero not-ready (or failed) responses.
	if _, err := svc.reg.AddVersion(defaultModel, "v2", testNetwork(t, 4)); err != nil {
		t.Fatal(err)
	}
	stopTraffic := make(chan struct{})
	var trafficWG sync.WaitGroup
	trafficWG.Add(1)
	go func() {
		defer trafficWG.Done()
		for {
			select {
			case <-stopTraffic:
				return
			default:
			}
			if rec := do(t, mux, http.MethodPost, "/predict", `{"input":[0.5,-1]}`); rec.Code != http.StatusOK {
				t.Errorf("predict during swap: status %d (%s)", rec.Code, rec.Body)
				return
			}
			if rec := do(t, mux, http.MethodGet, "/readyz", ""); rec.Code != http.StatusOK {
				t.Errorf("readyz during swap: status %d", rec.Code)
				return
			}
		}
	}()
	for i := 0; i < 10; i++ {
		target := "v1"
		if i%2 == 1 {
			target = "v2" // the loop ends on v2: a net version change
		}
		if err := svc.reg.SetRoutes(defaultModel, target, "", 0, ""); err != nil {
			t.Fatal(err)
		}
	}
	close(stopTraffic)
	trafficWG.Wait()
	if rec := do(t, mux, http.MethodGet, "/healthz", ""); rec.Header().Get("ETag") == oldETag {
		t.Error("ETag unchanged after hot-swap to a different version")
	}

	// After shutdown the probes must go not-ready (while /livez still
	// answers: the process is alive, just not serving).
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := svc.close(ctx); err != nil {
		t.Fatal(err)
	}
	if rec := do(t, mux, http.MethodGet, "/readyz", ""); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz after close: status %d, want 503", rec.Code)
	}
	if rec := do(t, mux, http.MethodGet, "/livez", ""); rec.Code != http.StatusOK {
		t.Errorf("livez after close: status %d, want 200", rec.Code)
	}
}

// writeTestManifest writes man as JSON to path.
func writeTestManifest(t *testing.T, path string, man apds.ModelManifest) {
	t.Helper()
	data, err := json.Marshal(man)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestManifestReloadSmoke is the hot-reload walkthrough as a test: start from
// a manifest, serve, rewrite the model file and manifest on disk, hit the
// admin reload endpoint, and observe the new fingerprint serving — zero
// downtime, same process. tools/check.sh runs this by name as the reload
// smoke test.
func TestManifestReloadSmoke(t *testing.T) {
	dir := t.TempDir()
	if err := testNetwork(t, 3).SaveFile(filepath.Join(dir, "a.model")); err != nil {
		t.Fatal(err)
	}
	manPath := filepath.Join(dir, "registry.json")
	writeTestManifest(t, manPath, apds.ModelManifest{Models: []apds.ModelManifestModel{{
		Name:     "demo",
		Versions: []apds.ModelManifestVersion{{ID: "v1", Path: "a.model"}},
		Current:  "v1",
	}}})

	svc, err := newService("", manPath, apds.ServeConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	svc.logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := svc.close(ctx); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	mux := svc.mux()

	rec := do(t, mux, http.MethodPost, "/v1/models/demo/predict", `{"input":[0.5,-1]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("initial predict: status %d (%s)", rec.Code, rec.Body)
	}
	var before predictResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &before); err != nil {
		t.Fatal(err)
	}

	// New weights under a new version id land on disk; the manifest flips
	// current to it.
	if err := testNetwork(t, 99).SaveFile(filepath.Join(dir, "b.model")); err != nil {
		t.Fatal(err)
	}
	writeTestManifest(t, manPath, apds.ModelManifest{Models: []apds.ModelManifestModel{{
		Name: "demo",
		Versions: []apds.ModelManifestVersion{
			{ID: "v1", Path: "a.model"},
			{ID: "v2", Path: "b.model"},
		},
		Current: "v2",
		Shadow:  "v1",
	}}})

	rec = do(t, mux, http.MethodPost, "/v1/models/demo/reload", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("reload: status %d (%s)", rec.Code, rec.Body)
	}
	var reload struct {
		Reloaded bool             `json:"reloaded"`
		Model    apds.ModelStatus `json:"model"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &reload); err != nil {
		t.Fatal(err)
	}
	if !reload.Reloaded || reload.Model.Current != "v2" || reload.Model.Shadow != "v1" {
		t.Fatalf("unexpected reload result: %s", rec.Body)
	}

	rec = do(t, mux, http.MethodPost, "/v1/models/demo/predict", `{"input":[0.5,-1]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("post-reload predict: status %d (%s)", rec.Code, rec.Body)
	}
	var after predictResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &after); err != nil {
		t.Fatal(err)
	}
	if after.Version != "v2" || after.Fingerprint == before.Fingerprint {
		t.Errorf("reload did not swap serving version: before %s/%s after %s/%s",
			before.Version, before.Fingerprint, after.Version, after.Fingerprint)
	}

	// Reload for a model the manifest doesn't declare is a 404.
	if rec := do(t, mux, http.MethodPost, "/v1/models/nope/reload", ""); rec.Code != http.StatusNotFound {
		t.Errorf("reload unknown model: status %d, want 404", rec.Code)
	}
}

// TestReloadWithoutManifest pins the admin endpoint's answer when the server
// was started from -model or the demo path: 409, not a crash.
func TestReloadWithoutManifest(t *testing.T) {
	svc := testService(t)
	rec := do(t, svc.mux(), http.MethodPost, "/v1/models/default/reload", "")
	if rec.Code != http.StatusConflict {
		t.Errorf("reload without manifest: status %d, want 409 (%s)", rec.Code, rec.Body)
	}
}

// TestMetricsEndpoint drives traffic through the mux and checks /metrics
// renders valid Prometheus exposition including request histograms, the
// per-layer propagation timings the hooks feed, and the registry families.
func TestMetricsEndpoint(t *testing.T) {
	svc := testService(t)
	mux := svc.mux()

	if rec := do(t, mux, http.MethodPost, "/predict", `{"input":[0.5,-1]}`); rec.Code != http.StatusOK {
		t.Fatalf("predict status %d: %s", rec.Code, rec.Body)
	}
	if rec := do(t, mux, http.MethodPost, "/predict", `{"inputs":[[0.5,-1],[2,0.25],[-3,1]]}`); rec.Code != http.StatusOK {
		t.Fatalf("batch predict status %d: %s", rec.Code, rec.Body)
	}
	if rec := do(t, mux, http.MethodPost, "/predict", `{"bad":`); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad predict status %d", rec.Code)
	}

	rec := do(t, mux, http.MethodGet, "/metrics", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type %q", ct)
	}
	text := rec.Body.String()
	for _, want := range []string{
		`apds_http_requests_total{route="/predict",code="200"} 2`,
		`apds_http_requests_total{route="/predict",code="400"} 1`,
		"# TYPE apds_http_request_seconds histogram",
		`apds_http_request_seconds_bucket{route="/predict",le="+Inf"} 3`,
		"# TYPE apds_propagate_layer_seconds histogram",
		`apds_propagate_layer_seconds_bucket{layer="0",le="+Inf"}`,
		`apds_propagate_layer_seconds_bucket{layer="1",le="+Inf"}`,
		// Both the single and the batch request flushed through the
		// coalescer onto the batched propagation path.
		"apds_predict_batch_rows_count 2",
		"apds_scratch_pool_gets_total",
		"apds_model_params",
		// Coalescer instrumentation: 2 flushes moved 4 rows total.
		"apds_serve_batch_rows_count 2",
		"apds_serve_batch_rows_sum 4",
		"apds_serve_queue_wait_seconds_count 4",
		"# TYPE apds_serve_flushes_total counter",
		"apds_serve_queue_depth 0",
		// Registry instrumentation: both successful requests routed current.
		`apds_registry_requests_total{model="default",route="current"} 2`,
		`apds_registry_versions{model="default"} 1`,
		"apds_registry_swaps_total",
		// The scrape itself is in flight while the registry renders.
		"apds_http_inflight_requests 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// Basic exposition well-formedness: every non-comment line is
	// "name{labels} value" or "name value".
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
	// GET only.
	if rec := do(t, mux, http.MethodPost, "/metrics", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics status %d, want 405", rec.Code)
	}
}

// TestRequestID checks the middleware assigns IDs and honors incoming ones.
func TestRequestID(t *testing.T) {
	svc := testService(t)
	mux := svc.mux()

	rec := do(t, mux, http.MethodGet, "/healthz", "")
	if id := rec.Header().Get("X-Request-ID"); id == "" {
		t.Error("no X-Request-ID assigned")
	}

	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	req.Header.Set("X-Request-ID", "caller-id-7")
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if id := rec.Header().Get("X-Request-ID"); id != "caller-id-7" {
		t.Errorf("X-Request-ID = %q, want caller-id-7", id)
	}
}

// TestPprofRoutes checks the profiling endpoints are wired.
func TestPprofRoutes(t *testing.T) {
	rec := do(t, testService(t).mux(), http.MethodGet, "/debug/pprof/", "")
	if rec.Code != http.StatusOK {
		t.Errorf("pprof index status %d", rec.Code)
	}
}

// TestConcurrentPredictMetrics hammers /predict and /metrics from parallel
// goroutines — the race-detector coverage tools/check.sh requires for the
// serving path (scrapes render the registry while hooks update it).
func TestConcurrentPredictMetrics(t *testing.T) {
	svc := testService(t)
	mux := svc.mux()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var rec *httptest.ResponseRecorder
				switch i % 3 {
				case 0:
					rec = do(t, mux, http.MethodPost, "/predict", `{"input":[0.5,-1]}`)
				case 1:
					rec = do(t, mux, http.MethodPost, "/predict", `{"inputs":[[0.5,-1],[2,0.25]]}`)
				default:
					rec = do(t, mux, http.MethodGet, "/metrics", "")
				}
				if rec.Code != http.StatusOK {
					t.Errorf("worker %d req %d: status %d", w, i, rec.Code)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := svc.metrics.inflight.Value(); got != 0 {
		t.Errorf("inflight gauge = %v after drain, want 0", got)
	}
}
