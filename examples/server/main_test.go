package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	apds "github.com/apdeepsense/apdeepsense"
)

// testService builds a service around a small untrained network so handler
// tests don't pay the demo-training cost.
func testService(t *testing.T) *service {
	t.Helper()
	net, err := apds.NewNetwork(apds.NetworkConfig{
		InputDim: 2, Hidden: []int{8}, OutputDim: 1,
		Activation: apds.ActReLU, OutputActivation: apds.ActIdentity,
		KeepProb: 0.9, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	est, err := apds.New(net, apds.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return &service{est: est, net: net, device: apds.NewEdison()}
}

func post(t *testing.T, svc *service, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/predict", strings.NewReader(body))
	rec := httptest.NewRecorder()
	svc.handlePredict(rec, req)
	return rec
}

func TestHandlePredictSingle(t *testing.T) {
	rec := post(t, testService(t), `{"input":[0.5,-1]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp predictResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Mean) != 1 || len(resp.Std) != 1 || resp.Results != nil {
		t.Errorf("unexpected single response shape: %+v", resp)
	}
}

// TestHandlePredictBatch checks the "inputs" form returns one result per
// sample, matching the single-sample endpoint.
func TestHandlePredictBatch(t *testing.T) {
	svc := testService(t)
	rec := post(t, svc, `{"inputs":[[0.5,-1],[2,0.25],[-3,1]]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp predictResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 || resp.Mean != nil {
		t.Fatalf("unexpected batch response shape: %+v", resp)
	}
	single := post(t, svc, `{"input":[0.5,-1]}`)
	var want predictResponse
	if err := json.Unmarshal(single.Body.Bytes(), &want); err != nil {
		t.Fatal(err)
	}
	if resp.Results[0].Mean[0] != want.Mean[0] || resp.Results[0].Std[0] != want.Std[0] {
		t.Errorf("batch result %v differs from single-sample result %v", resp.Results[0], want)
	}
}

// TestHandlePredictRejects pins the 400 paths: malformed JSON, trailing
// garbage after the object, both/neither input fields, wrong dimensions, and
// payloads over the MaxBytesReader limit.
func TestHandlePredictRejects(t *testing.T) {
	svc := testService(t)
	cases := map[string]string{
		"malformed":       `{"input":`,
		"trailing":        `{"input":[1,2]} extra`,
		"second object":   `{"input":[1,2]}{"input":[3,4]}`,
		"both fields":     `{"input":[1,2],"inputs":[[1,2]]}`,
		"neither field":   `{}`,
		"wrong dim":       `{"input":[1]}`,
		"wrong batch dim": `{"inputs":[[1,2],[3]]}`,
		"oversized":       `{"inputs":[[` + strings.Repeat("1,", maxRequestBytes/2) + `1]]}`,
	}
	for name, body := range cases {
		if rec := post(t, svc, body); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", name, rec.Code, rec.Body)
		}
	}
}

func TestHandlePredictMethod(t *testing.T) {
	req := httptest.NewRequest(http.MethodGet, "/predict", nil)
	rec := httptest.NewRecorder()
	testService(t).handlePredict(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET status %d, want 405", rec.Code)
	}
}
