package main

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	apds "github.com/apdeepsense/apdeepsense"
)

// testService builds a service around a small untrained network so handler
// tests don't pay the demo-training cost. The full stack (metrics registry,
// propagator hooks, request coalescer, discard logger) is wired exactly as
// in newService; trailing config overrides the coalescer defaults.
func testService(t *testing.T, cfgs ...apds.ServeConfig) *service {
	t.Helper()
	var cfg apds.ServeConfig
	if len(cfgs) > 0 {
		cfg = cfgs[0]
	}
	net, err := apds.NewNetwork(apds.NetworkConfig{
		InputDim: 2, Hidden: []int{8}, OutputDim: 1,
		Activation: apds.ActReLU, OutputActivation: apds.ActIdentity,
		KeepProb: 0.9, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	est, err := apds.New(net, apds.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := newServerMetrics()
	m.params.Set(float64(net.Params()))
	est.Propagator().SetHooks(m.hooks())
	cfg.Metrics = apds.NewServeMetrics(m.reg)
	coal, err := apds.NewPredictCoalescer(est, cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc := &service{
		est:     est,
		coal:    coal,
		net:     net,
		device:  apds.NewEdison(),
		metrics: m,
		logger:  slog.New(slog.NewTextHandler(io.Discard, nil)),
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := svc.close(ctx); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return svc
}

func post(t *testing.T, svc *service, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/predict", strings.NewReader(body))
	rec := httptest.NewRecorder()
	svc.handlePredict(rec, req)
	return rec
}

func TestHandlePredictSingle(t *testing.T) {
	rec := post(t, testService(t), `{"input":[0.5,-1]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp predictResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Mean) != 1 || len(resp.Std) != 1 || resp.Results != nil {
		t.Errorf("unexpected single response shape: %+v", resp)
	}
}

// TestHandlePredictBatch checks the "inputs" form returns one result per
// sample, matching the single-sample endpoint.
func TestHandlePredictBatch(t *testing.T) {
	svc := testService(t)
	rec := post(t, svc, `{"inputs":[[0.5,-1],[2,0.25],[-3,1]]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp predictResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 || resp.Mean != nil {
		t.Fatalf("unexpected batch response shape: %+v", resp)
	}
	single := post(t, svc, `{"input":[0.5,-1]}`)
	var want predictResponse
	if err := json.Unmarshal(single.Body.Bytes(), &want); err != nil {
		t.Fatal(err)
	}
	if resp.Results[0].Mean[0] != want.Mean[0] || resp.Results[0].Std[0] != want.Std[0] {
		t.Errorf("batch result %v differs from single-sample result %v", resp.Results[0], want)
	}
}

// TestCoalescedMatchesDirect is the serving-path bit-identity contract at the
// handler level: a /predict response produced through the coalescer carries
// exactly the moments est.Predict returns for the same input.
func TestCoalescedMatchesDirect(t *testing.T) {
	svc := testService(t)
	rec := post(t, svc, `{"input":[0.5,-1]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp predictResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	want, err := svc.est.Predict(apds.Vector{0.5, -1})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Mean[0] != want.Mean[0] || resp.Std[0] != want.Std(0) {
		t.Errorf("coalesced response %v/%v, direct predict %v/%v",
			resp.Mean[0], resp.Std[0], want.Mean[0], want.Std(0))
	}
}

// blockingEstimator wraps an estimator so every Predict stalls until release
// closes, signalling started first — the lever that deterministically wedges
// the coalescer's flush worker for overload tests.
type blockingEstimator struct {
	apds.Estimator
	started chan struct{}
	release chan struct{}
}

func (b *blockingEstimator) Predict(x apds.Vector) (apds.GaussianVec, error) {
	b.started <- struct{}{}
	<-b.release
	return b.Estimator.Predict(x)
}

// TestHandlePredictQueueFull pins the overload contract end-to-end: with the
// flush worker wedged and the queue at capacity, the next request gets 429
// (not a hang, not a 500), and queued requests still complete once the worker
// frees up.
func TestHandlePredictQueueFull(t *testing.T) {
	net, err := apds.NewNetwork(apds.NetworkConfig{
		InputDim: 2, Hidden: []int{8}, OutputDim: 1,
		Activation: apds.ActReLU, OutputActivation: apds.ActIdentity,
		KeepProb: 0.9, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	inner, err := apds.New(net, apds.Options{})
	if err != nil {
		t.Fatal(err)
	}
	est := &blockingEstimator{
		Estimator: inner,
		started:   make(chan struct{}, 8),
		release:   make(chan struct{}),
	}
	m := newServerMetrics()
	coal, err := apds.NewPredictCoalescer(est, apds.ServeConfig{
		MaxBatch: 1, QueueDepth: 1, Metrics: apds.NewServeMetrics(m.reg),
	})
	if err != nil {
		t.Fatal(err)
	}
	svc := &service{
		est: est, coal: coal, net: net,
		device: apds.NewEdison(), metrics: m,
		logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	}

	// Request 1 flushes immediately (idle worker) and wedges on the blocking
	// estimator; request 2 fills the one queue slot behind it.
	results := make(chan *httptest.ResponseRecorder, 2)
	for i := 0; i < 2; i++ {
		go func() { results <- post(t, svc, `{"input":[0.5,-1]}`) }()
		if i == 0 {
			<-est.started // flush worker is now wedged
		} else {
			deadline := time.Now().Add(5 * time.Second)
			for coal.Depth() != 1 {
				if time.Now().After(deadline) {
					t.Fatal("request 2 never queued")
				}
				time.Sleep(100 * time.Microsecond)
			}
		}
	}

	// Request 3 finds the queue full.
	if rec := post(t, svc, `{"input":[0.5,-1]}`); rec.Code != http.StatusTooManyRequests {
		t.Errorf("over-capacity status %d, want 429 (%s)", rec.Code, rec.Body)
	}

	close(est.release)
	for i := 0; i < 2; i++ {
		if rec := <-results; rec.Code != http.StatusOK {
			t.Errorf("queued request status %d, want 200 (%s)", rec.Code, rec.Body)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := svc.close(ctx); err != nil {
		t.Fatal(err)
	}
	// After drain, new requests are refused as unavailable.
	if rec := post(t, svc, `{"input":[0.5,-1]}`); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("post-close status %d, want 503 (%s)", rec.Code, rec.Body)
	}
}

// TestPredictStatus pins the error → HTTP status mapping.
func TestPredictStatus(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{apds.ErrServeQueueFull, http.StatusTooManyRequests},
		{apds.ErrServeClosed, http.StatusServiceUnavailable},
		{context.Canceled, http.StatusServiceUnavailable},
		{context.DeadlineExceeded, http.StatusServiceUnavailable},
		{io.ErrUnexpectedEOF, http.StatusInternalServerError},
	}
	for _, c := range cases {
		if got := predictStatus(c.err); got != c.want {
			t.Errorf("predictStatus(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// TestHandlePredictRejects pins the 400 paths: malformed JSON, trailing
// garbage after the object, both/neither input fields, wrong dimensions, and
// payloads over the MaxBytesReader limit.
func TestHandlePredictRejects(t *testing.T) {
	svc := testService(t)
	cases := map[string]string{
		"malformed":       `{"input":`,
		"trailing":        `{"input":[1,2]} extra`,
		"second object":   `{"input":[1,2]}{"input":[3,4]}`,
		"both fields":     `{"input":[1,2],"inputs":[[1,2]]}`,
		"neither field":   `{}`,
		"wrong dim":       `{"input":[1]}`,
		"wrong batch dim": `{"inputs":[[1,2],[3]]}`,
		"oversized":       `{"inputs":[[` + strings.Repeat("1,", maxRequestBytes/2) + `1]]}`,
	}
	for name, body := range cases {
		if rec := post(t, svc, body); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", name, rec.Code, rec.Body)
		}
	}
}

func TestHandlePredictMethod(t *testing.T) {
	req := httptest.NewRequest(http.MethodGet, "/predict", nil)
	rec := httptest.NewRecorder()
	testService(t).handlePredict(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET status %d, want 405", rec.Code)
	}
}

// do sends one request through the full instrumented mux, so middleware,
// metrics, and routing are all exercised.
func do(t *testing.T, mux *http.ServeMux, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	return rec
}

// TestMetricsEndpoint drives traffic through the mux and checks /metrics
// renders valid Prometheus exposition including request histograms and the
// per-layer propagation timings the hooks feed.
func TestMetricsEndpoint(t *testing.T) {
	svc := testService(t)
	mux := svc.mux()

	if rec := do(t, mux, http.MethodPost, "/predict", `{"input":[0.5,-1]}`); rec.Code != http.StatusOK {
		t.Fatalf("predict status %d: %s", rec.Code, rec.Body)
	}
	if rec := do(t, mux, http.MethodPost, "/predict", `{"inputs":[[0.5,-1],[2,0.25],[-3,1]]}`); rec.Code != http.StatusOK {
		t.Fatalf("batch predict status %d: %s", rec.Code, rec.Body)
	}
	if rec := do(t, mux, http.MethodPost, "/predict", `{"bad":`); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad predict status %d", rec.Code)
	}

	rec := do(t, mux, http.MethodGet, "/metrics", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type %q", ct)
	}
	text := rec.Body.String()
	for _, want := range []string{
		`apds_http_requests_total{route="/predict",code="200"} 2`,
		`apds_http_requests_total{route="/predict",code="400"} 1`,
		"# TYPE apds_http_request_seconds histogram",
		`apds_http_request_seconds_bucket{route="/predict",le="+Inf"} 3`,
		"# TYPE apds_propagate_layer_seconds histogram",
		`apds_propagate_layer_seconds_bucket{layer="0",le="+Inf"}`,
		`apds_propagate_layer_seconds_bucket{layer="1",le="+Inf"}`,
		// Both the single and the batch request flushed through the
		// coalescer onto the batched propagation path.
		"apds_predict_batch_rows_count 2",
		"apds_scratch_pool_gets_total",
		"apds_model_params",
		// Coalescer instrumentation: 2 flushes moved 4 rows total.
		"apds_serve_batch_rows_count 2",
		"apds_serve_batch_rows_sum 4",
		"apds_serve_queue_wait_seconds_count 4",
		"# TYPE apds_serve_flushes_total counter",
		"apds_serve_queue_depth 0",
		// The scrape itself is in flight while the registry renders.
		"apds_http_inflight_requests 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// Basic exposition well-formedness: every non-comment line is
	// "name{labels} value" or "name value".
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
	// GET only.
	if rec := do(t, mux, http.MethodPost, "/metrics", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics status %d, want 405", rec.Code)
	}
}

// TestRequestID checks the middleware assigns IDs and honors incoming ones.
func TestRequestID(t *testing.T) {
	svc := testService(t)
	mux := svc.mux()

	rec := do(t, mux, http.MethodGet, "/healthz", "")
	if id := rec.Header().Get("X-Request-ID"); id == "" {
		t.Error("no X-Request-ID assigned")
	}

	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	req.Header.Set("X-Request-ID", "caller-id-7")
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if id := rec.Header().Get("X-Request-ID"); id != "caller-id-7" {
		t.Errorf("X-Request-ID = %q, want caller-id-7", id)
	}
}

// TestPprofRoutes checks the profiling endpoints are wired.
func TestPprofRoutes(t *testing.T) {
	rec := do(t, testService(t).mux(), http.MethodGet, "/debug/pprof/", "")
	if rec.Code != http.StatusOK {
		t.Errorf("pprof index status %d", rec.Code)
	}
}

// TestConcurrentPredictMetrics hammers /predict and /metrics from parallel
// goroutines — the race-detector coverage tools/check.sh requires for the
// serving path (scrapes render the registry while hooks update it).
func TestConcurrentPredictMetrics(t *testing.T) {
	svc := testService(t)
	mux := svc.mux()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var rec *httptest.ResponseRecorder
				switch i % 3 {
				case 0:
					rec = do(t, mux, http.MethodPost, "/predict", `{"input":[0.5,-1]}`)
				case 1:
					rec = do(t, mux, http.MethodPost, "/predict", `{"inputs":[[0.5,-1],[2,0.25]]}`)
				default:
					rec = do(t, mux, http.MethodGet, "/metrics", "")
				}
				if rec.Code != http.StatusOK {
					t.Errorf("worker %d req %d: status %d", w, i, rec.Code)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := svc.metrics.inflight.Value(); got != 0 {
		t.Errorf("inflight gauge = %v after drain, want 0", got)
	}
}
