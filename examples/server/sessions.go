// Session-fleet endpoints: the resident per-device streaming tier
// (internal/session) layered on the same registry the predict endpoints
// serve through. Every device gets a long-lived session holding its window
// ring, standardizer moments, surprisal history, and drift gate; each
// ingested sample advances that state and — when a window completes — runs
// the model and returns the gate's verdict.
//
//	POST   /v1/sessions/{id}/ingest    {"sample": [..]} → verdict
//	DELETE /v1/sessions/{id}           evict the device's session
//	GET    /v1/sessions                fleet stats (resident, gated, evicted)
//
// The fleet is configured from the manifest's "sessions" block (manifest
// mode) or the -sessions* flags (-model/demo modes). When a snapshot path
// is configured the whole fleet persists across restarts: restore at
// startup, periodic snapshots while running, and a final snapshot during
// graceful shutdown — a restarted server continues every device's verdict
// stream bit for bit.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"time"

	apds "github.com/apdeepsense/apdeepsense"
)

// sessionSettings is the resolved fleet configuration: the manager config
// plus which model predicts and where the fleet snapshot persists.
type sessionSettings struct {
	model            string
	cfg              apds.SessionConfig
	snapshotPath     string
	snapshotInterval time.Duration
}

// sessionSettingsFromManifest maps a manifest "sessions" block onto manager
// config. A relative snapshot path resolves against the manifest directory,
// like model version paths.
func sessionSettingsFromManifest(ms *apds.ModelManifestSessions, baseDir string) (*sessionSettings, error) {
	idle, err := ms.ParsedIdleTimeout()
	if err != nil {
		return nil, err
	}
	every, err := ms.ParsedSnapshotInterval()
	if err != nil {
		return nil, err
	}
	path := ms.SnapshotPath
	if path != "" && !filepath.IsAbs(path) {
		path = filepath.Join(baseDir, path)
	}
	return &sessionSettings{
		model: ms.Model,
		cfg: apds.SessionConfig{
			Channels: ms.Channels, Length: ms.Length, Stride: ms.Stride,
			Standardize:    ms.Standardize,
			WarmupWindows:  ms.WarmupWindows,
			DriftThreshold: ms.DriftThreshold,
			EscalateAfter:  ms.EscalateAfter,
			ReadmitAfter:   ms.ReadmitAfter,
			IdleTimeout:    idle,
		},
		snapshotPath:     path,
		snapshotInterval: every,
	}, nil
}

// initSessions builds the fleet manager over a registry-predict closure —
// the closure resolves the live model version per batch, so hot-swaps apply
// to session predictions transparently — and restores the fleet from the
// configured snapshot when one exists on disk.
func (s *service) initSessions(sess *sessionSettings) error {
	sess.cfg.Metrics = apds.NewSessionMetrics(s.metrics.reg)
	model := sess.model
	predict := func(ctx context.Context, rows []apds.Vector) ([]apds.GaussianVec, error) {
		gs, _, err := s.reg.PredictBatch(ctx, model, "sessions", rows)
		return gs, err
	}
	mgr, err := apds.NewSessionManager(sess.cfg, predict)
	if err != nil {
		return err
	}
	if sess.snapshotPath != "" {
		f, err := os.Open(sess.snapshotPath)
		switch {
		case errors.Is(err, os.ErrNotExist):
			// First boot: nothing to restore.
		case err != nil:
			return fmt.Errorf("open session snapshot: %w", err)
		default:
			info, rerr := mgr.Restore(f)
			f.Close()
			if rerr != nil {
				// A bad snapshot must not keep the fleet down. Restore may
				// leave a partial prefix behind, so discard the manager and
				// start empty instead of serving half a fleet.
				log.Printf("session snapshot %s rejected, starting empty: %v", sess.snapshotPath, rerr)
				if mgr, err = apds.NewSessionManager(sess.cfg, predict); err != nil {
					return err
				}
			} else {
				log.Printf("restored %d sessions (%d bytes) from %s", info.Sessions, info.Bytes, sess.snapshotPath)
			}
		}
	}
	s.sessions = mgr
	s.sessionCfg = sess
	return nil
}

// startSessionLoops launches the background idle-eviction sweep and the
// periodic snapshot writer, both bound to ctx.
func (s *service) startSessionLoops(ctx context.Context) {
	if s.sessions == nil {
		return
	}
	if s.sessionCfg.cfg.IdleTimeout > 0 {
		go s.sessions.Run(ctx, 0) // 0 = the manager's own wheel tick
	}
	if s.sessionCfg.snapshotInterval > 0 && s.sessionCfg.snapshotPath != "" {
		go func() {
			t := time.NewTicker(s.sessionCfg.snapshotInterval)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if err := s.snapshotSessions(); err != nil {
						log.Printf("session snapshot: %v", err)
					}
				}
			}
		}()
	}
}

// snapshotSessions writes the fleet snapshot atomically (temp file +
// rename), retrying the documented mid-pass shrink race (a concurrent evict
// between the count pass and the write pass).
func (s *service) snapshotSessions() error {
	if s.sessions == nil || s.sessionCfg.snapshotPath == "" {
		return nil
	}
	path := s.sessionCfg.snapshotPath
	tmp := path + ".tmp"
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		f, err := os.Create(tmp)
		if err != nil {
			return err
		}
		info, err := s.sessions.Snapshot(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			if err := os.Rename(tmp, path); err != nil {
				return err
			}
			log.Printf("session snapshot: %d sessions, %d bytes -> %s", info.Sessions, info.Bytes, path)
			return nil
		}
		lastErr = err
		if !errors.Is(err, apds.ErrSessionSnapshot) {
			break
		}
	}
	os.Remove(tmp)
	return lastErr
}

// closeSessions runs the shutdown sequence: a final snapshot (handlers have
// already drained, so the fleet is quiescent) and then manager close.
func (s *service) closeSessions(ctx context.Context) error {
	if s.sessions == nil {
		return nil
	}
	err := s.snapshotSessions()
	if cerr := s.sessions.Close(ctx); err == nil {
		err = cerr
	}
	return err
}

// maxIngestBytes bounds one ingest body: a single multi-channel sample is a
// few hundred bytes; 64 KiB leaves room for very wide sensors.
const maxIngestBytes = 1 << 16

type ingestRequest struct {
	Sample []float64 `json:"sample"`
}

// ingestResponse is one sample's verdict. The gate fields are meaningful
// only when Window is true (the sample completed a window and the model
// ran); otherwise the sample just advanced the ring.
type ingestResponse struct {
	Window     bool      `json:"window"`
	Mean       []float64 `json:"mean,omitempty"`
	Std        []float64 `json:"std,omitempty"`
	MeanStd    float64   `json:"mean_std,omitempty"`
	Z          float64   `json:"z,omitempty"`
	Score      float64   `json:"score,omitempty"`
	Decision   string    `json:"decision,omitempty"`
	Degenerate bool      `json:"degenerate,omitempty"`
}

// handleSessionIngest serves POST /v1/sessions/{id}/ingest.
func (s *service) handleSessionIngest(w http.ResponseWriter, r *http.Request) {
	var req ingestRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxIngestBytes))
	if err := dec.Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}
	if req.Sample == nil {
		http.Error(w, `bad request: missing "sample"`, http.StatusBadRequest)
		return
	}
	for _, v := range req.Sample {
		if !finite(v) {
			http.Error(w, "bad request: non-finite value in sample", http.StatusBadRequest)
			return
		}
	}
	v, err := s.sessions.Ingest(r.Context(), r.PathValue("id"), req.Sample)
	if err != nil {
		sessionError(w, err)
		return
	}
	resp := ingestResponse{Window: v.Window}
	if v.Window {
		resp.Mean, resp.Std = v.Pred.Mean, stds(v.Pred)
		resp.MeanStd, resp.Z, resp.Score = v.MeanStd, v.Z, v.Score
		resp.Decision = v.Decision.String()
		resp.Degenerate = v.Degenerate
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		log.Printf("encode ingest: %v", err)
	}
}

// sessionError maps fleet failures to HTTP semantics: a malformed device ID
// or sample is the client's fault (400), a session evicted mid-prediction
// is a retryable conflict (409 — re-ingesting recreates it), a closing
// manager is the service going away (503), and everything else falls
// through to the predict mapping (queue overload, model errors).
func sessionError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, apds.ErrSessionConfig):
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
	case errors.Is(err, apds.ErrSessionEvicted):
		http.Error(w, err.Error(), http.StatusConflict)
	case errors.Is(err, apds.ErrSessionClosed):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		predictError(w, err)
	}
}

// handleSessionEvict serves DELETE /v1/sessions/{id}.
func (s *service) handleSessionEvict(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.sessions.Evict(id) {
		http.Error(w, "unknown session", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(map[string]any{"evicted": id}); err != nil {
		log.Printf("encode evict: %v", err)
	}
}

// handleSessions serves GET /v1/sessions: fleet-wide counters.
func (s *service) handleSessions(w http.ResponseWriter, _ *http.Request) {
	st := s.sessions.Stats()
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(map[string]any{
		"model": s.sessionCfg.model,
		"stats": st,
	}); err != nil {
		log.Printf("encode sessions: %v", err)
	}
}
