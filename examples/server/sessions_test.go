package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	apds "github.com/apdeepsense/apdeepsense"
)

// sessionTestSettings shapes the fleet to the 2-input test network: one
// 2-channel sample per window, so every ingest completes a window.
func sessionTestSettings(snapshotPath string) *sessionSettings {
	return &sessionSettings{
		model: defaultModel,
		cfg: apds.SessionConfig{
			Channels: 2, Length: 1, Stride: 1,
			Standardize:   true,
			WarmupWindows: 2,
			Shards:        16,
		},
		snapshotPath: snapshotPath,
	}
}

// sessionTestService is testService plus an initialized session fleet.
func sessionTestService(t *testing.T, sess *sessionSettings) *service {
	t.Helper()
	svc := testService(t)
	if err := svc.initSessions(sess); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := svc.sessions.Close(ctx); err != nil {
			t.Errorf("session close: %v", err)
		}
	})
	return svc
}

func ingestBody(sample ...float64) string {
	b, _ := json.Marshal(map[string]any{"sample": sample})
	return string(b)
}

func TestSessionIngestEndpoint(t *testing.T) {
	svc := sessionTestService(t, sessionTestSettings(""))
	mux := svc.mux()

	rec := do(t, mux, http.MethodPost, "/v1/sessions/dev1/ingest", ingestBody(0.5, -1))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp ingestResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Window {
		t.Fatalf("1-sample windows must complete on every ingest: %+v", resp)
	}
	if len(resp.Mean) != 1 || len(resp.Std) != 1 || resp.Decision != "accept" {
		t.Fatalf("unexpected verdict: %s", rec.Body)
	}

	// The verdict must carry the same prediction /predict returns for the
	// standardized window. With a single observation the standardizer maps
	// the window to the zero vector (the running mean IS the window), so
	// the equivalent direct predict input is [0, 0].
	pRec := do(t, mux, http.MethodPost, "/v1/models/default/predict", `{"input":[0,0]}`)
	if pRec.Code != http.StatusOK {
		t.Fatalf("predict status %d", pRec.Code)
	}
	var pResp predictResponse
	if err := json.Unmarshal(pRec.Body.Bytes(), &pResp); err != nil {
		t.Fatal(err)
	}
	if pResp.Mean[0] != resp.Mean[0] || pResp.Std[0] != resp.Std[0] {
		t.Fatalf("session prediction %v/%v != predict endpoint %v/%v",
			resp.Mean, resp.Std, pResp.Mean, pResp.Std)
	}

	// Client-side rejections.
	for name, body := range map[string]string{
		"malformed":   `{not json`,
		"missing":     `{}`,
		"wrong width": ingestBody(1, 2, 3),
	} {
		rec := do(t, mux, http.MethodPost, "/v1/sessions/dev1/ingest", body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, rec.Code)
		}
	}
	rec = do(t, mux, http.MethodPost, "/v1/sessions/dev1/ingest", `{"sample":[1,"NaN"]}`)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("non-numeric sample value: status %d, want 400", rec.Code)
	}
}

func TestSessionEvictAndStatsEndpoints(t *testing.T) {
	svc := sessionTestService(t, sessionTestSettings(""))
	mux := svc.mux()

	for i := 0; i < 3; i++ {
		rec := do(t, mux, http.MethodPost, fmt.Sprintf("/v1/sessions/dev%d/ingest", i), ingestBody(0.1, 0.2))
		if rec.Code != http.StatusOK {
			t.Fatalf("ingest dev%d: %d", i, rec.Code)
		}
	}

	rec := do(t, mux, http.MethodGet, "/v1/sessions", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("stats status %d", rec.Code)
	}
	var stats struct {
		Model string            `json:"model"`
		Stats apds.SessionStats `json:"stats"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Model != defaultModel || stats.Stats.Resident != 3 || stats.Stats.Ingested != 3 {
		t.Fatalf("unexpected stats: %s", rec.Body)
	}

	if rec := do(t, mux, http.MethodDelete, "/v1/sessions/dev1", ""); rec.Code != http.StatusOK {
		t.Fatalf("evict status %d: %s", rec.Code, rec.Body)
	}
	if rec := do(t, mux, http.MethodDelete, "/v1/sessions/dev1", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("double evict status %d, want 404", rec.Code)
	}
	if svc.sessions.Resident() != 2 {
		t.Fatalf("resident %d after evict, want 2", svc.sessions.Resident())
	}
}

// TestSessionRestartContinuity is the server-level acceptance test: drive a
// fleet through the HTTP handlers, snapshot to disk, boot a second service
// over the same snapshot path, and require the continuation verdicts —
// compared as raw response bodies, so float bits included — to be identical
// between the server that never restarted and the one that did.
func TestSessionRestartContinuity(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "fleet.apsf")
	svc1 := sessionTestService(t, sessionTestSettings(snap))
	mux1 := svc1.mux()

	// Device IDs stay slash-free: {id} is one ServeMux path segment (IDs
	// containing '/' must be percent-encoded by clients).
	devs := []string{"fleet-a.dev0", "fleet-a.dev1", "fleet-b.dev0"}
	drive := func(mux http.Handler, round int) []string {
		var bodies []string
		for i := 0; i < 10; i++ {
			for d, dev := range devs {
				x := float64(round*10+i)*0.3 + float64(d)
				rec := do(t, mux.(*http.ServeMux), http.MethodPost, "/v1/sessions/"+dev+"/ingest",
					ingestBody(x, -x/2))
				if rec.Code != http.StatusOK {
					t.Fatalf("ingest %s: %d (%s)", dev, rec.Code, rec.Body)
				}
				bodies = append(bodies, rec.Body.String())
			}
		}
		return bodies
	}
	drive(mux1, 0)

	if err := svc1.snapshotSessions(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(snap); err != nil || fi.Size() == 0 {
		t.Fatalf("snapshot file: %v (size %v)", err, fi)
	}

	// "Restart": a second service (same model seed, same settings) restores
	// the fleet from disk in initSessions.
	svc2 := sessionTestService(t, sessionTestSettings(snap))
	if svc2.sessions.Resident() != len(devs) {
		t.Fatalf("restored resident = %d, want %d", svc2.sessions.Resident(), len(devs))
	}
	mux2 := svc2.mux()

	v1 := drive(mux1, 1)
	v2 := drive(mux2, 1)
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("verdict %d diverged across restart:\n orig %s\n rest %s", i, v1[i], v2[i])
		}
	}
}

// TestSessionBadSnapshotStartsEmpty: a corrupt snapshot on disk must not
// keep the server from booting — the fleet starts empty instead.
func TestSessionBadSnapshotStartsEmpty(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "fleet.apsf")
	if err := os.WriteFile(snap, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	svc := sessionTestService(t, sessionTestSettings(snap))
	if svc.sessions.Resident() != 0 {
		t.Fatalf("resident = %d, want 0", svc.sessions.Resident())
	}
	// The fleet still works.
	rec := do(t, svc.mux(), http.MethodPost, "/v1/sessions/dev/ingest", ingestBody(1, 2))
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest after bad snapshot: %d", rec.Code)
	}
}

// TestSessionRoutesAbsentWithoutFleet: a service without a configured fleet
// must not expose the session endpoints.
func TestSessionRoutesAbsentWithoutFleet(t *testing.T) {
	svc := testService(t)
	rec := do(t, svc.mux(), http.MethodPost, "/v1/sessions/dev/ingest", ingestBody(1, 2))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status %d, want 404", rec.Code)
	}
}

// TestSessionManifestSettings: the manifest "sessions" block configures the
// fleet end to end through newService.
func TestSessionManifestSettings(t *testing.T) {
	dir := t.TempDir()
	if err := testNetwork(t, 3).SaveFile(filepath.Join(dir, "a.model")); err != nil {
		t.Fatal(err)
	}
	manPath := filepath.Join(dir, "registry.json")
	writeTestManifest(t, manPath, apds.ModelManifest{
		Models: []apds.ModelManifestModel{{
			Name:     "demo",
			Versions: []apds.ModelManifestVersion{{ID: "v1", Path: "a.model"}},
			Current:  "v1",
		}},
		Sessions: &apds.ModelManifestSessions{
			Model: "demo", Channels: 2, Length: 1, Stride: 1,
			Standardize: true, WarmupWindows: 2,
			SnapshotPath: "fleet.apsf", SnapshotInterval: "1h",
		},
	})

	svc, err := newService("", manPath, apds.ServeConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := svc.closeSessions(ctx); err != nil {
			t.Errorf("session close: %v", err)
		}
		if err := svc.close(ctx); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	if svc.sessions == nil {
		t.Fatal("manifest sessions block did not build a fleet")
	}
	if got := svc.sessionCfg.snapshotPath; got != filepath.Join(dir, "fleet.apsf") {
		t.Fatalf("snapshot path %q not resolved against manifest dir", got)
	}
	if svc.sessionCfg.snapshotInterval != time.Hour {
		t.Fatalf("snapshot interval %v", svc.sessionCfg.snapshotInterval)
	}
	rec := do(t, svc.mux(), http.MethodPost, "/v1/sessions/dev/ingest", ingestBody(0.5, -1))
	if rec.Code != http.StatusOK {
		t.Fatalf("manifest-configured ingest: %d (%s)", rec.Code, rec.Body)
	}
	// closeSessions (cleanup) writes the shutdown snapshot; prove the write
	// path works under the manifest-resolved path.
	if err := svc.snapshotSessions(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fleet.apsf")); err != nil {
		t.Fatal(err)
	}
}
