package main

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
)

// decodeFuzzSeeds is the seeded corpus: the interesting shapes of /predict
// payloads — valid single and batch forms, truncated JSON, NaN/Inf tokens
// (legal nowhere in standard JSON), huge exponents that overflow float64,
// mixed single/batch requests, trailing garbage, and deep nesting. Regular
// `go test` runs every seed through the fuzz body, so the corpus doubles as
// a table-driven regression test; `go test -fuzz FuzzDecodePredict` expands
// from it.
var decodeFuzzSeeds = []string{
	`{"input":[0.5,-1]}`,
	`{"inputs":[[0.5,-1],[2,0.25]]}`,
	`{"input":[]}`,
	`{"inputs":[]}`,
	`{"inputs":[[]]}`,
	``,
	`null`,
	`{}`,
	`{"input":`,
	`{"input":[1,`,
	`{"input":[1,2]`,
	`{"input":[NaN]}`,
	`{"input":[Infinity]}`,
	`{"input":[-Infinity]}`,
	`{"input":[nan,inf]}`,
	`{"input":[1e999]}`,
	`{"input":[-1e999]}`,
	`{"inputs":[[1e999]]}`,
	`{"input":[1,2],"inputs":[[3,4]]}`,
	`{"inputs":[[1,2]],"input":[3]}`,
	`{"input":[1,2]} trailing`,
	`{"input":[1,2]}{"input":[3,4]}`,
	`{"input":"not an array"}`,
	`{"input":{"a":1}}`,
	`{"input":[true]}`,
	`{"input":[[1]]}`,
	`{"inputs":[1,2]}`,
	`{"inputs":"x"}`,
	`[1,2,3]`,
	`"just a string"`,
	`{"input":[1], "unknown":{"deep":{"deeper":[{}]}}}`,
	strings.Repeat(`{"input":`, 50),
	`{"INPUT":[1]}`,
	`{"input":[0.1,2e-308,1.7976931348623157e308]}`,
}

// FuzzDecodePredict is the decoder's safety contract: for ANY byte input,
// decodePredict must never panic, and must either return a request that
// satisfies the documented invariants (exactly one of input/inputs set, all
// values finite) or an error wrapping errBadRequest.
func FuzzDecodePredict(f *testing.F) {
	for _, seed := range decodeFuzzSeeds {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := decodePredict(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, errBadRequest) {
				t.Fatalf("untyped decode error %v (input %q)", err, data)
			}
			return
		}
		hasOne, hasBatch := req.Input != nil, req.Inputs != nil
		if hasOne == hasBatch {
			t.Fatalf("accepted request violates one-of invariant: %+v (input %q)", req, data)
		}
		for _, v := range req.Input {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("accepted non-finite value %v (input %q)", v, data)
			}
		}
		for _, row := range req.Inputs {
			for _, v := range row {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("accepted non-finite value %v (input %q)", v, data)
				}
			}
		}
	})
}
