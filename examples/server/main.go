// Server example: an HTTP inference microservice exposing uncertainty-aware
// predictions, the shape of an IoT-gateway deployment. It trains a small
// model at startup (for a self-contained demo; production would load one
// with -model), then serves:
//
//	POST /predict        {"input": [..]}        → {"mean": [...], "std": [...], ...}
//	POST /predict        {"inputs": [[..],..]}  → {"results": [{"mean":..}, ...], ...}
//	GET  /healthz                               → model summary + modeled device cost
//	GET  /metrics                               → Prometheus text exposition
//	GET  /debug/pprof/                          → runtime profiling endpoints
//
// Both /predict forms feed ONE flush pipeline: a request coalescer
// (internal/serve) enqueues every row and flushes the queue as a single
// matrix-level PropagateBatch pass when it reaches -max-batch rows, when the
// oldest row has waited -max-wait, or immediately when a flush worker is
// idle. Single-row requests arriving concurrently therefore share a batched
// pass — same results bit-for-bit, far higher throughput — and a full queue
// rejects with 429 instead of buffering unboundedly. SIGINT/SIGTERM drains
// the queue before exiting, so accepted requests still get answers.
//
// Every route is wrapped by the observability middleware (examples/server
// obs.go): request IDs, per-route latency/status metrics, per-request trace
// spans, and one structured JSON access-log line per request. The
// propagator's hooks feed per-layer timing and scratch-pool metrics into
// the same /metrics registry.
//
// Run with:
//
//	go run ./examples/server            # listens on :8080
//	curl -s localhost:8080/predict -d '{"input":[0.3]}'
//	curl -s localhost:8080/predict -d '{"inputs":[[0.3],[-1.2]]}'
//	curl -s localhost:8080/metrics
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"math"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	apds "github.com/apdeepsense/apdeepsense"
)

// service bundles the estimator with the metadata handlers report and the
// observability state (metrics registry, structured logger). All prediction
// traffic flows through coal, the shared request coalescer.
type service struct {
	est     apds.Estimator
	coal    *apds.PredictCoalescer
	net     *apds.Network
	device  *apds.Device
	metrics *serverMetrics
	logger  *slog.Logger
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	modelPath := flag.String("model", "", "serialized model to serve (trains a demo model if empty)")
	maxBatch := flag.Int("max-batch", 64, "coalescer: max rows per flush")
	maxWait := flag.Duration("max-wait", 2*time.Millisecond, "coalescer: latency budget of the oldest queued row")
	queueDepth := flag.Int("queue-depth", 0, "coalescer: queued-row bound before 429s (0 = 4x max-batch)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "shutdown: bound on connection + queue drain")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("apds-server: ")

	svc, err := newService(*modelPath, apds.ServeConfig{
		MaxBatch:   *maxBatch,
		MaxWait:    *maxWait,
		QueueDepth: *queueDepth,
	})
	if err != nil {
		log.Fatal(err)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.mux(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("serving %s on %s (max-batch %d, max-wait %v)",
		svc.net.Summary(), *addr, *maxBatch, *maxWait)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of re-draining

	// Graceful drain: stop accepting connections, let in-flight handlers
	// finish, then drain the coalescer queue so every accepted request is
	// answered before the process exits.
	log.Print("shutdown signal: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := svc.close(drainCtx); err != nil {
		log.Printf("coalescer drain: %v", err)
	}
	log.Print("drained")
}

func newService(modelPath string, serveCfg apds.ServeConfig) (*service, error) {
	var net *apds.Network
	var err error
	if modelPath != "" {
		net, err = apds.LoadModel(modelPath)
		if err != nil {
			return nil, err
		}
	} else {
		net, err = trainDemoModel()
		if err != nil {
			return nil, err
		}
	}
	est, err := apds.New(net, apds.Options{})
	if err != nil {
		return nil, err
	}
	m := newServerMetrics()
	m.params.Set(float64(net.Params()))
	// The propagator reports per-layer wall time, batch sizes, and scratch
	// reuse straight into the /metrics registry; the coalescer adds its
	// batch-size/queue-wait histograms and flush-reason counters alongside.
	est.Propagator().SetHooks(m.hooks())
	serveCfg.Metrics = apds.NewServeMetrics(m.reg)
	coal, err := apds.NewPredictCoalescer(est, serveCfg)
	if err != nil {
		return nil, err
	}
	return &service{
		est:     est,
		coal:    coal,
		net:     net,
		device:  apds.NewEdison(),
		metrics: m,
		logger:  slog.New(slog.NewJSONHandler(os.Stderr, nil)),
	}, nil
}

// close drains the coalescer: intake stops, queued requests flush, and the
// call returns when the pipeline is empty (or ctx expires).
func (s *service) close(ctx context.Context) error { return s.coal.Close(ctx) }

// mux assembles the route table with every route instrumented. The pprof
// endpoints come from net/http/pprof, wired explicitly because the server
// uses its own mux rather than http.DefaultServeMux.
func (s *service) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", s.instrument("/predict", s.handlePredict))
	mux.HandleFunc("/healthz", s.instrument("/healthz", s.handleHealth))
	mux.HandleFunc("/metrics", s.instrument("/metrics", s.handleMetrics))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// trainDemoModel fits y = sin(3x) with a dropout network.
func trainDemoModel() (*apds.Network, error) {
	rng := rand.New(rand.NewSource(1))
	var samples []apds.TrainSample
	for i := 0; i < 800; i++ {
		x := rng.Float64()*4 - 2
		samples = append(samples, apds.TrainSample{
			X: apds.Vector{x},
			Y: apds.Vector{math.Sin(3*x) + 0.1*rng.NormFloat64()},
		})
	}
	net, err := apds.NewNetwork(apds.NetworkConfig{
		InputDim: 1, Hidden: []int{48, 48}, OutputDim: 1,
		Activation: apds.ActReLU, OutputActivation: apds.ActIdentity,
		KeepProb: 0.9, Seed: 2,
	})
	if err != nil {
		return nil, err
	}
	_, err = apds.Fit(net, samples, nil, apds.TrainConfig{
		Epochs: 25, BatchSize: 32, Seed: 1,
		Loss: apds.MSELoss(), Optimizer: apds.NewAdam(0.005),
	})
	return net, err
}

// maxRequestBytes bounds /predict request bodies: an unauthenticated gateway
// endpoint must not buffer arbitrarily large payloads. 1 MiB fits a batch of
// thousands of typical sensor windows.
const maxRequestBytes = 1 << 20

type predictRequest struct {
	Input  []float64   `json:"input"`
	Inputs [][]float64 `json:"inputs"`
}

type sampleResult struct {
	Mean []float64 `json:"mean"`
	Std  []float64 `json:"std"`
}

type predictResponse struct {
	Mean []float64 `json:"mean,omitempty"`
	Std  []float64 `json:"std,omitempty"`
	// Results holds per-sample outputs for batch ("inputs") requests.
	Results []sampleResult `json:"results,omitempty"`
	// ModeledEdisonMs is the device model's per-inference latency estimate.
	ModeledEdisonMs float64 `json:"modeled_edison_ms"`
	// HostMicros is the actual service-side inference time.
	HostMicros int64 `json:"host_micros"`
}

// errBadRequest is the typed error class for every client-side /predict
// failure: decodePredict (and the handler's dimension checks) wrap all
// rejections in it, so callers — and the fuzz harness — can distinguish
// "bad payload" from an internal fault with errors.Is.
var errBadRequest = errors.New("bad request")

// decodePredict parses a /predict body that has already been wrapped with
// MaxBytesReader. It rejects payloads with trailing garbage after the JSON
// object, bodies over the size limit, non-finite values, and requests that
// set both or neither of "input" and "inputs". Every rejection wraps
// errBadRequest; decodePredict never panics on any input
// (FuzzDecodePredict).
func decodePredict(body io.Reader) (predictRequest, error) {
	var req predictRequest
	dec := json.NewDecoder(body)
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return req, fmt.Errorf("request body exceeds %d bytes: %w", tooLarge.Limit, errBadRequest)
		}
		return req, fmt.Errorf("malformed JSON: %v: %w", err, errBadRequest)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return req, fmt.Errorf("trailing data after JSON object: %w", errBadRequest)
	}
	hasOne, hasBatch := req.Input != nil, req.Inputs != nil
	switch {
	case hasOne && hasBatch:
		return req, fmt.Errorf(`set either "input" or "inputs", not both: %w`, errBadRequest)
	case !hasOne && !hasBatch:
		return req, fmt.Errorf(`missing "input" or "inputs": %w`, errBadRequest)
	}
	// Standard JSON cannot encode NaN/Inf, but the finiteness contract is
	// part of this decoder's interface, not an accident of the wire format.
	for _, v := range req.Input {
		if !finite(v) {
			return req, fmt.Errorf("non-finite value in input: %w", errBadRequest)
		}
	}
	for i, row := range req.Inputs {
		for _, v := range row {
			if !finite(v) {
				return req, fmt.Errorf("non-finite value in inputs[%d]: %w", i, errBadRequest)
			}
		}
	}
	return req, nil
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func (s *service) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	tr := traceFrom(r.Context())

	span := tr.StartSpan("decode")
	req, err := decodePredict(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	span.End()
	if err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}

	resp := predictResponse{ModeledEdisonMs: s.device.TimeMillis(s.est.Cost())}
	span = tr.StartSpan("predict")
	start := time.Now()
	if req.Input != nil {
		if len(req.Input) != s.net.InputDim() {
			span.End()
			http.Error(w, fmt.Sprintf("input has %d values, model expects %d: %v",
				len(req.Input), s.net.InputDim(), errBadRequest), http.StatusBadRequest)
			return
		}
		// The coalescer merges this row with concurrently arriving requests
		// into one batched propagation pass; the result is bit-identical to
		// s.est.Predict(req.Input).
		g, err := s.coal.Do(r.Context(), req.Input)
		if err != nil {
			span.End()
			http.Error(w, err.Error(), predictStatus(err))
			return
		}
		resp.Mean, resp.Std = g.Mean, stds(g)
	} else {
		inputs := make([]apds.Vector, len(req.Inputs))
		for i, x := range req.Inputs {
			if len(x) != s.net.InputDim() {
				span.End()
				http.Error(w, fmt.Sprintf("inputs[%d] has %d values, model expects %d: %v",
					i, len(x), s.net.InputDim(), errBadRequest), http.StatusBadRequest)
				return
			}
			inputs[i] = x
		}
		// Batch requests share the same flush pipeline: rows enter the queue
		// together (admitted all-or-nothing) and may merge with other
		// requests' rows into the same matrix-level pass.
		gs, err := s.coal.DoBatch(r.Context(), inputs)
		if err != nil {
			span.End()
			http.Error(w, err.Error(), predictStatus(err))
			return
		}
		resp.Results = make([]sampleResult, len(gs))
		for i, g := range gs {
			resp.Results[i] = sampleResult{Mean: g.Mean, Std: stds(g)}
		}
	}
	resp.HostMicros = time.Since(start).Microseconds()
	span.End()

	span = tr.StartSpan("encode")
	defer span.End()
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		log.Printf("encode response: %v", err)
	}
}

// predictStatus maps coalescer failures to HTTP semantics: a full queue is
// overload (429, retryable after backoff), a closed coalescer or abandoned
// request context is the service going away mid-request (503), anything else
// is an internal fault (500).
func predictStatus(err error) int {
	switch {
	case errors.Is(err, apds.ErrServeQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, apds.ErrServeClosed),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// stds extracts per-dimension standard deviations.
func stds(g apds.GaussianVec) []float64 {
	out := make([]float64, g.Dim())
	for i := range out {
		out[i] = g.Std(i)
	}
	return out
}

func (s *service) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	err := json.NewEncoder(w).Encode(map[string]any{
		"model":             s.net.Summary(),
		"estimator":         s.est.Name(),
		"params":            s.net.Params(),
		"modeled_edison_ms": s.device.TimeMillis(s.est.Cost()),
	})
	if err != nil {
		log.Printf("encode health: %v", err)
	}
}
