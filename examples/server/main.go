// Server example: an HTTP inference microservice exposing uncertainty-aware
// predictions, the shape of an IoT-gateway deployment. It trains a small
// model at startup (for a self-contained demo; production would load one
// with -model), then serves:
//
//	POST /predict   {"input": [..]}        → {"mean": [...], "std": [...], ...}
//	POST /predict   {"inputs": [[..],..]}  → {"results": [{"mean":..}, ...], ...}
//	GET  /healthz                          → model summary + modeled device cost
//
// Batch requests go through the matrix-level PropagateBatch fast path: the
// whole batch moves through each layer together, so a gateway flushing a
// window of sensor readings pays far less than per-sample calls.
//
// Run with:
//
//	go run ./examples/server            # listens on :8080
//	curl -s localhost:8080/predict -d '{"input":[0.3]}'
//	curl -s localhost:8080/predict -d '{"inputs":[[0.3],[-1.2]]}'
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net/http"
	"time"

	apds "github.com/apdeepsense/apdeepsense"
)

// service bundles the estimator with the metadata handlers report.
type service struct {
	est    apds.Estimator
	net    *apds.Network
	device *apds.Device
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	modelPath := flag.String("model", "", "serialized model to serve (trains a demo model if empty)")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("apds-server: ")

	svc, err := newService(*modelPath)
	if err != nil {
		log.Fatal(err)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/predict", svc.handlePredict)
	mux.HandleFunc("/healthz", svc.handleHealth)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("serving %s on %s", svc.net.Summary(), *addr)
	log.Fatal(srv.ListenAndServe())
}

func newService(modelPath string) (*service, error) {
	var net *apds.Network
	var err error
	if modelPath != "" {
		net, err = apds.LoadModel(modelPath)
		if err != nil {
			return nil, err
		}
	} else {
		net, err = trainDemoModel()
		if err != nil {
			return nil, err
		}
	}
	est, err := apds.New(net, apds.Options{})
	if err != nil {
		return nil, err
	}
	return &service{est: est, net: net, device: apds.NewEdison()}, nil
}

// trainDemoModel fits y = sin(3x) with a dropout network.
func trainDemoModel() (*apds.Network, error) {
	rng := rand.New(rand.NewSource(1))
	var samples []apds.TrainSample
	for i := 0; i < 800; i++ {
		x := rng.Float64()*4 - 2
		samples = append(samples, apds.TrainSample{
			X: apds.Vector{x},
			Y: apds.Vector{math.Sin(3*x) + 0.1*rng.NormFloat64()},
		})
	}
	net, err := apds.NewNetwork(apds.NetworkConfig{
		InputDim: 1, Hidden: []int{48, 48}, OutputDim: 1,
		Activation: apds.ActReLU, OutputActivation: apds.ActIdentity,
		KeepProb: 0.9, Seed: 2,
	})
	if err != nil {
		return nil, err
	}
	_, err = apds.Fit(net, samples, nil, apds.TrainConfig{
		Epochs: 25, BatchSize: 32, Seed: 1,
		Loss: apds.MSELoss(), Optimizer: apds.NewAdam(0.005),
	})
	return net, err
}

// maxRequestBytes bounds /predict request bodies: an unauthenticated gateway
// endpoint must not buffer arbitrarily large payloads. 1 MiB fits a batch of
// thousands of typical sensor windows.
const maxRequestBytes = 1 << 20

type predictRequest struct {
	Input  []float64   `json:"input"`
	Inputs [][]float64 `json:"inputs"`
}

type sampleResult struct {
	Mean []float64 `json:"mean"`
	Std  []float64 `json:"std"`
}

type predictResponse struct {
	Mean []float64 `json:"mean,omitempty"`
	Std  []float64 `json:"std,omitempty"`
	// Results holds per-sample outputs for batch ("inputs") requests.
	Results []sampleResult `json:"results,omitempty"`
	// ModeledEdisonMs is the device model's per-inference latency estimate.
	ModeledEdisonMs float64 `json:"modeled_edison_ms"`
	// HostMicros is the actual service-side inference time.
	HostMicros int64 `json:"host_micros"`
}

// decodePredict parses a /predict body that has already been wrapped with
// MaxBytesReader. It rejects payloads with trailing garbage after the JSON
// object, bodies over the size limit, and requests that set both or neither
// of "input" and "inputs".
func decodePredict(body io.Reader) (predictRequest, error) {
	var req predictRequest
	dec := json.NewDecoder(body)
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return req, fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit)
		}
		return req, fmt.Errorf("malformed JSON: %v", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return req, errors.New("trailing data after JSON object")
	}
	hasOne, hasBatch := req.Input != nil, req.Inputs != nil
	switch {
	case hasOne && hasBatch:
		return req, errors.New(`set either "input" or "inputs", not both`)
	case !hasOne && !hasBatch:
		return req, errors.New(`missing "input" or "inputs"`)
	}
	return req, nil
}

func (s *service) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	req, err := decodePredict(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}

	resp := predictResponse{ModeledEdisonMs: s.device.TimeMillis(s.est.Cost())}
	start := time.Now()
	if req.Input != nil {
		if len(req.Input) != s.net.InputDim() {
			http.Error(w, fmt.Sprintf("input has %d values, model expects %d",
				len(req.Input), s.net.InputDim()), http.StatusBadRequest)
			return
		}
		g, err := s.est.Predict(req.Input)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		resp.Mean, resp.Std = g.Mean, stds(g)
	} else {
		inputs := make([]apds.Vector, len(req.Inputs))
		for i, x := range req.Inputs {
			if len(x) != s.net.InputDim() {
				http.Error(w, fmt.Sprintf("inputs[%d] has %d values, model expects %d",
					i, len(x), s.net.InputDim()), http.StatusBadRequest)
				return
			}
			inputs[i] = x
		}
		// PredictBatch takes the matrix-level fast path for ApDeepSense
		// estimators: the whole batch crosses each layer together.
		gs, err := apds.PredictBatch(s.est, inputs, 0)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		resp.Results = make([]sampleResult, len(gs))
		for i, g := range gs {
			resp.Results[i] = sampleResult{Mean: g.Mean, Std: stds(g)}
		}
	}
	resp.HostMicros = time.Since(start).Microseconds()

	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		log.Printf("encode response: %v", err)
	}
}

// stds extracts per-dimension standard deviations.
func stds(g apds.GaussianVec) []float64 {
	out := make([]float64, g.Dim())
	for i := range out {
		out[i] = g.Std(i)
	}
	return out
}

func (s *service) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	err := json.NewEncoder(w).Encode(map[string]any{
		"model":             s.net.Summary(),
		"estimator":         s.est.Name(),
		"params":            s.net.Params(),
		"modeled_edison_ms": s.device.TimeMillis(s.est.Cost()),
	})
	if err != nil {
		log.Printf("encode health: %v", err)
	}
}
