// Server example: an HTTP inference microservice exposing uncertainty-aware
// predictions, the shape of an IoT-gateway deployment. All serving flows
// through a model registry (internal/registry): every model version gets its
// own propagator and request-coalescer pool, versions hot-swap atomically
// (in-flight requests finish on the version that admitted them; old versions
// drain in the background), and traffic policy per model supports a weighted
// canary split and shadow comparison against a candidate version.
//
//	POST /predict                        legacy single-model endpoint → model "default"
//	POST /v1/models/{name}/predict       {"input": [..]} or {"inputs": [[..],..]}
//	GET  /v1/models                      registered models, routes, fingerprints
//	POST /v1/models/{name}/reload        admin: force a manifest reload
//	POST /v1/sessions/{id}/ingest        resident session fleet: ingest one sample (sessions.go)
//	DELETE /v1/sessions/{id}             evict a device's session
//	GET  /v1/sessions                    fleet stats
//	GET  /livez                          process liveness (always 200)
//	GET  /readyz                         200 once a model has a routable version
//	GET  /healthz                        alias for /readyz (fingerprint as ETag)
//	GET  /metrics                        Prometheus text exposition
//	GET  /debug/pprof/                   runtime profiling endpoints
//
// The model set comes from one of three sources: -manifest points at a
// registry.json describing models, version files, and routes (polled for
// changes every -watch-interval, so edits hot-reload without restarts);
// -model serves one serialized network as model "default"; with neither, a
// small demo model is trained at startup.
//
// Both /predict forms feed the admitted version's flush pipeline: a request
// coalescer (internal/serve) enqueues every row and flushes the queue as a
// single matrix-level PropagateBatch pass. Responses are tagged with the
// model, version, fingerprint, and route that served them — and are
// bit-identical to a direct Predict on that version. A full queue rejects
// with 429 instead of buffering unboundedly. SIGINT/SIGTERM drains every
// pool before exiting, so accepted requests still get answers.
//
// Every route is wrapped by the observability middleware (examples/server
// obs.go): request IDs, per-route latency/status metrics, per-request trace
// spans, and one structured JSON access-log line per request. The registry
// adds swap/reload/shadow-drift metrics on the same /metrics page.
//
// Run with:
//
//	go run ./examples/server            # listens on :8080
//	curl -s localhost:8080/predict -d '{"input":[0.3]}'
//	curl -s localhost:8080/v1/models
//	curl -s localhost:8080/v1/models/default/predict -d '{"inputs":[[0.3],[-1.2]]}'
//	curl -s localhost:8080/metrics
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"math"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"syscall"
	"time"

	apds "github.com/apdeepsense/apdeepsense"
)

// defaultModel is the registry name the legacy /predict endpoint and the
// -model / demo startup modes use.
const defaultModel = "default"

// service bundles the model registry with the observability state (metrics
// registry, structured logger). All prediction traffic flows through reg,
// which owns one coalescer pool per model version.
type service struct {
	reg     *apds.ModelRegistry
	loader  *apds.ModelManifestLoader // nil unless -manifest is set
	device  *apds.Device
	metrics *serverMetrics
	logger  *slog.Logger
	// sessions is the resident device-session fleet (nil unless configured
	// via the manifest "sessions" block or the -sessions flags; see
	// sessions.go).
	sessions   *apds.SessionManager
	sessionCfg *sessionSettings
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	modelPath := flag.String("model", "", "serialized model to serve as \"default\" (trains a demo model if empty)")
	manifestPath := flag.String("manifest", "", "registry manifest (registry.json) describing models, versions, and routes")
	watchInterval := flag.Duration("watch-interval", 2*time.Second, "manifest poll interval (0 disables hot-reload)")
	maxBatch := flag.Int("max-batch", 64, "coalescer: max rows per flush")
	maxWait := flag.Duration("max-wait", 2*time.Millisecond, "coalescer: latency budget of the oldest queued row")
	queueDepth := flag.Int("queue-depth", 0, "coalescer: queued-row bound before 429s (0 = 4x max-batch)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "shutdown: bound on connection + queue drain")
	sessionsOn := flag.Bool("sessions", false, "enable the resident session fleet in -model/demo modes (manifest mode uses the \"sessions\" block instead)")
	sessionChannels := flag.Int("session-channels", 1, "sessions: channels per sample")
	sessionLength := flag.Int("session-length", 1, "sessions: samples per window")
	sessionStride := flag.Int("session-stride", 1, "sessions: samples between windows")
	sessionStandardize := flag.Bool("session-standardize", true, "sessions: per-session window standardization")
	sessionIdle := flag.Duration("session-idle", 0, "sessions: evict sessions idle this long (0 = never)")
	sessionSnapshot := flag.String("session-snapshot", "", "sessions: fleet snapshot path (restore at startup, write on shutdown)")
	sessionSnapshotEvery := flag.Duration("session-snapshot-interval", 0, "sessions: periodic snapshot interval (0 = only on shutdown)")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("apds-server: ")

	var sess *sessionSettings
	if *sessionsOn {
		sess = &sessionSettings{
			model: defaultModel,
			cfg: apds.SessionConfig{
				Channels: *sessionChannels, Length: *sessionLength, Stride: *sessionStride,
				Standardize: *sessionStandardize,
				IdleTimeout: *sessionIdle,
			},
			snapshotPath:     *sessionSnapshot,
			snapshotInterval: *sessionSnapshotEvery,
		}
	}
	svc, err := newService(*modelPath, *manifestPath, apds.ServeConfig{
		MaxBatch:   *maxBatch,
		MaxWait:    *maxWait,
		QueueDepth: *queueDepth,
	}, sess)
	if err != nil {
		log.Fatal(err)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.mux(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if svc.loader != nil && *watchInterval > 0 {
		go svc.loader.Watch(ctx, *watchInterval, log.Printf)
	}
	svc.startSessionLoops(ctx)

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	for _, st := range svc.reg.Models() {
		log.Printf("serving model %q version %s (%s) on %s", st.Name, st.Current, st.Summary, *addr)
	}

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of re-draining

	// Graceful drain: stop accepting connections, let in-flight handlers
	// finish, then drain every version's coalescer pool so every accepted
	// request is answered before the process exits.
	log.Print("shutdown signal: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	// The fleet snapshots before the registry drains: handlers are done, so
	// the sessions are quiescent, and the final snapshot needs no predictions.
	if err := svc.closeSessions(drainCtx); err != nil {
		log.Printf("session shutdown: %v", err)
	}
	if err := svc.close(drainCtx); err != nil {
		log.Printf("registry drain: %v", err)
	}
	log.Print("drained")
}

// newService assembles the registry-backed stack. sess enables the resident
// session fleet for -model/demo modes; in manifest mode the manifest's
// "sessions" block takes precedence (the fleet's window shape and gate
// policy belong with the model routing they apply to).
func newService(modelPath, manifestPath string, serveCfg apds.ServeConfig, sess *sessionSettings) (*service, error) {
	m := newServerMetrics()
	serveCfg.Metrics = apds.NewServeMetrics(m.reg)
	reg := apds.NewModelRegistry(apds.ModelRegistryConfig{
		Serve:   serveCfg,
		Metrics: apds.NewModelRegistryMetrics(m.reg),
		// Every version's propagator reports per-layer wall time, batch
		// sizes, and scratch reuse straight into the /metrics registry.
		Hooks: m.hooks(),
	})
	svc := &service{
		reg:     reg,
		device:  apds.NewEdison(),
		metrics: m,
		logger:  slog.New(slog.NewJSONHandler(os.Stderr, nil)),
	}

	if manifestPath != "" {
		if modelPath != "" {
			return nil, errors.New("set -manifest or -model, not both")
		}
		svc.loader = apds.NewModelManifestLoader(reg, manifestPath)
		if _, err := svc.loader.Reload(true); err != nil {
			return nil, err
		}
		// Session config rides in the manifest. It is read once at startup:
		// the fleet's resident state (window rings, gate moments) is bound to
		// its window shape, so reshaping it hot would invalidate every session.
		man, err := apds.LoadModelManifest(manifestPath)
		if err != nil {
			return nil, err
		}
		if man.Sessions != nil {
			if sess, err = sessionSettingsFromManifest(man.Sessions, filepath.Dir(manifestPath)); err != nil {
				return nil, err
			}
		} else {
			sess = nil
		}
		if sess != nil {
			if err := svc.initSessions(sess); err != nil {
				return nil, err
			}
		}
		return svc, nil
	}

	var net *apds.Network
	var err error
	if modelPath != "" {
		net, err = apds.LoadModel(modelPath)
	} else {
		net, err = trainDemoModel()
	}
	if err != nil {
		return nil, err
	}
	if _, err := reg.AddVersion(defaultModel, "v1", net); err != nil {
		return nil, err
	}
	if err := reg.SetRoutes(defaultModel, "v1", "", 0, ""); err != nil {
		return nil, err
	}
	if sess != nil {
		if err := svc.initSessions(sess); err != nil {
			return nil, err
		}
	}
	return svc, nil
}

// close drains the registry: intake stops, every version's queued requests
// flush, and the call returns when the pools are empty (or ctx expires).
func (s *service) close(ctx context.Context) error { return s.reg.Close(ctx) }

// mux assembles the route table with every route instrumented. The pprof
// endpoints come from net/http/pprof, wired explicitly because the server
// uses its own mux rather than http.DefaultServeMux.
func (s *service) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", s.instrument("/predict", s.handlePredict))
	mux.HandleFunc("GET /v1/models", s.instrument("/v1/models", s.handleModels))
	mux.HandleFunc("POST /v1/models/{name}/predict", s.instrument("/v1/models/{name}/predict", s.handleModelPredict))
	mux.HandleFunc("POST /v1/models/{name}/reload", s.instrument("/v1/models/{name}/reload", s.handleModelReload))
	if s.sessions != nil {
		mux.HandleFunc("POST /v1/sessions/{id}/ingest", s.instrument("/v1/sessions/{id}/ingest", s.handleSessionIngest))
		mux.HandleFunc("DELETE /v1/sessions/{id}", s.instrument("/v1/sessions/{id}", s.handleSessionEvict))
		mux.HandleFunc("GET /v1/sessions", s.instrument("/v1/sessions", s.handleSessions))
	}
	mux.HandleFunc("GET /livez", s.instrument("/livez", s.handleLivez))
	mux.HandleFunc("GET /readyz", s.instrument("/readyz", s.handleReadyz))
	// /healthz predates the livez/readyz split and aliases readiness: a
	// load balancer probing it keeps exactly the old semantics (200 when
	// the service can answer predictions).
	mux.HandleFunc("/healthz", s.instrument("/healthz", s.handleReadyz))
	mux.HandleFunc("/metrics", s.instrument("/metrics", s.handleMetrics))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// trainDemoModel fits y = sin(3x) with a dropout network.
func trainDemoModel() (*apds.Network, error) {
	rng := rand.New(rand.NewSource(1))
	var samples []apds.TrainSample
	for i := 0; i < 800; i++ {
		x := rng.Float64()*4 - 2
		samples = append(samples, apds.TrainSample{
			X: apds.Vector{x},
			Y: apds.Vector{math.Sin(3*x) + 0.1*rng.NormFloat64()},
		})
	}
	net, err := apds.NewNetwork(apds.NetworkConfig{
		InputDim: 1, Hidden: []int{48, 48}, OutputDim: 1,
		Activation: apds.ActReLU, OutputActivation: apds.ActIdentity,
		KeepProb: 0.9, Seed: 2,
	})
	if err != nil {
		return nil, err
	}
	_, err = apds.Fit(net, samples, nil, apds.TrainConfig{
		Epochs: 25, BatchSize: 32, Seed: 1,
		Loss: apds.MSELoss(), Optimizer: apds.NewAdam(0.005),
	})
	return net, err
}

// maxRequestBytes bounds /predict request bodies: an unauthenticated gateway
// endpoint must not buffer arbitrarily large payloads. 1 MiB fits a batch of
// thousands of typical sensor windows.
const maxRequestBytes = 1 << 20

type predictRequest struct {
	Input  []float64   `json:"input"`
	Inputs [][]float64 `json:"inputs"`
}

type sampleResult struct {
	Mean []float64 `json:"mean"`
	Std  []float64 `json:"std"`
}

type predictResponse struct {
	Mean []float64 `json:"mean,omitempty"`
	Std  []float64 `json:"std,omitempty"`
	// Results holds per-sample outputs for batch ("inputs") requests.
	Results []sampleResult `json:"results,omitempty"`
	// Model/Version/Fingerprint/Route identify which registered version
	// served this request (the hot-swap audit trail).
	Model       string `json:"model"`
	Version     string `json:"version"`
	Fingerprint string `json:"fingerprint"`
	Route       string `json:"route"`
	// ModeledEdisonMs is the device model's per-inference latency estimate.
	ModeledEdisonMs float64 `json:"modeled_edison_ms"`
	// HostMicros is the actual service-side inference time.
	HostMicros int64 `json:"host_micros"`
}

// errBadRequest is the typed error class for every client-side /predict
// failure: decodePredict (and the handler's dimension checks) wrap all
// rejections in it, so callers — and the fuzz harness — can distinguish
// "bad payload" from an internal fault with errors.Is.
var errBadRequest = errors.New("bad request")

// decodePredict parses a /predict body that has already been wrapped with
// MaxBytesReader. It rejects payloads with trailing garbage after the JSON
// object, bodies over the size limit, non-finite values, and requests that
// set both or neither of "input" and "inputs". Every rejection wraps
// errBadRequest; decodePredict never panics on any input
// (FuzzDecodePredict).
func decodePredict(body io.Reader) (predictRequest, error) {
	var req predictRequest
	dec := json.NewDecoder(body)
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return req, fmt.Errorf("request body exceeds %d bytes: %w", tooLarge.Limit, errBadRequest)
		}
		return req, fmt.Errorf("malformed JSON: %v: %w", err, errBadRequest)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return req, fmt.Errorf("trailing data after JSON object: %w", errBadRequest)
	}
	hasOne, hasBatch := req.Input != nil, req.Inputs != nil
	switch {
	case hasOne && hasBatch:
		return req, fmt.Errorf(`set either "input" or "inputs", not both: %w`, errBadRequest)
	case !hasOne && !hasBatch:
		return req, fmt.Errorf(`missing "input" or "inputs": %w`, errBadRequest)
	}
	// Standard JSON cannot encode NaN/Inf, but the finiteness contract is
	// part of this decoder's interface, not an accident of the wire format.
	for _, v := range req.Input {
		if !finite(v) {
			return req, fmt.Errorf("non-finite value in input: %w", errBadRequest)
		}
	}
	for i, row := range req.Inputs {
		for _, v := range row {
			if !finite(v) {
				return req, fmt.Errorf("non-finite value in inputs[%d]: %w", i, errBadRequest)
			}
		}
	}
	return req, nil
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// handlePredict is the legacy single-model endpoint: it serves the model
// named "default" through the registry.
func (s *service) handlePredict(w http.ResponseWriter, r *http.Request) {
	s.servePredict(w, r, defaultModel)
}

// handleModelPredict serves POST /v1/models/{name}/predict.
func (s *service) handleModelPredict(w http.ResponseWriter, r *http.Request) {
	s.servePredict(w, r, r.PathValue("name"))
}

// requestKey is the canary-split key: deterministic per request ID, so a
// caller that retries with the same X-Request-ID lands on the same route.
func requestKey(w http.ResponseWriter, r *http.Request) string {
	if id := r.Header.Get("X-Request-ID"); id != "" {
		return id
	}
	// instrument stores the assigned ID on the response header.
	return w.Header().Get("X-Request-ID")
}

func (s *service) servePredict(w http.ResponseWriter, r *http.Request, modelName string) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	tr := traceFrom(r.Context())

	span := tr.StartSpan("decode")
	req, err := decodePredict(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	span.End()
	if err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}

	// Validate dimensions against the current version before enqueueing: a
	// wrong-size row must fail alone with a 400, not poison the co-batched
	// rows it would flush with.
	st, err := s.reg.Model(modelName)
	if err != nil {
		predictError(w, err)
		return
	}
	if st.InputDim > 0 {
		if req.Input != nil && len(req.Input) != st.InputDim {
			http.Error(w, fmt.Sprintf("input has %d values, model expects %d: %v",
				len(req.Input), st.InputDim, errBadRequest), http.StatusBadRequest)
			return
		}
		for i, x := range req.Inputs {
			if len(x) != st.InputDim {
				http.Error(w, fmt.Sprintf("inputs[%d] has %d values, model expects %d: %v",
					i, len(x), st.InputDim, errBadRequest), http.StatusBadRequest)
				return
			}
		}
	}

	var resp predictResponse
	var served apds.ModelServed
	key := requestKey(w, r)
	span = tr.StartSpan("predict")
	start := time.Now()
	if req.Input != nil {
		// The admitted version's coalescer merges this row with concurrently
		// arriving requests into one batched propagation pass; the result is
		// bit-identical to that version's direct Predict.
		g, sv, err := s.reg.Predict(r.Context(), modelName, key, req.Input)
		if err != nil {
			span.End()
			predictError(w, err)
			return
		}
		served = sv
		resp.Mean, resp.Std = g.Mean, stds(g)
	} else {
		inputs := make([]apds.Vector, len(req.Inputs))
		for i, x := range req.Inputs {
			inputs[i] = x
		}
		// Batch requests share the same flush pipeline: rows enter the queue
		// together (admitted all-or-nothing, all on one version) and may
		// merge with other requests' rows into the same matrix-level pass.
		gs, sv, err := s.reg.PredictBatch(r.Context(), modelName, key, inputs)
		if err != nil {
			span.End()
			predictError(w, err)
			return
		}
		served = sv
		resp.Results = make([]sampleResult, len(gs))
		for i, g := range gs {
			resp.Results[i] = sampleResult{Mean: g.Mean, Std: stds(g)}
		}
	}
	resp.HostMicros = time.Since(start).Microseconds()
	span.End()
	resp.Model, resp.Version = served.Model, served.Version
	resp.Fingerprint, resp.Route = served.Fingerprint, served.Route
	if v, err := s.reg.Version(served.Model, served.Version); err == nil {
		resp.ModeledEdisonMs = s.device.TimeMillis(v.Estimator().Cost())
	}

	span = tr.StartSpan("encode")
	defer span.End()
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		log.Printf("encode response: %v", err)
	}
}

// predictError writes err with its mapped status. Overload and
// unavailability responses (429/503) carry a Retry-After header so clients
// and load balancers back off for the advertised budget instead of hammering
// a saturated queue: the serve layer's drain estimate when the error carries
// one (queue-full rejections), a 1-second floor otherwise (startup,
// shutdown, cancelled requests).
func predictError(w http.ResponseWriter, err error) {
	status := predictStatus(err)
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", retryAfterSeconds(err))
	}
	http.Error(w, err.Error(), status)
}

// retryAfterSeconds renders an error's retry budget as the whole seconds
// HTTP Retry-After requires: the serve-layer hint rounded up, never below 1.
func retryAfterSeconds(err error) string {
	hint := time.Second
	if d, ok := apds.ServeRetryAfter(err); ok && d > hint {
		hint = d
	}
	return strconv.FormatInt(int64(math.Ceil(hint.Seconds())), 10)
}

// predictStatus maps registry and coalescer failures to HTTP semantics: an
// unknown model is 404, a full queue is overload (429, retryable after
// backoff), a model with no routable version, a closing registry, or an
// abandoned request context is the service (or model) going away (503), and
// anything else is an internal fault (500).
func predictStatus(err error) int {
	switch {
	case errors.Is(err, apds.ErrModelNotFound):
		return http.StatusNotFound
	case errors.Is(err, apds.ErrServeQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, apds.ErrServeClosed),
		errors.Is(err, apds.ErrModelNotReady),
		errors.Is(err, apds.ErrModelRegistryClosed),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// stds extracts per-dimension standard deviations.
func stds(g apds.GaussianVec) []float64 {
	out := make([]float64, g.Dim())
	for i := range out {
		out[i] = g.Std(i)
	}
	return out
}

// fingerprintETag condenses every model's current fingerprint into one
// ETag-style header value: probes and caches can watch for version swaps
// without parsing the body.
func fingerprintETag(models []apds.ModelStatus) string {
	tag := ""
	for _, st := range models {
		if st.CurrentFingerprint == "" {
			continue
		}
		if tag != "" {
			tag += ","
		}
		tag += st.Name + ":" + st.CurrentFingerprint
	}
	return `"` + tag + `"`
}

// handleModels serves GET /v1/models: every registered model's routing state,
// versions, and fingerprints.
func (s *service) handleModels(w http.ResponseWriter, _ *http.Request) {
	models := s.reg.Models()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("ETag", fingerprintETag(models))
	if err := json.NewEncoder(w).Encode(map[string]any{"models": models}); err != nil {
		log.Printf("encode models: %v", err)
	}
}

// handleLivez is pure process liveness: the handler running is the check.
func (s *service) handleLivez(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz reports routable readiness: 200 once at least one model has a
// routable current version, 503 before the first route lands and after
// shutdown begins. /healthz aliases this handler.
func (s *service) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	models := s.reg.Models()
	ready := s.reg.Ready()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("ETag", fingerprintETag(models))
	if !ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	if err := json.NewEncoder(w).Encode(map[string]any{
		"ready":  ready,
		"models": models,
	}); err != nil {
		log.Printf("encode readyz: %v", err)
	}
}

// handleModelReload serves POST /v1/models/{name}/reload: force a manifest
// reload (the whole manifest re-applies; content fingerprints make unchanged
// versions no-ops) and report the named model's resulting state.
func (s *service) handleModelReload(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if s.loader == nil {
		http.Error(w, "no manifest configured (-manifest): reload unavailable", http.StatusConflict)
		return
	}
	changed, err := s.loader.Reload(true)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, apds.ErrModelManifest) {
			status = http.StatusBadRequest
		}
		http.Error(w, err.Error(), status)
		return
	}
	st, err := s.reg.Model(name)
	if err != nil {
		predictError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(map[string]any{
		"reloaded": changed,
		"model":    st,
	}); err != nil {
		log.Printf("encode reload: %v", err)
	}
}
