// Cluster-router example: the front door of a sharded serving fleet. Point
// it at N replica servers (examples/server instances, or anything speaking
// the same /predict + /readyz contract) and it routes prediction traffic by
// consistent-hashed shard key, probes replica health, spills hot keys off
// saturated shards, and sheds load with Retry-After pricing when the whole
// fleet is saturated.
//
//	POST /predict                        proxied to the key's shard
//	POST /v1/models/{name}/predict       proxied to the key's shard
//	GET  /v1/models                      proxied to any live shard
//	GET  /readyz                         aggregate readiness (200 iff any shard up)
//	POST /cluster/drain?shard=URL        admin: remove a shard, wait for in-flight
//	POST /cluster/rejoin?shard=URL       admin: undo a drain
//	GET  /metrics                        router metrics (Prometheus text)
//
// The shard key is the X-Shard-Key header when present (X-Request-ID, then
// client host, otherwise), hashed with the same avalanche-finished hash the
// registry's canary splitter uses — a device pinned to a canary split stays
// pinned to a shard.
//
// A three-replica local walkthrough:
//
//	go run ./examples/server -addr :8081 &
//	go run ./examples/server -addr :8082 &
//	go run ./examples/server -addr :8083 &
//	go run ./examples/cluster-router -replicas \
//	    http://127.0.0.1:8081,http://127.0.0.1:8082,http://127.0.0.1:8083
//	curl -s -H 'X-Shard-Key: device-42' localhost:8090/predict -d '{"input":[0.3]}'
//	curl -s -X POST 'localhost:8090/cluster/drain?shard=http://127.0.0.1:8082'
package main

import (
	"flag"
	"log"
	"net/http"
	"strings"
	"time"

	apds "github.com/apdeepsense/apdeepsense"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cluster-router: ")
	addr := flag.String("addr", ":8090", "listen address")
	replicas := flag.String("replicas", "", "comma-separated replica base URLs (required)")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per shard (0 = default 128)")
	probe := flag.Duration("probe-interval", 250*time.Millisecond, "health probe period")
	failAfter := flag.Int("fail-after", 2, "consecutive probe failures before a shard is ejected")
	readmitAfter := flag.Int("readmit-after", 2, "consecutive probe successes before a shard rejoins")
	maxSpill := flag.Int("max-spill", 2, "ring successors to try after a saturated or failed owner (-1 disables)")
	flag.Parse()

	urls := strings.Split(*replicas, ",")
	var cleaned []string
	for _, u := range urls {
		if u = strings.TrimSpace(u); u != "" {
			cleaned = append(cleaned, strings.TrimSuffix(u, "/"))
		}
	}
	if len(cleaned) == 0 {
		log.Fatal("-replicas is required, e.g. -replicas http://127.0.0.1:8081,http://127.0.0.1:8082")
	}

	reg := apds.NewObsRegistry()
	router, err := apds.NewClusterRouter(apds.ClusterRouterConfig{
		Replicas:      cleaned,
		VNodes:        *vnodes,
		ProbeInterval: *probe,
		FailAfter:     *failAfter,
		ReadmitAfter:  *readmitAfter,
		MaxSpill:      *maxSpill,
		Metrics:       apds.NewClusterMetrics(reg),
		Logf:          log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer router.Close()

	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := reg.WriteText(w); err != nil {
			log.Printf("metrics: %v", err)
		}
	})
	mux.Handle("/", router)

	ring := router.Ring()
	log.Printf("routing %d/%d shards on %s (%s)", ring.Len(), len(cleaned), *addr, ring)
	log.Fatal(http.ListenAndServe(*addr, mux))
}
