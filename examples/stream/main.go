// Stream example: a push-based sensor pipeline. Raw 2-channel vibration
// samples arrive one at a time; the pipeline windows them, standardizes
// online, runs ApDeepSense, and gates each prediction on its uncertainty —
// escalating out-of-distribution windows instead of silently mispredicting,
// the deployment pattern edge gateways need.
//
// Run with:
//
//	go run ./examples/stream
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	apds "github.com/apdeepsense/apdeepsense"
)

const (
	channels  = 2
	windowLen = 16
	stride    = 8
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Train a small regressor on in-distribution windows: target is the
	// dominant oscillation amplitude.
	rng := rand.New(rand.NewSource(1))
	dim := windowLen * channels
	var samples []apds.TrainSample
	for i := 0; i < 1500; i++ {
		amp := 0.5 + rng.Float64()
		w := makeWindow(amp, 0.4, rng)
		samples = append(samples, apds.TrainSample{X: w, Y: apds.Vector{amp}})
	}
	net, err := apds.NewNetwork(apds.NetworkConfig{
		InputDim: dim, Hidden: []int{32, 32}, OutputDim: 1,
		Activation: apds.ActReLU, OutputActivation: apds.ActIdentity,
		KeepProb: 0.9, Seed: 2,
	})
	if err != nil {
		return err
	}
	fmt.Println("training", net.Summary())
	if _, err := apds.Fit(net, samples, nil, apds.TrainConfig{
		Epochs: 25, BatchSize: 32, Seed: 3,
		Loss: apds.MSELoss(), Optimizer: apds.NewAdam(0.005),
	}); err != nil {
		return err
	}

	// 2. Assemble the streaming pipeline with an uncertainty gate.
	est, err := apds.New(net, apds.Options{})
	if err != nil {
		return err
	}
	win, err := apds.NewWindower(channels, windowLen, stride)
	if err != nil {
		return err
	}
	gate, err := apds.NewGate(0.2)
	if err != nil {
		return err
	}
	pipe, err := apds.NewStreamPipeline(win, nil, est, gate)
	if err != nil {
		return err
	}

	// 3. Stream: first in-distribution vibration, then an anomalous burst
	// (a frequency the model never saw) which should trip the gate.
	fmt.Println("\nstreaming samples (in-distribution, then anomalous burst):")
	push := func(label string, freq float64, n int) error {
		for i := 0; i < n; i++ {
			ts := float64(i)
			s := []float64{
				math.Sin(freq*ts) + 0.05*rng.NormFloat64(),
				math.Cos(freq*ts) + 0.05*rng.NormFloat64(),
			}
			res, err := pipe.Push(s)
			if err != nil {
				return err
			}
			if res != nil {
				fmt.Printf("  [%s] amplitude %.2f ± %.2f -> %s\n",
					label, res.Pred.Mean[0], res.Pred.Std(0), res.Decision)
			}
		}
		return nil
	}
	if err := push("normal ", 0.4, 48); err != nil {
		return err
	}
	if err := push("anomaly", 2.9, 32); err != nil {
		return err
	}

	a, e, nf := gate.Stats()
	fmt.Printf("\ngate: %d accepted, %d escalated (%d non-finite)\n", a, e, nf)
	return nil
}

// makeWindow synthesizes one flattened training window at the given
// amplitude and frequency.
func makeWindow(amp, freq float64, rng *rand.Rand) apds.Vector {
	w := make(apds.Vector, windowLen*channels)
	phase := rng.Float64() * 2 * math.Pi
	for t := 0; t < windowLen; t++ {
		ts := float64(t)
		w[t*channels] = amp*math.Sin(freq*ts+phase) + 0.05*rng.NormFloat64()
		w[t*channels+1] = amp*math.Cos(freq*ts+phase) + 0.05*rng.NormFloat64()
	}
	return w
}
