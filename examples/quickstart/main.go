// Quickstart: train a small dropout network on a toy regression task, then
// compare ApDeepSense's single-pass uncertainty estimates against MCDrop
// sampling — the core workflow of the library in ~80 lines.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	apds "github.com/apdeepsense/apdeepsense"
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. A toy heteroscedastic task: y = sin(3x) + noise.
	rng := rand.New(rand.NewSource(1))
	var trainSet []apds.TrainSample
	for i := 0; i < 1200; i++ {
		x := rng.Float64()*4 - 2
		y := math.Sin(3*x) + 0.1*rng.NormFloat64()
		trainSet = append(trainSet, apds.TrainSample{
			X: apds.Vector{x},
			Y: apds.Vector{y},
		})
	}

	// 2. Train a dropout network — exactly the kind of "pre-trained model
	// with dropout regularization" ApDeepSense targets.
	net, err := apds.NewNetwork(apds.NetworkConfig{
		InputDim: 1, Hidden: []int{64, 64, 64}, OutputDim: 1,
		Activation:       apds.ActReLU,
		OutputActivation: apds.ActIdentity,
		KeepProb:         0.9,
		Seed:             7,
	})
	if err != nil {
		return err
	}
	fmt.Println("training", net.Summary())
	if _, err := apds.Fit(net, trainSet, nil, apds.TrainConfig{
		Epochs: 40, BatchSize: 32, Seed: 3,
		Loss: apds.MSELoss(), Optimizer: apds.NewAdam(0.005),
	}); err != nil {
		return err
	}

	// 3. ApDeepSense: ONE deterministic pass yields mean and variance.
	est, err := apds.New(net, apds.Options{})
	if err != nil {
		return err
	}
	// 4. The baseline: MCDrop-50 runs the network 50 times.
	mc, err := apds.NewMCDrop(net, 50, 0, 9)
	if err != nil {
		return err
	}

	device := apds.NewEdison()
	fmt.Printf("\nmodeled Intel Edison cost per inference:\n")
	fmt.Printf("  ApDeepSense: %6.2f ms   MCDrop-50: %6.2f ms  (%.1f%% saved)\n\n",
		device.TimeMillis(est.Cost()), device.TimeMillis(mc.Cost()),
		100*(1-device.TimeMillis(est.Cost())/device.TimeMillis(mc.Cost())))

	fmt.Println("    x      truth   ApDeepSense        MCDrop-50")
	for _, x := range []float64{-1.5, -0.5, 0, 0.5, 1.5} {
		g, err := est.Predict(apds.Vector{x})
		if err != nil {
			return err
		}
		m, err := mc.Predict(apds.Vector{x})
		if err != nil {
			return err
		}
		fmt.Printf("  %5.2f  %7.3f  %7.3f ± %.3f  %7.3f ± %.3f\n",
			x, math.Sin(3*x), g.Mean[0], g.Std(0), m.Mean[0], m.Std(0))
	}
	return nil
}
