// CNN example: the paper's future-work extension in action. A 1-D
// convolutional network with channel dropout classifies raw IMU-like
// vibration sequences (normal vs faulty machine), and ApDeepSense-style
// closed-form moment propagation flows through conv layers, global average
// pooling, and the dense head — one deterministic pass, no sampling — then
// is cross-checked against MCDrop-style stochastic passes.
//
// Run with:
//
//	go run ./examples/cnn
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	apds "github.com/apdeepsense/apdeepsense"
)

const (
	seqSteps    = 64
	seqChannels = 3
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// makeWindow synthesizes one vibration window: class 1 (faulty bearing) adds
// a high-frequency resonance on top of the rotation fundamental.
func makeWindow(cls int, rng *rand.Rand) *apds.Seq {
	x := apds.NewSeq(seqSteps, seqChannels)
	base := 0.25 + 0.1*rng.Float64() // rotation frequency
	phase := rng.Float64() * 2 * math.Pi
	for t := 0; t < seqSteps; t++ {
		ts := float64(t)
		v := math.Sin(base*ts + phase)
		if cls == 1 {
			v += 0.6 * math.Sin(2.4*ts+phase*1.3) // fault resonance
		}
		x.Set(t, 0, v+0.15*rng.NormFloat64())
		x.Set(t, 1, 0.7*math.Cos(base*ts+phase)+0.15*rng.NormFloat64())
		x.Set(t, 2, 0.2*v*v+0.15*rng.NormFloat64())
	}
	return x
}

func run() error {
	rng := rand.New(rand.NewSource(3))
	var data []apds.ConvSample
	for i := 0; i < 400; i++ {
		cls := i % 2
		y := apds.Vector{0, 0}
		y[cls] = 1
		data = append(data, apds.ConvSample{X: makeWindow(cls, rng), Y: y})
	}

	// Conv stack: raw input (no dropout) → channel-dropout conv → head.
	netRng := rand.New(rand.NewSource(7))
	c1, err := apds.NewConv1D(5, seqChannels, 8, 2, apds.ActReLU, 1, netRng)
	if err != nil {
		return err
	}
	c2, err := apds.NewConv1D(3, 8, 12, 2, apds.ActReLU, 0.85, netRng)
	if err != nil {
		return err
	}
	head, err := apds.NewNetwork(apds.NetworkConfig{
		InputDim: 12, Hidden: []int{24}, OutputDim: 2,
		Activation: apds.ActReLU, OutputActivation: apds.ActIdentity,
		KeepProb: 0.85, Seed: 7,
	})
	if err != nil {
		return err
	}
	net, err := apds.NewConvNet([]*apds.Conv1D{c1, c2}, head)
	if err != nil {
		return err
	}

	fmt.Println("training conv net with channel dropout...")
	if err := apds.TrainConvNet(net, data, apds.ConvTrainConfig{
		Epochs: 25, BatchSize: 16, LearningRate: 0.05, Seed: 1,
		Loss: apds.CrossEntropyLoss(),
	}); err != nil {
		return err
	}

	correct := 0
	for _, s := range data {
		out, err := net.Forward(s.X)
		if err != nil {
			return err
		}
		_, pi := out.Max()
		_, ti := s.Y.Max()
		if pi == ti {
			correct++
		}
	}
	fmt.Printf("training accuracy: %.1f%%\n\n", 100*float64(correct)/float64(len(data)))

	fmt.Println("closed-form conv moment propagation vs 2000 stochastic passes:")
	fmt.Println("  window  class   ApDeepSense logit0       MCDrop logit0")
	for i := 0; i < 4; i++ {
		s := data[i]
		g, err := net.PropagateMoments(s.X)
		if err != nil {
			return err
		}
		var sum, sum2 float64
		const passes = 2000
		for p := 0; p < passes; p++ {
			y, err := net.ForwardSample(s.X, rng)
			if err != nil {
				return err
			}
			sum += y[0]
			sum2 += y[0] * y[0]
		}
		mcMean := sum / passes
		mcStd := math.Sqrt(sum2/passes - mcMean*mcMean)
		_, cls := s.Y.Max()
		fmt.Printf("  %6d  %5d   %7.3f ± %.3f        %7.3f ± %.3f\n",
			i, cls, g.Mean[0], g.Std(0), mcMean, mcStd)
	}
	fmt.Println("\n(one deterministic pass replaced 2000 stochastic ones)")
	return nil
}
