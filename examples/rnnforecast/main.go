// RNN forecast example: the recurrent half of the paper's §VI future work.
// An Elman cell with variational recurrent dropout forecasts the next value
// of a sensor time series; ApDeepSense-style step-wise moment propagation
// produces the forecast distribution in one pass, compared against
// recurrent MCDrop sampling.
//
// Run with:
//
//	go run ./examples/rnnforecast
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	apds "github.com/apdeepsense/apdeepsense"
)

const seqLen = 12

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// makeSeries synthesizes a noisy seasonal sensor trace and its next value.
func makeSeries(rng *rand.Rand) ([]apds.Vector, float64) {
	phase := rng.Float64() * 2 * math.Pi
	amp := 0.7 + 0.6*rng.Float64()
	xs := make([]apds.Vector, seqLen)
	for t := 0; t < seqLen; t++ {
		v := amp*math.Sin(0.5*float64(t)+phase) + 0.08*rng.NormFloat64()
		xs[t] = apds.Vector{v}
	}
	next := amp * math.Sin(0.5*float64(seqLen)+phase)
	return xs, next
}

func run() error {
	rng := rand.New(rand.NewSource(1))
	var data []apds.RNNSample
	for i := 0; i < 600; i++ {
		xs, next := makeSeries(rng)
		data = append(data, apds.RNNSample{Xs: xs, Y: apds.Vector{next}})
	}

	cellRng := rand.New(rand.NewSource(5))
	cell, err := apds.NewRNNCell(1, 24, 1, apds.ActTanh, 0.9, cellRng)
	if err != nil {
		return err
	}
	fmt.Println("training recurrent cell with variational dropout (BPTT)...")
	if err := apds.TrainRNN(cell, data, apds.RNNTrainConfig{
		Epochs: 30, BatchSize: 16, LearningRate: 0.02, ClipNorm: 5, Seed: 2,
		Loss: apds.MSELoss(),
	}); err != nil {
		return err
	}

	fmt.Println("\nnext-value forecasts (one moment pass vs 1000 stochastic passes):")
	fmt.Println("  series   truth    ApDeepSense          recurrent MCDrop")
	for i := 0; i < 5; i++ {
		xs, next := makeSeries(rng)
		g, err := cell.PropagateMoments(xs)
		if err != nil {
			return err
		}
		var sum, sum2 float64
		const passes = 1000
		for p := 0; p < passes; p++ {
			y, err := cell.ForwardSample(xs, rng)
			if err != nil {
				return err
			}
			sum += y[0]
			sum2 += y[0] * y[0]
		}
		mcMean := sum / passes
		mcStd := math.Sqrt(math.Max(0, sum2/passes-mcMean*mcMean))
		fmt.Printf("  %6d  %6.3f   %6.3f ± %.3f       %6.3f ± %.3f\n",
			i, next, g.Mean[0], g.Std(0), mcMean, mcStd)
	}
	return nil
}
