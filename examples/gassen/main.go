// GasSen example: environment monitoring with uncertainty — the paper's gas
// sensing task. A dropout network estimates Ethylene and CO concentrations
// from a drifting 16-element MOX sensor array; ApDeepSense's variance drives
// an alarm policy: concentrations are only declared safe when the upper
// confidence bound clears the threshold, so high uncertainty escalates
// instead of silently passing.
//
// Run with:
//
//	go run ./examples/gassen
package main

import (
	"fmt"
	"log"
	"math"

	apds "github.com/apdeepsense/apdeepsense"
)

// coAlarmPPM is the CO level above which the monitor must alert.
const coAlarmPPM = 300

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("generating synthetic 16-sensor gas-mixture dataset...")
	ds, err := apds.GasSen(apds.DatasetSize{Train: 3000, Val: 400, Test: 600, Seed: 21})
	if err != nil {
		return err
	}

	net, err := apds.NewNetwork(apds.NetworkConfig{
		InputDim: ds.InputDim, Hidden: []int{64, 64, 64}, OutputDim: ds.OutputDim,
		Activation:       apds.ActTanh,
		OutputActivation: apds.ActIdentity,
		KeepProb:         0.9,
		Seed:             3,
	})
	if err != nil {
		return err
	}
	fmt.Println("training", net.Summary())
	if _, err := apds.Fit(net, ds.Train, ds.Val, apds.TrainConfig{
		Epochs: 15, BatchSize: 32, Seed: 4,
		Loss: apds.MSELoss(), Optimizer: apds.NewAdam(0.002),
		EarlyStopPatience: 4,
	}); err != nil {
		return err
	}

	// Tanh networks use the 7-piece PWL approximation, the paper's setting.
	est, err := apds.New(net, apds.Options{TanhPieces: 7})
	if err != nil {
		return err
	}

	fmt.Printf("\nalarm policy: alert when CO upper 95%% bound >= %d ppm\n", coAlarmPPM)
	fmt.Println("  sample   true CO     estimate        upper bound   action")
	const z95 = 1.96
	alerts, misses := 0, 0
	shown := 0
	for i, s := range ds.Test {
		g, err := est.Predict(s.X)
		if err != nil {
			return err
		}
		mean, variance := ds.DenormPrediction(g.Mean, g.Var)
		truth := ds.DenormTarget(s.Y)

		co, coStd := mean[1], math.Sqrt(variance[1])
		upper := co + z95*coStd
		trueCO := truth[1]

		action := "ok"
		if upper >= coAlarmPPM {
			action = "ALERT"
			alerts++
		} else if trueCO >= coAlarmPPM {
			action = "MISSED"
			misses++
		}
		if shown < 10 {
			fmt.Printf("  %6d   %6.0f ppm  %6.0f ± %4.0f   %6.0f ppm    %s\n",
				i, trueCO, co, coStd, upper, action)
			shown++
		}
	}
	fmt.Printf("\nover %d test samples: %d alerts raised, %d dangerous levels missed\n",
		len(ds.Test), alerts, misses)
	return nil
}
