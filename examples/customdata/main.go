// Custom-data example: the bring-your-own-dataset workflow. It writes a CSV
// (standing in for your real sensor log), loads it back, pipes it through
// the same split/standardize pipeline as the built-in tasks, trains a
// dropout model, and serves ApDeepSense uncertainty — everything a user
// needs to apply the library to their own data.
//
// Run with:
//
//	go run ./examples/customdata
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"path/filepath"

	apds "github.com/apdeepsense/apdeepsense"
	"github.com/apdeepsense/apdeepsense/internal/datasets"
	"github.com/apdeepsense/apdeepsense/internal/train"
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Pretend this CSV came from your deployment: 3 sensor features and
	// one target (a battery-health index driven by temperature and load).
	dir, err := os.MkdirTemp("", "apds-custom")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	csvPath := filepath.Join(dir, "battery.csv")
	rng := rand.New(rand.NewSource(1))
	var raw []train.Sample
	for i := 0; i < 2000; i++ {
		temp := 15 + 30*rng.Float64()  // °C
		load := rng.Float64()          // duty cycle
		cycles := rng.Float64() * 1000 // charge cycles
		health := 100 - 0.02*cycles - 8*load - 0.4*math.Max(0, temp-35) + rng.NormFloat64()
		raw = append(raw, train.Sample{
			X: []float64{temp, load, cycles},
			Y: []float64{health},
		})
	}
	if err := datasets.WriteCSVFile(csvPath, raw); err != nil {
		return err
	}
	fmt.Println("wrote", csvPath)

	// 2. Load it back and build a Dataset through the standard pipeline.
	loaded, err := datasets.ReadCSVFile(csvPath, 3, 1)
	if err != nil {
		return err
	}
	ds, err := datasets.FromSamples("battery", datasets.TaskRegression, loaded,
		datasets.Size{Train: 1500, Val: 200, Test: 300, Seed: 5})
	if err != nil {
		return err
	}
	fmt.Printf("dataset: %d train / %d val / %d test\n", len(ds.Train), len(ds.Val), len(ds.Test))

	// 3. Train a dropout network and wrap it in ApDeepSense.
	net, err := apds.NewNetwork(apds.NetworkConfig{
		InputDim: 3, Hidden: []int{32, 32}, OutputDim: 1,
		Activation: apds.ActReLU, OutputActivation: apds.ActIdentity,
		KeepProb: 0.9, Seed: 3,
	})
	if err != nil {
		return err
	}
	if _, err := apds.Fit(net, ds.Train, ds.Val, apds.TrainConfig{
		Epochs: 20, BatchSize: 32, Seed: 2,
		Loss: apds.MSELoss(), Optimizer: apds.NewAdam(0.005),
		EarlyStopPatience: 4,
	}); err != nil {
		return err
	}
	est, err := apds.New(net, apds.Options{})
	if err != nil {
		return err
	}

	// 4. Predict with uncertainty in natural units.
	fmt.Println("\n  true health   predicted")
	for i := 0; i < 6; i++ {
		s := ds.Test[i]
		g, err := est.Predict(s.X)
		if err != nil {
			return err
		}
		mean, variance := ds.DenormPrediction(g.Mean, g.Var)
		truth := ds.DenormTarget(s.Y)
		fmt.Printf("  %10.1f   %6.1f ± %.1f\n", truth[0], mean[0], math.Sqrt(variance[0]))
	}
	return nil
}
