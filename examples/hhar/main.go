// HHAR example: activity recognition on an unseen user — the paper's
// classification task. ApDeepSense's Gaussian logits pass through the
// mean-field softmax link, so class probabilities are moderated by model
// uncertainty; the example uses that to abstain on low-confidence windows,
// the selective-classification pattern IoT deployments rely on when the
// wearer was never in the training population.
//
// Run with:
//
//	go run ./examples/hhar
package main

import (
	"fmt"
	"log"

	apds "github.com/apdeepsense/apdeepsense"
)

// abstainBelow is the top-class probability under which the pipeline defers
// to a fallback (e.g. "unknown activity").
const abstainBelow = 0.55

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("generating synthetic HHAR dataset (test split = unseen user)...")
	ds, err := apds.HHAR(apds.DatasetSize{Train: 2800, Val: 350, Test: 450, Seed: 31})
	if err != nil {
		return err
	}

	net, err := apds.NewNetwork(apds.NetworkConfig{
		InputDim: ds.InputDim, Hidden: []int{96, 96, 96}, OutputDim: ds.OutputDim,
		Activation:       apds.ActReLU,
		OutputActivation: apds.ActIdentity,
		KeepProb:         0.9,
		Seed:             13,
	})
	if err != nil {
		return err
	}
	fmt.Println("training", net.Summary())
	if _, err := apds.Fit(net, ds.Train, ds.Val, apds.TrainConfig{
		Epochs: 12, BatchSize: 32, Seed: 6,
		Loss: apds.CrossEntropyLoss(), Optimizer: apds.NewAdam(0.001),
		EarlyStopPatience: 4,
	}); err != nil {
		return err
	}

	est, err := apds.New(net, apds.Options{})
	if err != nil {
		return err
	}

	var (
		answered, correctAnswered int
		abstained                 int
		correctOverall            int
	)
	for _, s := range ds.Test {
		probs, err := est.PredictProbs(s.X)
		if err != nil {
			return err
		}
		conf, pred := probs.Max()
		_, truth := s.Y.Max()
		if pred == truth {
			correctOverall++
		}
		if conf < abstainBelow {
			abstained++
			continue
		}
		answered++
		if pred == truth {
			correctAnswered++
		}
	}

	n := len(ds.Test)
	fmt.Printf("\nunseen-user test windows: %d\n", n)
	fmt.Printf("raw accuracy (always answer):        %.1f%%\n", 100*float64(correctOverall)/float64(n))
	fmt.Printf("abstained (confidence < %.2f):       %d (%.1f%%)\n",
		abstainBelow, abstained, 100*float64(abstained)/float64(n))
	if answered > 0 {
		fmt.Printf("selective accuracy (when answering): %.1f%%\n",
			100*float64(correctAnswered)/float64(answered))
	}
	fmt.Println("\nclasses:", ds.ClassNames)
	return nil
}
