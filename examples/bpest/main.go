// BPEst example: cuff-less blood-pressure monitoring with uncertainty — the
// paper's health-and-wellbeing task. It generates the synthetic PPG→ABP
// dataset, trains a dropout network, and prints per-sample ABP predictions
// with ApDeepSense confidence bands in mmHg, flagging low-confidence windows
// the way a clinical IoT pipeline would.
//
// Run with:
//
//	go run ./examples/bpest
package main

import (
	"fmt"
	"log"
	"math"

	apds "github.com/apdeepsense/apdeepsense"
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("generating synthetic PPG→ABP dataset (250-sample windows)...")
	ds, err := apds.BPEst(apds.DatasetSize{Train: 1200, Val: 150, Test: 200, Seed: 11})
	if err != nil {
		return err
	}

	net, err := apds.NewNetwork(apds.NetworkConfig{
		InputDim: ds.InputDim, Hidden: []int{96, 96, 96}, OutputDim: ds.OutputDim,
		Activation:       apds.ActReLU,
		OutputActivation: apds.ActIdentity,
		KeepProb:         0.9,
		Seed:             5,
	})
	if err != nil {
		return err
	}
	fmt.Println("training", net.Summary())
	if _, err := apds.Fit(net, ds.Train, ds.Val, apds.TrainConfig{
		Epochs: 10, BatchSize: 32, Seed: 2,
		Loss: apds.MSELoss(), Optimizer: apds.NewAdam(0.001),
		EarlyStopPatience: 3,
	}); err != nil {
		return err
	}

	est, err := apds.New(net, apds.Options{})
	if err != nil {
		return err
	}

	fmt.Println("\nper-window mean ABP prediction with 90% confidence half-width:")
	fmt.Println("  window   true mean ABP   predicted     ±90% band   verdict")
	const z90 = 1.6448536269514722
	for i := 0; i < 8; i++ {
		s := ds.Test[i]
		g, err := est.Predict(s.X)
		if err != nil {
			return err
		}
		mean, variance := ds.DenormPrediction(g.Mean, g.Var)
		truth := ds.DenormTarget(s.Y)

		var predAvg, trueAvg, bandAvg float64
		for j := range mean {
			predAvg += mean[j]
			trueAvg += truth[j]
			bandAvg += z90 * math.Sqrt(variance[j])
		}
		n := float64(len(mean))
		predAvg /= n
		trueAvg /= n
		bandAvg /= n

		verdict := "ok"
		if bandAvg > 12 {
			verdict = "LOW CONFIDENCE — recheck cuff"
		}
		fmt.Printf("  %6d   %9.1f mmHg  %7.1f mmHg  ±%5.1f mmHg  %s\n",
			i, trueAvg, predAvg, bandAvg, verdict)
	}
	return nil
}
