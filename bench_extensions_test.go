// Benchmarks for the future-work extensions (conv/rnn moment propagation),
// the batch-inference fan-out, and the ablation studies of DESIGN.md §5.
package apdeepsense_test

import (
	"math/rand"
	"testing"

	"github.com/apdeepsense/apdeepsense/internal/conv"
	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/rnn"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// benchConvNet builds a small IoT-sized conv net (64×3 input).
func benchConvNet(b *testing.B) (*conv.Net, *conv.Seq) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	c1, err := conv.NewConv1D(5, 3, 16, 2, nn.ActReLU, 1, rng)
	if err != nil {
		b.Fatal(err)
	}
	c2, err := conv.NewConv1D(3, 16, 24, 2, nn.ActReLU, 0.9, rng)
	if err != nil {
		b.Fatal(err)
	}
	head, err := nn.New(nn.Config{
		InputDim: 24, Hidden: []int{32}, OutputDim: 4,
		Activation: nn.ActReLU, OutputActivation: nn.ActIdentity,
		KeepProb: 0.9, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	net, err := conv.NewNet([]*conv.Conv1D{c1, c2}, head)
	if err != nil {
		b.Fatal(err)
	}
	x := conv.NewSeq(64, 3)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	return net, x
}

// BenchmarkConvMomentPropagation is one closed-form pass over the hybrid
// conv→dense network (the §VI extension's ApDeepSense analogue).
func BenchmarkConvMomentPropagation(b *testing.B) {
	net, x := benchConvNet(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.PropagateMoments(x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConvMCDrop50 is the sampling equivalent: 50 stochastic passes.
func BenchmarkConvMCDrop50(b *testing.B) {
	net, x := benchConvNet(b)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := 0; s < 50; s++ {
			if _, err := net.ForwardSample(x, rng); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func benchRNN(b *testing.B) (*rnn.Cell, []tensor.Vector) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	cell, err := rnn.NewCell(4, 32, 2, nn.ActTanh, 0.9, rng)
	if err != nil {
		b.Fatal(err)
	}
	xs := make([]tensor.Vector, 20)
	for i := range xs {
		xs[i] = tensor.Vector{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	return cell, xs
}

// BenchmarkRNNMomentPropagation is one closed-form recurrent moment pass
// over a 20-step sequence.
func BenchmarkRNNMomentPropagation(b *testing.B) {
	cell, xs := benchRNN(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cell.PropagateMoments(xs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRNNMCDrop50 is the sampling equivalent with 50 masks.
func BenchmarkRNNMCDrop50(b *testing.B) {
	cell, xs := benchRNN(b)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := 0; s < 50; s++ {
			if _, err := cell.ForwardSample(xs, rng); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkPredictBatch measures the worker-pool batch fan-out over a
// paper-scale model (single-core machines see the scheduling overhead;
// multicore machines see the speedup).
func BenchmarkPredictBatch(b *testing.B) {
	net := paperNet(b, nn.ActReLU)
	est, err := core.NewApDeepSense(net, core.Options{}, 0)
	if err != nil {
		b.Fatal(err)
	}
	inputs := make([]tensor.Vector, 16)
	for i := range inputs {
		inputs[i] = tensor.Vector{0.1, 0.2, 0.3, 0.4, 0.5}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.PredictBatch(est, inputs, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPieces regenerates the PWL piece-count ablation at quick
// scale (DESIGN.md §5).
func BenchmarkAblationPieces(b *testing.B) {
	r := quickRunner(b)
	if _, err := r.AblationPieces("NYCommute", []int{3, 7}); err != nil {
		b.Fatalf("warm: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.AblationPieces("NYCommute", []int{3, 7}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSoftmaxLink regenerates the classification-link ablation.
func BenchmarkAblationSoftmaxLink(b *testing.B) {
	r := quickRunner(b)
	if _, err := r.AblationSoftmaxLink([]int{50}); err != nil {
		b.Fatalf("warm: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.AblationSoftmaxLink([]int{50}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLSTMMomentPropagation is one closed-form LSTM moment pass over a
// 20-step sequence.
func BenchmarkLSTMMomentPropagation(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cell, err := rnn.NewLSTM(4, 32, 2, 0.9, rng)
	if err != nil {
		b.Fatal(err)
	}
	xs := make([]tensor.Vector, 20)
	for i := range xs {
		xs[i] = tensor.Vector{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cell.PropagateMoments(xs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGRUMomentPropagation is one closed-form GRU moment pass over a
// 20-step sequence.
func BenchmarkGRUMomentPropagation(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cell, err := rnn.NewGRU(4, 32, 2, 0.9, rng)
	if err != nil {
		b.Fatal(err)
	}
	xs := make([]tensor.Vector, 20)
	for i := range xs {
		xs[i] = tensor.Vector{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cell.PropagateMoments(xs); err != nil {
			b.Fatal(err)
		}
	}
}
