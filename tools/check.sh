#!/bin/sh
# check.sh — the repo's pre-merge gate, also reachable as `make check`:
# vet, build, race-test the numeric hot paths AND the observability/serving
# path (the metrics registry, hooks, and stream gating are explicitly
# concurrent), then record the batched propagation benchmark with its
# metrics snapshot (results/BENCH_batch.json + results/BENCH_obs.prom).
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race (numeric hot paths)"
go test -race ./internal/core/... ./internal/tensor/...

echo "== go test -race (observability + serving path)"
go test -race ./internal/obs/... ./internal/stream/... ./examples/server/...

echo "== apds-bench -batch -obs"
go run ./cmd/apds-bench -batch -obs -results results

echo "check: ok"
