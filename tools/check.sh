#!/bin/sh
# check.sh — the repo's pre-merge gate, also reachable as `make check`:
# vet, build, race-test the numeric hot paths AND the observability/serving
# path (the metrics registry, hooks, the request coalescer, and stream gating
# are explicitly concurrent), run the oracle-backed differential harness, give
# each fuzz target a short smoke budget (seed corpora always replay; the extra
# seconds of mutation catch shallow regressions), then record the batched
# propagation benchmark with its metrics snapshot (results/BENCH_batch.json +
# results/BENCH_obs.prom) and smoke runs of the serving and registry
# benchmarks, and finally run the compiled-propagator, quantized-propagator,
# and sequence-path (conv/RNN/GRU + exact-vs-PWL parity) benchmarks, a
# 2-replica cluster smoke, and a 20k session-fleet smoke and diff each
# against its committed trajectory with tools/benchdiff. The smoke bench runs write to a scratch directory so short
# cells never clobber the committed results/BENCH_serve.json /
# BENCH_registry.json / BENCH_cluster.json / BENCH_seq.json (regenerate those
# with `make bench-serve` / `make bench-registry` / `make bench-compile` /
# `make bench-quant` / `make bench-cluster` / `make bench-seq`).
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race (numeric hot paths)"
go test -race ./internal/core/... ./internal/tensor/... ./internal/compile/... ./internal/qprop/... ./internal/quantize/...

echo "== go test -race (observability + serving path)"
go test -race ./internal/obs/... ./internal/stream/... ./internal/serve/... ./examples/server/...

echo "== go test -race (model registry: hot-swap, shadow, manifest reload)"
go test -race ./internal/registry/...

echo "== go test -race (session fleet: arena, wheel, snapshot, hammer)"
go test -race ./internal/session/... ./internal/stats/...

echo "== go test -race (cluster tier: hash, ring, router, budgets)"
go test -race ./internal/hashkey/... ./internal/cluster/...

echo "== manifest hot-reload smoke (end-to-end through the HTTP server)"
go test -race -run 'TestManifestReloadSmoke|TestReadinessLifecycle' ./examples/server/

echo "== go test -race (sequence paths: conv + rnn)"
go test -race ./internal/conv/... ./internal/rnn/...

echo "== go test -race (oracle + differential harness)"
go test -race ./internal/oracle/... ./internal/proptest/...

echo "== fuzz smoke (10s per target)"
go test -run NONE -fuzz 'FuzzPropagateVsOracle' -fuzztime 10s ./internal/proptest
go test -run NONE -fuzz 'FuzzBatchVsSequential' -fuzztime 10s ./internal/proptest
go test -run NONE -fuzz 'FuzzCompiledVsInterpreted' -fuzztime 10s ./internal/proptest
go test -run NONE -fuzz 'FuzzQuantizedVsFloat' -fuzztime 10s ./internal/proptest
go test -run NONE -fuzz 'FuzzExactVsOracle' -fuzztime 10s ./internal/proptest
go test -run NONE -fuzz 'FuzzConvVsOracle' -fuzztime 10s ./internal/proptest
go test -run NONE -fuzz 'FuzzQMadd' -fuzztime 10s ./internal/tensor
go test -run NONE -fuzz 'FuzzLoadModel' -fuzztime 10s ./internal/nn

echo "== apds-bench -batch -obs"
go run ./cmd/apds-bench -batch -obs -results results

echo "== apds-bench -serve (smoke)"
smokedir=$(mktemp -d)
trap 'rm -rf "$smokedir"' EXIT
go run ./cmd/apds-bench -serve -serve-duration 200ms -results "$smokedir"

echo "== apds-bench -registry (smoke)"
go run ./cmd/apds-bench -registry -registry-duration 200ms -results "$smokedir"

echo "== apds-bench -compile + benchdiff vs committed trajectory"
go run ./cmd/apds-bench -compile -results "$smokedir"
# Loose tolerance: the committed numbers come from another box; this gate
# catches the compiled path silently falling back to interpreted speed, not
# scheduler noise.
go run ./tools/benchdiff -base results/BENCH_compile.json -fresh "$smokedir/BENCH_compile.json" -tol 0.6

echo "== apds-bench -quant + benchdiff vs committed trajectory"
go run ./cmd/apds-bench -quant -results "$smokedir"
# Same loose tolerance: catches the fixed-point path silently losing its
# integer kernels (scalar fallback) or its size advantage, not machine noise.
go run ./tools/benchdiff -base results/BENCH_quant.json -fresh "$smokedir/BENCH_quant.json" -tol 0.6

echo "== apds-bench -cluster (2-replica smoke) + benchdiff vs committed trajectory"
go run ./cmd/apds-bench -cluster -cluster-replicas 2 -cluster-duration 300ms -results "$smokedir"
# The committed file carries the full 4-replica sweep; the smoke's 2-replica
# prefix pairs with it by scenario index. Loose tolerance again: the gate is
# for the router losing its scaling (speedup) or its latency profile, not for
# box-to-box qps differences.
go run ./tools/benchdiff -base results/BENCH_cluster.json -fresh "$smokedir/BENCH_cluster.json" -tol 0.6

echo "== apds-bench -seq + benchdiff vs committed trajectory"
go run ./cmd/apds-bench -seq -results "$smokedir"
# Catches a sequence fast path silently degenerating (e.g. per-element
# alloc/abstraction creep) and the exact backend losing cost parity with the
# PWL one, not cross-machine noise.
go run ./tools/benchdiff -base results/BENCH_seq.json -fresh "$smokedir/BENCH_seq.json" -tol 0.6

echo "== apds-bench -sessions (smoke) + benchdiff vs committed trajectory"
go run ./cmd/apds-bench -sessions -session-count 20000 -session-stream 5000 -results "$smokedir"
# The committed file holds 1M resident sessions; the smoke holds 20k. Only
# the *_per_sec rates are gated (per-item costs are scale-independent and
# small runs only get faster); absolute durations and counts are *_sec /
# plain-count keys benchdiff ignores. Catches the arena losing its
# struct-of-arrays footprint economics or the wheel degenerating to scans.
go run ./tools/benchdiff -base results/BENCH_stream.json -fresh "$smokedir/BENCH_stream.json" -tol 0.6

echo "check: ok"
