#!/bin/sh
# check.sh — the repo's pre-merge gate, also reachable as `make check`:
# vet, build, race-test the numeric hot paths, then record the batched
# propagation benchmark as results/BENCH_batch.json.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./internal/core/... ./internal/tensor/..."
go test -race ./internal/core/... ./internal/tensor/...

echo "== apds-bench -batch"
go run ./cmd/apds-bench -batch -results results

echo "check: ok"
