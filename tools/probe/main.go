// Command probe is a development diagnostic: it measures the bias of
// ApDeepSense's closed-form variance against long-run MCDrop sampling on
// trained networks, across dropout keep probabilities. It informed the
// default keep probability used by the experiment harness (EXPERIMENTS.md).
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/datasets"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/stats"
	"github.com/apdeepsense/apdeepsense/internal/train"
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	d, err := datasets.NYCommute(datasets.Size{Train: 3000, Val: 300, Test: 300, Seed: 102})
	if err != nil {
		return err
	}
	for _, keep := range []float64{0.9, 0.8, 0.65, 0.5} {
		for _, act := range []nn.Activation{nn.ActReLU, nn.ActTanh} {
			net, err := nn.New(nn.Config{
				InputDim: d.InputDim, Hidden: []int{128, 128, 128, 128}, OutputDim: d.OutputDim,
				Activation: act, OutputActivation: nn.ActIdentity,
				KeepProb: keep, Seed: 3,
			})
			if err != nil {
				return err
			}
			if _, err := train.Fit(net, d.Train, nil, train.Config{
				Epochs: 10, BatchSize: 64, Seed: 5,
				Loss: train.MSE{}, Optimizer: train.NewAdam(1e-3), ClipNorm: 5,
			}); err != nil {
				return err
			}
			prop, err := core.NewPropagator(net, core.Options{})
			if err != nil {
				return err
			}
			rng := rand.New(rand.NewSource(7))
			var ratioSum, zSum, resid2, apdsVarSum float64
			const nProbe = 40
			for i := 0; i < nProbe; i++ {
				s := d.Test[i]
				g, err := prop.Propagate(s.X)
				if err != nil {
					return err
				}
				var w stats.Welford
				for p := 0; p < 3000; p++ {
					y, err := net.ForwardSample(s.X, rng)
					if err != nil {
						return err
					}
					w.Add(y[0])
				}
				ratioSum += g.Var[0] / w.Variance()
				r := s.Y[0] - g.Mean[0]
				resid2 += r * r
				zSum += r * r / g.Var[0]
				apdsVarSum += g.Var[0]
			}
			fmt.Printf("keep=%.2f act=%-5s  var-ratio(apds/mc)=%.3f  mean-z2=%.1f  residStd=%.3f  apdsStd=%.3f\n",
				keep, act, ratioSum/nProbe, zSum/nProbe,
				math.Sqrt(resid2/nProbe), math.Sqrt(apdsVarSum/nProbe))
		}
	}
	return nil
}
