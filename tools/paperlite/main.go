// Command paperlite runs one task's full estimator grid at the paper's
// 512-wide architecture (with a reduced epoch budget so it completes in
// minutes on one core), recording how the quality ordering shifts with
// width. Its output backs the paper-scale remarks in EXPERIMENTS.md.
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/apdeepsense/apdeepsense/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paperlite: ")
	task := "NYCommute"
	if len(os.Args) > 1 {
		task = os.Args[1]
	}
	scale := experiments.Scale{
		Name:   "paperlite",
		Hidden: []int{512, 512, 512, 512},
		Epochs: 8, BatchSize: 64, DataFraction: 0.6,
	}
	runner, err := experiments.NewRunner(scale,
		experiments.WithModelDir("models"),
		experiments.WithLogf(func(f string, a ...any) { log.Printf(f, a...) }),
	)
	if err != nil {
		log.Fatal(err)
	}
	n := map[string]int{"BPEst": 1, "NYCommute": 2, "GasSen": 3, "HHAR": 4}[task]
	tbl, err := runner.Table(n)
	if err != nil {
		log.Fatal(err)
	}
	text, err := tbl.Render()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(text)
	if err := os.WriteFile(fmt.Sprintf("results/paperlite-table%d.txt", n), []byte(text), 0o644); err != nil {
		log.Fatal(err)
	}
}
