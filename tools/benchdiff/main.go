// Command benchdiff compares a freshly generated BENCH_*.json against the
// checked-in trajectory and fails (exit 1) on regressions beyond a
// configurable tolerance. It understands nothing about specific benchmark
// schemas: it walks both JSON documents in parallel and compares every
// numeric leaf present in both, classifying each by its key name —
// higher-is-better (speedup, *_per_sec, qps), lower-is-better (*_ns_per_*,
// *_micros, *_millis, latency, seconds) — and ignoring everything else
// (counts, dims, timestamps).
//
// Usage:
//
//	benchdiff -base results/BENCH_compile.json -fresh /tmp/run/BENCH_compile.json -tol 0.5
//
// The default tolerance is deliberately loose (50%): the committed numbers
// come from whatever machine recorded them, and the gate's job is to catch
// order-of-magnitude regressions (a fast path silently falling back to a slow
// one), not to police scheduler noise between unrelated boxes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")
	base := flag.String("base", "", "checked-in baseline JSON")
	fresh := flag.String("fresh", "", "freshly generated JSON to check")
	tol := flag.Float64("tol", 0.5, "allowed fractional regression (0.5 = 50%)")
	verbose := flag.Bool("v", false, "print every compared metric, not just regressions")
	flag.Parse()
	if *base == "" || *fresh == "" {
		log.Fatal("both -base and -fresh are required")
	}
	baseDoc, err := loadJSON(*base)
	if err != nil {
		log.Fatalf("base: %v", err)
	}
	freshDoc, err := loadJSON(*fresh)
	if err != nil {
		log.Fatalf("fresh: %v", err)
	}
	results := diffDocs(baseDoc, freshDoc, *tol)
	var regressions int
	for _, r := range results {
		if r.regressed {
			regressions++
			fmt.Printf("REGRESSION %s: base %.4g, fresh %.4g (%+.1f%%, tol %.0f%%)\n",
				r.path, r.base, r.fresh, 100*r.delta, 100**tol)
		} else if *verbose {
			fmt.Printf("ok %s: base %.4g, fresh %.4g (%+.1f%%)\n", r.path, r.base, r.fresh, 100*r.delta)
		}
	}
	if regressions > 0 {
		log.Fatalf("%d regression(s) beyond %.0f%% tolerance", regressions, 100**tol)
	}
	fmt.Printf("benchdiff: %d metrics within %.0f%% tolerance\n", len(results), 100**tol)
}

func loadJSON(path string) (any, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// metricResult is one compared leaf. delta is the signed fractional change in
// the "better" direction: negative means the fresh run is worse.
type metricResult struct {
	path        string
	base, fresh float64
	delta       float64
	regressed   bool
}

// higherBetter / lowerBetter classify a leaf key. A key matching neither is
// informational (dims, counts, raw totals) and skipped.
func higherBetter(key string) bool {
	for _, s := range []string{"speedup", "per_sec", "qps", "throughput"} {
		if strings.Contains(key, s) {
			return true
		}
	}
	return false
}

func lowerBetter(key string) bool {
	for _, s := range []string{"ns_per", "micros", "millis", "latency", "seconds", "ratio"} {
		if strings.Contains(key, s) {
			return true
		}
	}
	return false
}

// diffDocs walks base and fresh in parallel and returns a result per numeric
// leaf present in both whose key classifies as a direction. Array elements
// pair by index; objects pair by key; shape mismatches are skipped (a new
// benchmark row is not a regression). Results are sorted by path.
func diffDocs(base, fresh any, tol float64) []metricResult {
	var out []metricResult
	walk(base, fresh, "", &out, tol)
	sort.Slice(out, func(i, j int) bool { return out[i].path < out[j].path })
	return out
}

func walk(base, fresh any, path string, out *[]metricResult, tol float64) {
	switch b := base.(type) {
	case map[string]any:
		f, ok := fresh.(map[string]any)
		if !ok {
			return
		}
		for k, bv := range b {
			walk(bv, f[k], path+"/"+k, out, tol)
		}
	case []any:
		f, ok := fresh.([]any)
		if !ok {
			return
		}
		n := len(b)
		if len(f) < n {
			n = len(f)
		}
		for i := 0; i < n; i++ {
			walk(b[i], f[i], fmt.Sprintf("%s[%d]", path, i), out, tol)
		}
	case float64:
		fv, ok := fresh.(float64)
		if !ok {
			return
		}
		key := path[strings.LastIndex(path, "/")+1:]
		if i := strings.IndexByte(key, '['); i >= 0 {
			key = key[:i]
		}
		if strings.HasPrefix(key, "max_") {
			return // a single-sample extreme; too noisy for a pass/fail gate
		}
		var delta float64
		switch {
		case higherBetter(key):
			if b == 0 {
				return
			}
			delta = fv/b - 1
		case lowerBetter(key):
			if fv == 0 || b == 0 {
				return // a zero time means the cell did not run; not comparable
			}
			delta = b/fv - 1
		default:
			return
		}
		*out = append(*out, metricResult{
			path: path, base: b, fresh: fv,
			delta: delta, regressed: delta < -tol,
		})
	}
}
