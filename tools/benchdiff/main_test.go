package main

import (
	"encoding/json"
	"testing"
)

func mustDoc(t *testing.T, s string) any {
	t.Helper()
	var doc any
	if err := json.Unmarshal([]byte(s), &doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

func byPath(rs []metricResult) map[string]metricResult {
	m := make(map[string]metricResult, len(rs))
	for _, r := range rs {
		m[r.path] = r
	}
	return m
}

func TestDiffDirections(t *testing.T) {
	base := mustDoc(t, `{
		"entries": [
			{"batch": 1, "speedup": 2.0, "compiled_ns_per_sample": 100.0, "compiled_samples_per_sec": 10000.0}
		],
		"reload": {"reload_millis": 10.0},
		"timestamp": "2026-08-08T00:00:00Z"
	}`)
	fresh := mustDoc(t, `{
		"entries": [
			{"batch": 1, "speedup": 0.5, "compiled_ns_per_sample": 120.0, "compiled_samples_per_sec": 9000.0}
		],
		"reload": {"reload_millis": 100.0},
		"timestamp": "2026-08-08T01:00:00Z"
	}`)
	rs := byPath(diffDocs(base, fresh, 0.5))

	// speedup 2.0 -> 0.5 is -75%: beyond 50% tolerance.
	if r := rs["/entries[0]/speedup"]; !r.regressed {
		t.Errorf("speedup drop not flagged: %+v", r)
	}
	// ns/sample 100 -> 120 is a 17% slowdown: within tolerance.
	if r := rs["/entries[0]/compiled_ns_per_sample"]; r.regressed {
		t.Errorf("mild slowdown flagged: %+v", r)
	}
	// per_sec 10000 -> 9000 is -10%: within tolerance.
	if r := rs["/entries[0]/compiled_samples_per_sec"]; r.regressed {
		t.Errorf("mild throughput dip flagged: %+v", r)
	}
	// reload 10ms -> 100ms is 10x slower: beyond tolerance.
	if r := rs["/reload/reload_millis"]; !r.regressed {
		t.Errorf("reload blowup not flagged: %+v", r)
	}
	// batch is a count, timestamp is a string: neither compared.
	if _, ok := rs["/entries[0]/batch"]; ok {
		t.Error("count key compared")
	}
	if _, ok := rs["/timestamp"]; ok {
		t.Error("string leaf compared")
	}
}

func TestDiffImprovementsPass(t *testing.T) {
	base := mustDoc(t, `{"speedup": 1.0, "p99_micros": 500.0}`)
	fresh := mustDoc(t, `{"speedup": 3.0, "p99_micros": 50.0}`)
	for _, r := range diffDocs(base, fresh, 0.25) {
		if r.regressed {
			t.Errorf("improvement flagged as regression: %+v", r)
		}
		if r.delta <= 0 {
			t.Errorf("improvement has non-positive delta: %+v", r)
		}
	}
}

func TestDiffShapeMismatchesSkipped(t *testing.T) {
	base := mustDoc(t, `{"entries": [{"speedup": 2.0}], "extra": {"qps": 5.0}}`)
	fresh := mustDoc(t, `{"entries": [{"speedup": 2.0}, {"speedup": 9.0}], "extra": "gone"}`)
	rs := diffDocs(base, fresh, 0.5)
	if len(rs) != 1 || rs[0].path != "/entries[0]/speedup" {
		t.Errorf("results = %+v, want only the paired entry", rs)
	}
}

func TestDiffZeroTimesSkipped(t *testing.T) {
	// A zero micros cell means "did not run" (e.g. no requests landed in a
	// measurement window); comparing against it would divide by zero or flag
	// phantom regressions.
	base := mustDoc(t, `{"p50_micros": 0.0, "qps": 0.0}`)
	fresh := mustDoc(t, `{"p50_micros": 900.0, "qps": 100.0}`)
	if rs := diffDocs(base, fresh, 0.5); len(rs) != 0 {
		t.Errorf("results = %+v, want none (zero baselines skipped)", rs)
	}
}

func TestDiffMaxKeysSkipped(t *testing.T) {
	// Single-sample extremes regress by 10x between healthy runs; they are
	// recorded for humans, not for the gate.
	base := mustDoc(t, `{"max_serve_micros_during_reload": 100.0}`)
	fresh := mustDoc(t, `{"max_serve_micros_during_reload": 40000.0}`)
	if rs := diffDocs(base, fresh, 0.5); len(rs) != 0 {
		t.Errorf("results = %+v, want none (max_ keys skipped)", rs)
	}
}
