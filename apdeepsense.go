// Package apdeepsense is the public facade of the ApDeepSense reproduction:
// sampling-free output-uncertainty estimation for dropout-trained
// fully-connected neural networks on resource-constrained devices (Yao et
// al., "ApDeepSense: Deep Learning Uncertainty Estimation Without the Pain
// for IoT Applications", ICDCS 2018).
//
// The typical flow:
//
//	net, _ := apdeepsense.LoadModel("model.gob")       // a dropout-trained network
//	est, _ := apdeepsense.New(net, apdeepsense.Options{})
//	dist, _ := est.Predict(x)                          // one deterministic pass
//	fmt.Println(dist.Mean[0], "±", dist.Std(0))        // mean and uncertainty
//
// Baselines (MCDrop-k sampling, retrained RDeepSense), training, synthetic
// IoT datasets, the Intel Edison cost model, and the full experiment harness
// that regenerates the paper's tables and figures are re-exported below.
package apdeepsense

import (
	"io"

	"github.com/apdeepsense/apdeepsense/internal/cluster"
	"github.com/apdeepsense/apdeepsense/internal/compile"
	"github.com/apdeepsense/apdeepsense/internal/conv"
	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/datasets"
	"github.com/apdeepsense/apdeepsense/internal/edison"
	"github.com/apdeepsense/apdeepsense/internal/experiments"
	"github.com/apdeepsense/apdeepsense/internal/hashkey"
	"github.com/apdeepsense/apdeepsense/internal/mcdrop"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/obs"
	"github.com/apdeepsense/apdeepsense/internal/qprop"
	"github.com/apdeepsense/apdeepsense/internal/quantize"
	"github.com/apdeepsense/apdeepsense/internal/rdeepsense"
	"github.com/apdeepsense/apdeepsense/internal/registry"
	"github.com/apdeepsense/apdeepsense/internal/rnn"
	"github.com/apdeepsense/apdeepsense/internal/serve"
	"github.com/apdeepsense/apdeepsense/internal/session"
	"github.com/apdeepsense/apdeepsense/internal/stats"
	"github.com/apdeepsense/apdeepsense/internal/stream"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
	"github.com/apdeepsense/apdeepsense/internal/train"
)

// Core model vocabulary.
type (
	// Vector is a dense float64 vector.
	Vector = tensor.Vector
	// Matrix is a dense row-major float64 matrix.
	Matrix = tensor.Matrix
	// Network is a fully-connected neural network with dropout.
	Network = nn.Network
	// NetworkConfig describes a network to construct.
	NetworkConfig = nn.Config
	// Activation identifies a layer non-linearity.
	Activation = nn.Activation
	// GaussianVec is a diagonal Gaussian predictive distribution.
	GaussianVec = core.GaussianVec
	// Estimator is the common contract of all uncertainty estimators.
	Estimator = core.Estimator
	// Options configures the ApDeepSense propagator (PWL piece counts).
	Options = core.Options
)

// Activation values.
const (
	ActIdentity = nn.ActIdentity
	ActReLU     = nn.ActReLU
	ActTanh     = nn.ActTanh
	ActSigmoid  = nn.ActSigmoid
)

// NewNetwork constructs a freshly initialized dropout network.
func NewNetwork(cfg NetworkConfig) (*Network, error) { return nn.New(cfg) }

// ErrModel matches (via errors.Is) every error LoadModel or ReadModel
// returns for malformed model data — undecodable streams, wrong magic or
// version, inconsistent shapes, or non-finite weights — as opposed to I/O
// failures opening the file.
var ErrModel = nn.ErrModel

// LoadModel reads a serialized network from a file.
func LoadModel(path string) (*Network, error) { return nn.LoadFile(path) }

// ReadModel reads a serialized network from a reader.
func ReadModel(r io.Reader) (*Network, error) { return nn.Load(r) }

// New builds the ApDeepSense estimator for a dropout-trained network with no
// observation-noise floor. Use NewWithObsVar to add one. Trailing options
// (e.g. WithWorkers) configure the underlying Propagator.
func New(net *Network, opts Options, extra ...PropagatorOption) (*core.ApDeepSense, error) {
	return core.NewApDeepSense(net, opts, 0, extra...)
}

// NewWithObsVar builds the ApDeepSense estimator with an observation-noise
// variance added to every predictive variance.
func NewWithObsVar(net *Network, opts Options, obsVar float64, extra ...PropagatorOption) (*core.ApDeepSense, error) {
	return core.NewApDeepSense(net, opts, obsVar, extra...)
}

// NewMCDrop builds the MCDrop-k sampling baseline over the same network.
// Trailing options (e.g. WithMCDropWorkers) configure the sampler fan-out.
func NewMCDrop(net *Network, k int, obsVar float64, seed int64, opts ...MCDropOption) (*mcdrop.Estimator, error) {
	return mcdrop.New(net, k, obsVar, seed, opts...)
}

// Parallelism options.
type (
	// PropagatorOption configures optional Propagator behavior.
	PropagatorOption = core.Option
	// MCDropOption configures optional MCDrop sampler behavior.
	MCDropOption = mcdrop.Option
)

// Worker-bound options for the two estimators.
var (
	// WithWorkers bounds the batched-propagation fan-out (default GOMAXPROCS;
	// 1 forces the single-threaded path).
	WithWorkers = core.WithWorkers
	// WithMCDropWorkers bounds how many goroutines MCDrop's Predict fans its
	// k passes across (default GOMAXPROCS; 1 restores the sequential
	// single-stream sampler exactly).
	WithMCDropWorkers = mcdrop.WithWorkers
)

// Estimator internals exposed for serving-path integration.
type (
	// ApDeepSenseEstimator is the concrete estimator returned by New; it
	// exposes the underlying Propagator for hook attachment and ablations.
	ApDeepSenseEstimator = core.ApDeepSense
	// Propagator is the closed-form moment-propagation engine.
	Propagator = core.Propagator
	// PropagatorHooks carries the optional observability callbacks a
	// Propagator invokes (per-layer wall time, batch sizes, scratch-pool
	// reuse). Attach with Propagator.SetHooks; nil hooks cost nothing on
	// the hot path.
	PropagatorHooks = core.Hooks
)

// Observability re-exports (internal/obs): the dependency-free metrics
// registry (Prometheus text exposition) and per-request trace spans used by
// examples/server and cmd/apds-bench -obs.
type (
	// ObsRegistry holds metric families and renders Prometheus text format.
	ObsRegistry = obs.Registry
	// ObsCounter is a monotonically increasing metric.
	ObsCounter = obs.Counter
	// ObsGauge is a metric that can go up and down.
	ObsGauge = obs.Gauge
	// ObsHistogram buckets observations (exponential latency layouts).
	ObsHistogram = obs.Histogram
	// ObsCounterVec is a counter family with a fixed label schema.
	ObsCounterVec = obs.CounterVec
	// ObsGaugeVec is a gauge family with a fixed label schema.
	ObsGaugeVec = obs.GaugeVec
	// ObsHistogramVec is a histogram family with a fixed label schema.
	ObsHistogramVec = obs.HistogramVec
	// ObsTrace is a lightweight per-request span collector.
	ObsTrace = obs.Trace
	// ObsSpan is one finished timed section of a trace.
	ObsSpan = obs.Span
)

// Observability constructors and bucket layouts.
var (
	// NewObsRegistry returns an empty metrics registry.
	NewObsRegistry = obs.NewRegistry
	// NewObsTrace starts a trace identified by a request ID.
	NewObsTrace = obs.NewTrace
	// ObsExpBuckets builds exponential histogram bucket bounds.
	ObsExpBuckets = obs.ExpBuckets
	// ObsLatencyBuckets is the default request-latency bucket layout.
	ObsLatencyBuckets = obs.LatencyBuckets
)

// Batch inference vocabulary: estimators implementing BatchPredictor get the
// matrix-level fast path (one blocked matrix–matrix pass per layer for the
// whole batch); everything else falls back to a worker-pool fan-out.
type (
	// GaussianBatch is a batch of diagonal Gaussians as B×D moment matrices.
	GaussianBatch = core.GaussianBatch
	// BatchPredictor is the batched counterpart of Estimator.Predict.
	BatchPredictor = core.BatchPredictor
	// BatchProbsPredictor is the batched counterpart of PredictProbs.
	BatchProbsPredictor = core.BatchProbsPredictor
)

// Batch inference over any estimator (fast path or worker-pool fan-out).
var (
	// PredictBatch runs Predict over a batch of inputs, using the
	// matrix-level fast path when the estimator supports it.
	PredictBatch = core.PredictBatch
	// PredictProbsBatch runs PredictProbs over a batch the same way.
	PredictProbsBatch = core.PredictProbsBatch
	// NewGaussianBatch allocates a zero batch of b Gaussians of dimension d.
	NewGaussianBatch = core.NewGaussianBatch
)

// Compiled-propagator re-exports (internal/compile): load-time specialization
// of the whole network into fused per-layer closures — weights and their
// squares pre-packed into cache-blocked panels, activation knots baked in,
// scratch sized once. A compiled program's outputs are bit-identical to the
// interpreted propagator (Warm proves it before installation); batch
// propagation dispatches to it transparently once installed. The model
// registry compiles versions automatically; direct users do:
//
//	prog, _ := CompileProgram(est.Propagator(), 64)
//	_ = prog.Warm(est.Propagator()) // bit-identity self-check
//	est.Propagator().SetCompiled(prog)
type (
	// CompiledProgram is a network specialized at load time for a max batch.
	CompiledProgram = compile.Program
	// CompiledBatch is the interface batch dispatch accepts via SetCompiled.
	CompiledBatch = core.CompiledBatch
)

// CompileProgram specializes p's network into a compiled program covering
// batches of 1..maxBatch rows.
var CompileProgram = compile.Compile

// Quantized propagation re-exports (internal/qprop): moment propagation run
// directly on int8 weight codes with fixed-point accumulation — an
// approximation held to the oracle's a-priori quantization error budget, not
// a bit-identical specialization. The model registry builds these for
// versions that opt in (ModelRegistryConfig.EnableQuantized, SetQuantized,
// or "quantized": true in the manifest); direct users do:
//
//	qp, _, _ := QuantizeProgram(net, apdeepsense.Options{})
//	est.Propagator().SetQuantized(qp) // takes dispatch priority everywhere
type (
	// QuantizedPropagator is a fixed-point propagation program.
	QuantizedPropagator = qprop.Propagator
	// QuantizedProgram is the interface dispatch accepts via SetQuantized.
	QuantizedProgram = core.QuantizedProgram
)

// QuantizeProgram quantizes net to int8 and builds its fixed-point
// propagation program (the quantized model is returned alongside); it fails
// rather than install codes that cannot represent the weights (non-finite
// or overflowing scales).
func QuantizeProgram(net *Network, opts Options) (*qprop.Propagator, *quantize.Model, error) {
	return qprop.Build(net, opts)
}

// Serving re-exports (internal/serve): the dynamic micro-batching layer that
// coalesces concurrent single-row predict requests onto the batched
// moment-propagation fast path. A coalesced request's result is bit-identical
// to calling the estimator directly; under load, requests arriving together
// share one matrix-level pass per layer.
type (
	// ServeConfig tunes a coalescer (batch cap, latency budget, queue bound).
	ServeConfig = serve.Config
	// ServeMetrics instruments a coalescer into an ObsRegistry.
	ServeMetrics = serve.Metrics
	// ServeQueueFullError is the typed queue-full rejection carrying the
	// observed depth and a retry budget (matches ErrServeQueueFull).
	ServeQueueFullError = serve.QueueFullError
	// PredictCoalescer coalesces Predict calls onto the batched fast path.
	PredictCoalescer = serve.PredictCoalescer
	// ProbsCoalescer coalesces PredictProbs calls the same way.
	ProbsCoalescer = serve.ProbsCoalescer
)

// Serving constructors and error classes.
var (
	// NewPredictCoalescer builds a coalescer flushing into PredictBatch.
	NewPredictCoalescer = serve.NewPredict
	// NewPredictKeyedCoalescer builds a coalescer whose queue is split into
	// per-tenant FIFOs drained by weighted round-robin, so one hot tenant
	// cannot starve the rest (ServeConfig.TenantWeights/TenantQueueDepth).
	NewPredictKeyedCoalescer = serve.NewPredictKeyed
	// NewProbsCoalescer builds a coalescer flushing into PredictProbsBatch.
	NewProbsCoalescer = serve.NewPredictProbs
	// NewServeMetrics registers coalescer metrics on a registry.
	NewServeMetrics = serve.NewMetrics
	// ErrServeQueueFull marks rejected requests under overload (HTTP 429).
	ErrServeQueueFull = serve.ErrQueueFull
	// ServeRetryAfter extracts the retry budget from a queue-full rejection
	// anywhere in an error chain (HTTP servers render it as Retry-After).
	ServeRetryAfter = serve.RetryAfter
	// ErrServeClosed marks requests arriving after shutdown began.
	ErrServeClosed = serve.ErrClosed
)

// Model-registry re-exports (internal/registry): multi-model serving with
// versioned atomic hot-swap, shadow/canary traffic policies, and per-version
// coalescer pools. The "Model" prefix keeps these distinct from the metrics
// ObsRegistry above.
type (
	// ModelRegistry maps model names to ordered, individually-poolable
	// versions and routes requests through atomic route-table snapshots.
	ModelRegistry = registry.Registry
	// ModelRegistryConfig configures a ModelRegistry (shared serve/propagator
	// options, shadow pool sizing, metrics).
	ModelRegistryConfig = registry.Config
	// ModelRegistryMetrics is the registry's observability surface.
	ModelRegistryMetrics = registry.Metrics
	// ModelVersion is one immutable loaded version of a model.
	ModelVersion = registry.Version
	// ModelServed tags a response with the model/version/route that served it.
	ModelServed = registry.Served
	// ModelManifest is the on-disk description of models, versions, and
	// traffic policy.
	ModelManifest = registry.Manifest
	// ModelManifestModel is one model entry in a manifest.
	ModelManifestModel = registry.ManifestModel
	// ModelManifestVersion names one serialized model file in a manifest.
	ModelManifestVersion = registry.ManifestVersion
	// ModelManifestCanary is a manifest's weighted candidate split.
	ModelManifestCanary = registry.ManifestCanary
	// ModelManifestSessions is a manifest's resident session-fleet block.
	ModelManifestSessions = registry.ManifestSessions
	// ModelManifestLoader ties a registry to a manifest file: explicit
	// reloads plus a poll-based watch loop.
	ModelManifestLoader = registry.Loader
	// ModelStatus reports one model's routing and versions.
	ModelStatus = registry.ModelStatus
	// ModelVersionStatus reports one registered version.
	ModelVersionStatus = registry.VersionStatus
)

// Model-registry constructors, routes, and error classes.
var (
	// NewModelRegistry builds an empty registry.
	NewModelRegistry = registry.New
	// NewModelRegistryMetrics registers the registry metric families.
	NewModelRegistryMetrics = registry.NewMetrics
	// NewModelManifestLoader builds a manifest loader for a registry.
	NewModelManifestLoader = registry.NewLoader
	// LoadModelManifest reads and validates a manifest file.
	LoadModelManifest = registry.LoadManifest
	// ModelRouteCurrent labels responses served by the current version.
	ModelRouteCurrent = registry.RouteCurrent
	// ModelRouteCanary labels responses served by the canary split.
	ModelRouteCanary = registry.RouteCanary
	// ErrModelNotFound marks requests for unknown models or versions (404).
	ErrModelNotFound = registry.ErrNotFound
	// ErrModelNotReady marks models with no routable current version (503).
	ErrModelNotReady = registry.ErrNotReady
	// ErrModelRegistry marks invalid registry operations.
	ErrModelRegistry = registry.ErrRegistry
	// ErrModelRegistryClosed marks requests after registry shutdown began.
	ErrModelRegistryClosed = registry.ErrClosed
	// ErrModelManifest marks unreadable or inconsistent manifests.
	ErrModelManifest = registry.ErrManifest
)

// Convolutional extension re-exports (paper §VI future work, internal/conv).
type (
	// Seq is a time-series tensor for Conv1D models.
	Seq = conv.Seq
	// Conv1D is a 1-D convolution layer with channel dropout.
	Conv1D = conv.Conv1D
	// ConvNet is a hybrid conv → pool → dense network with end-to-end
	// moment propagation.
	ConvNet = conv.Net
	// ConvSample is one supervised time-series example.
	ConvSample = conv.Sample
	// ConvTrainConfig controls TrainConvNet.
	ConvTrainConfig = conv.TrainConfig
)

// Convolutional constructors and training.
var (
	// NewSeq allocates a zero time-series tensor.
	NewSeq = conv.NewSeq
	// NewConv1D builds a Glorot-initialized conv layer.
	NewConv1D = conv.NewConv1D
	// NewConvNet assembles conv layers and a dense head.
	NewConvNet = conv.NewNet
	// TrainConvNet fits a hybrid network with minibatch SGD.
	TrainConvNet = conv.Train
)

// Recurrent extension re-exports (paper §VI future work, internal/rnn).
type (
	// RNNCell is an Elman recurrence with recurrent (per-sequence) dropout.
	RNNCell = rnn.Cell
	// RNNSample is one supervised sequence example.
	RNNSample = rnn.Sample
	// RNNTrainConfig controls TrainRNN.
	RNNTrainConfig = rnn.TrainConfig
)

// Recurrent constructors and training.
var (
	// NewRNNCell builds a Glorot-initialized recurrent cell.
	NewRNNCell = rnn.NewCell
	// TrainRNN fits a cell with BPTT and variational recurrent dropout.
	TrainRNN = rnn.Train
	// NewGRU builds a gated recurrent unit with recurrent dropout.
	NewGRU = rnn.NewGRU
	// TrainGRU fits a GRU with BPTT and variational recurrent dropout.
	TrainGRU = rnn.TrainGRU
)

// GRU is a gated recurrent unit with moment propagation through its gates.
type GRU = rnn.GRU

// LSTM is a long short-term memory cell (the architecture of Gal &
// Ghahramani's variational RNN, the paper's [37]) with moment propagation.
type LSTM = rnn.LSTM

// LSTM constructors and training.
var (
	// NewLSTM builds an LSTM with recurrent dropout and forget bias +1.
	NewLSTM = rnn.NewLSTM
	// TrainLSTM fits an LSTM with BPTT and variational recurrent dropout.
	TrainLSTM = rnn.TrainLSTM
)

// Sequence uncertainty estimators: the conv/RNN/GRU moment-propagation
// paths behind the same Predict contract as the dense ApDeepSense
// estimator, servable through the model registry via AddVersionEstimator.
type (
	// ConvEstimator predicts mean and variance for fixed-length
	// time-series inputs through a ConvNet's moment propagation.
	ConvEstimator = conv.Estimator
	// RNNEstimator predicts through an Elman cell's step-wise moments.
	RNNEstimator = rnn.Estimator
	// GRUEstimator predicts through a GRU's step-wise moments.
	GRUEstimator = rnn.GRUEstimator
)

// Sequence estimator constructors.
var (
	// NewConvEstimator wraps a ConvNet for steps-long inputs.
	NewConvEstimator = conv.NewEstimator
	// NewRNNEstimator wraps an Elman cell for steps-long inputs.
	NewRNNEstimator = rnn.NewEstimator
	// NewGRUEstimator wraps a GRU for steps-long inputs.
	NewGRUEstimator = rnn.NewGRUEstimator
)

// MomentMode selects the activation-moment backend a layer is propagated
// with: MomentsAuto (exact for rectifiers, PWL otherwise), MomentsPWL, or
// MomentsExact. Settable per layer, per propagator (Options), and per
// registry model ("activation_moments" in the manifest).
type MomentMode = nn.MomentMode

// Activation-moment backend modes.
const (
	// MomentsAuto defers to the default: exact for rectifiers, PWL else.
	MomentsAuto = nn.MomentsAuto
	// MomentsPWL forces the piecewise-linear closed form.
	MomentsPWL = nn.MomentsPWL
	// MomentsExact forces the exact analytical moments (rectifiers only;
	// a build error elsewhere).
	MomentsExact = nn.MomentsExact
)

// Exact rectified-Gaussian moments and the manifest-string parser.
var (
	// RectifiedMoments returns the exact mean and variance of
	// max(0, X) for X ~ N(mu, sigma²).
	RectifiedMoments = stats.RectifiedMoments
	// LeakyRectifiedMoments is the leaky-ReLU generalization.
	LeakyRectifiedMoments = stats.LeakyRectifiedMoments
	// ParseMomentMode converts "auto" | "pwl" | "exact" to a MomentMode.
	ParseMomentMode = nn.ParseMomentMode
)

// Streaming inference re-exports (internal/stream).
type (
	// Windower slices continuous sensor samples into sliding windows.
	Windower = stream.Windower
	// OnlineStandardizer z-scores vectors against running statistics.
	OnlineStandardizer = stream.OnlineStandardizer
	// Gate converts predictive variance into accept/escalate decisions.
	Gate = stream.Gate
	// StreamPipeline chains windowing, standardization, an estimator, and
	// a gate into a push-based predictor.
	StreamPipeline = stream.Pipeline
	// StreamResult is one emitted pipeline prediction.
	StreamResult = stream.Result
)

// Streaming constructors.
var (
	// NewWindower builds a sliding windower.
	NewWindower = stream.NewWindower
	// NewOnlineStandardizer tracks running input statistics.
	NewOnlineStandardizer = stream.NewOnlineStandardizer
	// NewGate bounds the mean predictive standard deviation.
	NewGate = stream.NewGate
	// NewGateWithHysteresis bounds the mean predictive standard deviation
	// with consecutive-window escalate/readmit streaks (NewGate is the 1/1
	// special case).
	NewGateWithHysteresis = stream.NewGateWithHysteresis
	// NewStreamPipeline assembles a streaming predictor.
	NewStreamPipeline = stream.NewPipeline
)

// StreamDecision is the uncertainty gate's verdict for one prediction.
type StreamDecision = stream.Decision

// Gate decisions.
const (
	// StreamAccept means uncertainty is within budget.
	StreamAccept = stream.Accept
	// StreamEscalate means uncertainty exceeds the budget: defer to a
	// fallback (bigger model, cloud, human).
	StreamEscalate = stream.Escalate
)

// Session-fleet re-exports (internal/session): the resident device-session
// manager — per-device streaming state (windower ring, online-standardizer
// moments, surprisal statistics, calibrated drift gate) held in a sharded
// struct-of-arrays arena that sustains millions of resident sessions on one
// node, with timing-wheel idle eviction and whole-fleet snapshot/restore
// that continues every device's verdict stream bit for bit across restarts.
type (
	// SessionManager owns a fleet of resident device sessions.
	SessionManager = session.Manager
	// SessionConfig tunes a SessionManager (window shape, gate policy,
	// sharding, idle eviction, batching).
	SessionConfig = session.Config
	// SessionVerdict is one per-sample ingest outcome (prediction,
	// surprisal z, calibrated score, gate decision).
	SessionVerdict = session.Verdict
	// SessionStats is a point-in-time fleet counter snapshot.
	SessionStats = session.Stats
	// SessionSnapshotInfo summarizes one snapshot or restore pass.
	SessionSnapshotInfo = session.SnapshotInfo
	// SessionMetrics instruments a fleet into an ObsRegistry.
	SessionMetrics = session.Metrics
	// SessionCalibrator maps surprisal z-scores to calibrated scores via
	// isotonic interpolation.
	SessionCalibrator = session.Calibrator
	// SessionPredictBatchFunc is the batched model hook a SessionManager
	// predicts through (wrap a ModelRegistry for hot-swap-safe fleets).
	SessionPredictBatchFunc = session.PredictBatchFunc
)

// Session-fleet constructors and error classes.
var (
	// NewSessionManager builds a fleet manager over a batched predictor.
	NewSessionManager = session.NewManager
	// NewSessionMetrics registers the fleet metric families.
	NewSessionMetrics = session.NewMetrics
	// DefaultSessionCalibrator is the built-in logistic-derived isotonic
	// calibrator (score 0.9 at roughly 4.2 sigma).
	DefaultSessionCalibrator = session.DefaultCalibrator
	// FitIsotonicCalibrator fits a monotone calibrator to (z, target)
	// pairs by pool-adjacent-violators.
	FitIsotonicCalibrator = session.FitIsotonic
	// ErrSessionConfig marks invalid SessionConfig values.
	ErrSessionConfig = session.ErrConfig
	// ErrSessionClosed marks ingests after Close began.
	ErrSessionClosed = session.ErrClosed
	// ErrSessionEvicted marks a session evicted mid-prediction.
	ErrSessionEvicted = session.ErrEvicted
	// ErrSessionSnapshot marks unreadable, corrupt, or incompatible fleet
	// snapshots (and retryable mid-pass shrink races during Snapshot).
	ErrSessionSnapshot = session.ErrSnapshot
)

// Quantization re-exports (internal/quantize): int8 post-training weight
// quantization for flash-constrained deployment.
type (
	// QuantizedModel is an int8-quantized network.
	QuantizedModel = quantize.Model
)

// Quantization entry points.
var (
	// QuantizeModel converts a trained network to int8 codes.
	QuantizeModel = quantize.Quantize
	// LoadQuantized reads a quantized model from a reader.
	LoadQuantized = quantize.Load
)

// Training re-exports.
type (
	// TrainSample is one supervised example.
	TrainSample = train.Sample
	// TrainConfig controls Fit.
	TrainConfig = train.Config
	// TrainHistory records per-epoch losses.
	TrainHistory = train.History
)

// Fit trains a network in place (dropout masks sampled per example).
func Fit(net *Network, trainSet, valSet []TrainSample, cfg TrainConfig) (*TrainHistory, error) {
	return train.Fit(net, trainSet, valSet, cfg)
}

// Losses and optimizers for TrainConfig.
var (
	// NewAdam returns an Adam optimizer.
	NewAdam = train.NewAdam
	// NewSGD returns an SGD optimizer with momentum.
	NewSGD = train.NewSGD
)

// MSELoss returns the mean-squared-error training loss.
func MSELoss() train.Loss { return train.MSE{} }

// CrossEntropyLoss returns the fused softmax cross-entropy training loss.
func CrossEntropyLoss() train.Loss { return train.SoftmaxCrossEntropy{} }

// Dataset re-exports: the synthetic IoT tasks of the paper's evaluation.
type (
	// Dataset is a generated, split, standardized task.
	Dataset = datasets.Dataset
	// DatasetSize controls generated split sizes.
	DatasetSize = datasets.Size
)

// Synthetic task generators (see internal/datasets for the simulators).
var (
	// BPEst generates the blood-pressure waveform task.
	BPEst = datasets.BPEst
	// NYCommute generates the taxi commute-time task.
	NYCommute = datasets.NYCommute
	// GasSen generates the gas-mixture estimation task.
	GasSen = datasets.GasSen
	// HHAR generates the heterogeneous activity recognition task.
	HHAR = datasets.HHAR
)

// RDeepSense baseline re-exports.
type (
	// RDeepSenseEstimator is the retrained baseline estimator.
	RDeepSenseEstimator = rdeepsense.Estimator
	// RDeepSenseConfig controls RDeepSense retraining.
	RDeepSenseConfig = rdeepsense.TrainConfig
)

// RDeepSense training entry points.
var (
	// TrainRDeepSenseRegression retrains the regression baseline.
	TrainRDeepSenseRegression = rdeepsense.TrainRegression
	// TrainRDeepSenseClassification retrains the classification baseline.
	TrainRDeepSenseClassification = rdeepsense.TrainClassification
)

// Device cost model re-exports.
type (
	// Device models an Edison-class processor.
	Device = edison.Device
	// Cost is a hardware-independent inference cost.
	Cost = edison.Cost
)

// NewEdison returns the calibrated Intel Edison device model.
func NewEdison() *Device { return edison.NewEdison() }

// Experiment harness re-exports.
type (
	// ExperimentRunner regenerates the paper's tables and figures.
	ExperimentRunner = experiments.Runner
	// ExperimentScale trades fidelity for runtime.
	ExperimentScale = experiments.Scale
)

// Experiment scales and constructor.
var (
	// QuickScale is for smoke tests.
	QuickScale = experiments.QuickScale
	// DefaultScale is the recorded-results configuration.
	DefaultScale = experiments.DefaultScale
	// PaperScale matches the paper's 5-layer 512-wide networks.
	PaperScale = experiments.PaperScale
	// NewExperimentRunner builds a Runner.
	NewExperimentRunner = experiments.NewRunner
	// WithModelDir enables model caching for a Runner.
	WithModelDir = experiments.WithModelDir
	// WithExperimentLogf sets a Runner progress logger.
	WithExperimentLogf = experiments.WithLogf
)

// Cluster serving-tier re-exports (internal/cluster): the scale-out layer
// that shards request keys across replica processes behind one front door.
type (
	// ClusterRing is an immutable consistent-hash ring over shard names.
	ClusterRing = cluster.Ring
	// ClusterRouter is the front-door HTTP router: key-sharded proxying,
	// health probing, drain/rejoin, saturation spillover, and load shedding.
	ClusterRouter = cluster.Router
	// ClusterRouterConfig configures a ClusterRouter.
	ClusterRouterConfig = cluster.RouterConfig
	// ClusterMetrics is the router's observability surface.
	ClusterMetrics = cluster.Metrics
	// ClusterBudget is a token-bucket admission controller with Retry-After
	// pricing.
	ClusterBudget = cluster.Budget
	// ClusterZipf is a deterministic Zipf request-key generator for load
	// testing.
	ClusterZipf = cluster.Zipf
)

// Cluster constructors and hashing entry points.
var (
	// NewClusterRing builds a consistent-hash ring (vnodes <= 0 selects the
	// default of 128 per shard).
	NewClusterRing = cluster.NewRing
	// NewClusterRouter builds and starts a front-door router.
	NewClusterRouter = cluster.NewRouter
	// NewClusterMetrics registers the cluster metric families.
	NewClusterMetrics = cluster.NewMetrics
	// NewClusterBudget builds a token-bucket admission budget.
	NewClusterBudget = cluster.NewBudget
	// NewClusterZipf builds a seedable Zipf key generator.
	NewClusterZipf = cluster.NewZipf
	// HashKey64 is the avalanche-finished 64-bit key hash shared by the
	// ring and the registry's canary splitter.
	HashKey64 = hashkey.Hash64
	// HashKeyFraction maps a key to a uniform fraction in [0, 1).
	HashKeyFraction = hashkey.Fraction
)
