package apdeepsense_test

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	apds "github.com/apdeepsense/apdeepsense"
)

// TestFacadeEndToEnd drives the entire public API the way the README's
// quickstart does: build, train, save, load, and predict with both
// estimators, plus the device cost model.
func TestFacadeEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var samples []apds.TrainSample
	for i := 0; i < 400; i++ {
		x := rng.Float64()*2 - 1
		samples = append(samples, apds.TrainSample{
			X: apds.Vector{x},
			Y: apds.Vector{2 * x},
		})
	}

	net, err := apds.NewNetwork(apds.NetworkConfig{
		InputDim: 1, Hidden: []int{16, 16}, OutputDim: 1,
		Activation: apds.ActReLU, OutputActivation: apds.ActIdentity,
		KeepProb: 0.9, Seed: 1,
	})
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	if _, err := apds.Fit(net, samples, nil, apds.TrainConfig{
		Epochs: 20, BatchSize: 16, Seed: 2,
		Loss: apds.MSELoss(), Optimizer: apds.NewAdam(0.01),
	}); err != nil {
		t.Fatalf("Fit: %v", err)
	}

	// Save + reload through the facade.
	path := filepath.Join(t.TempDir(), "m.gob")
	if err := net.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	loaded, err := apds.LoadModel(path)
	if err != nil {
		t.Fatalf("LoadModel: %v", err)
	}

	est, err := apds.New(loaded, apds.Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	mc, err := apds.NewMCDrop(loaded, 200, 0, 3)
	if err != nil {
		t.Fatalf("NewMCDrop: %v", err)
	}

	x := apds.Vector{0.5}
	g, err := est.Predict(x)
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if math.Abs(g.Mean[0]-1.0) > 0.3 {
		t.Errorf("prediction %v, want ≈ 1.0", g.Mean[0])
	}
	if g.Var[0] < 0 {
		t.Errorf("negative variance %v", g.Var[0])
	}
	m, err := mc.Predict(x)
	if err != nil {
		t.Fatalf("MCDrop Predict: %v", err)
	}
	if math.Abs(g.Mean[0]-m.Mean[0]) > 0.2 {
		t.Errorf("ApDS mean %v vs MCDrop mean %v", g.Mean[0], m.Mean[0])
	}

	dev := apds.NewEdison()
	if dev.TimeMillis(est.Cost()) >= dev.TimeMillis(mc.Cost()) {
		t.Error("ApDeepSense should be cheaper than MCDrop-200")
	}
}

// TestFacadeDatasets exercises the dataset re-exports.
func TestFacadeDatasets(t *testing.T) {
	sz := apds.DatasetSize{Train: 40, Val: 10, Test: 10, Seed: 1}
	for name, gen := range map[string]func(apds.DatasetSize) (*apds.Dataset, error){
		"BPEst": apds.BPEst, "NYCommute": apds.NYCommute,
		"GasSen": apds.GasSen, "HHAR": apds.HHAR,
	} {
		d, err := gen(sz)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(d.Train) == 0 || len(d.Test) == 0 {
			t.Errorf("%s: empty splits", name)
		}
	}
}

// TestFacadeRDeepSense exercises the baseline trainer re-export.
func TestFacadeRDeepSense(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var samples []apds.TrainSample
	for i := 0; i < 300; i++ {
		x := rng.Float64()
		samples = append(samples, apds.TrainSample{
			X: apds.Vector{x},
			Y: apds.Vector{x + 0.1*rng.NormFloat64()},
		})
	}
	est, err := apds.TrainRDeepSenseRegression(samples, nil, 1, 1, apds.RDeepSenseConfig{
		Hidden: []int{12}, Activation: apds.ActTanh, KeepProb: 0.95,
		Epochs: 10, BatchSize: 16, LearningRate: 0.01, Seed: 3,
	})
	if err != nil {
		t.Fatalf("TrainRDeepSenseRegression: %v", err)
	}
	g, err := est.Predict(apds.Vector{0.5})
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if g.Var[0] <= 0 {
		t.Errorf("RDeepSense variance %v, want > 0", g.Var[0])
	}
}

// TestFacadeExperimentRunner smoke-tests the harness re-export.
func TestFacadeExperimentRunner(t *testing.T) {
	r, err := apds.NewExperimentRunner(apds.QuickScale, apds.WithModelDir(t.TempDir()))
	if err != nil {
		t.Fatalf("NewExperimentRunner: %v", err)
	}
	fig, err := r.Figure(3)
	if err != nil {
		t.Fatalf("Figure(3): %v", err)
	}
	if len(fig.Charts) != 2 {
		t.Errorf("charts = %d", len(fig.Charts))
	}
}

// TestFacadeMiscEntryPoints covers the remaining facade constructors.
func TestFacadeMiscEntryPoints(t *testing.T) {
	net, err := apds.NewNetwork(apds.NetworkConfig{
		InputDim: 2, Hidden: []int{4}, OutputDim: 2,
		Activation: apds.ActReLU, OutputActivation: apds.ActIdentity,
		KeepProb: 0.9, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := apds.ReadModel(&buf)
	if err != nil {
		t.Fatalf("ReadModel: %v", err)
	}
	if back.Params() != net.Params() {
		t.Error("ReadModel param mismatch")
	}
	est, err := apds.NewWithObsVar(net, apds.Options{}, 0.5)
	if err != nil {
		t.Fatalf("NewWithObsVar: %v", err)
	}
	g, err := est.Predict(apds.Vector{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range g.Var {
		if v < 0.5 {
			t.Errorf("obsVar floor missing: %v", v)
		}
	}
	if apds.CrossEntropyLoss().Name() != "softmax-xent" {
		t.Error("CrossEntropyLoss wrong")
	}
	// Quantization facade round trip.
	q, err := apds.QuantizeModel(net)
	if err != nil {
		t.Fatalf("QuantizeModel: %v", err)
	}
	buf.Reset()
	if err := q.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := apds.LoadQuantized(&buf); err != nil {
		t.Fatalf("LoadQuantized: %v", err)
	}
}
