package main

import (
	"path/filepath"
	"testing"

	"github.com/apdeepsense/apdeepsense/internal/datasets"
)

func TestGenerator(t *testing.T) {
	for _, task := range []string{"BPEst", "NYCommute", "GasSen", "HHAR"} {
		if _, err := generator(task); err != nil {
			t.Errorf("%s: %v", task, err)
		}
	}
	if _, err := generator("nope"); err == nil {
		t.Error("expected error for unknown task")
	}
}

func TestPick(t *testing.T) {
	d, err := datasets.NYCommute(datasets.Size{Train: 10, Val: 5, Test: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		split string
		want  int
	}{{"train", 10}, {"val", 5}, {"test", 5}} {
		s, err := pick(d, c.split)
		if err != nil {
			t.Fatalf("%s: %v", c.split, err)
		}
		if len(s) != c.want {
			t.Errorf("%s: %d samples, want %d", c.split, len(s), c.want)
		}
	}
	if _, err := pick(d, "all"); err == nil {
		t.Error("expected error for unknown split")
	}
}

func TestRunEndToEnd(t *testing.T) {
	out := filepath.Join(t.TempDir(), "ny.csv")
	err := run([]string{
		"-task", "NYCommute", "-split", "test", "-out", out,
		"-train", "20", "-val", "5", "-test", "10", "-seed", "3",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	samples, err := datasets.ReadCSVFile(out, 5, 1)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	if len(samples) != 10 {
		t.Errorf("exported %d samples, want 10", len(samples))
	}
	if err := run([]string{"-task", "NYCommute"}); err == nil {
		t.Error("expected error without -out")
	}
	if err := run([]string{"-out", out}); err == nil {
		t.Error("expected error without -task")
	}
}
