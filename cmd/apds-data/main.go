// Command apds-data generates a synthetic IoT dataset and exports a split
// to CSV — for inspecting the simulators, feeding external tooling, or
// seeding experiments with reproducible data.
//
// Usage:
//
//	apds-data -task GasSen -split test -out gassen-test.csv
//	apds-data -task BPEst -train 1000 -val 100 -test 200 -seed 7 -out bp.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/apdeepsense/apdeepsense/internal/datasets"
	"github.com/apdeepsense/apdeepsense/internal/train"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("apds-data: ")
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("apds-data", flag.ContinueOnError)
	task := fs.String("task", "", "task to generate: BPEst, NYCommute, GasSen, or HHAR (required)")
	split := fs.String("split", "train", "which split to export: train, val, or test")
	out := fs.String("out", "", "output CSV path (required)")
	trainN := fs.Int("train", 0, "training samples (0 = task default)")
	valN := fs.Int("val", 0, "validation samples (0 = task default)")
	testN := fs.Int("test", 0, "test samples (0 = task default)")
	seed := fs.Int64("seed", 1, "generator seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *task == "" || *out == "" {
		return fmt.Errorf("-task and -out are required")
	}

	gen, err := generator(*task)
	if err != nil {
		return err
	}
	d, err := gen(datasets.Size{Train: *trainN, Val: *valN, Test: *testN, Seed: *seed})
	if err != nil {
		return err
	}
	samples, err := pick(d, *split)
	if err != nil {
		return err
	}
	if err := datasets.WriteCSVFile(*out, samples); err != nil {
		return err
	}
	log.Printf("wrote %d %s/%s samples (%d inputs + %d targets per row) to %s",
		len(samples), d.Name, *split, d.InputDim, d.OutputDim, *out)
	return nil
}

func generator(task string) (func(datasets.Size) (*datasets.Dataset, error), error) {
	switch task {
	case "BPEst":
		return datasets.BPEst, nil
	case "NYCommute":
		return datasets.NYCommute, nil
	case "GasSen":
		return datasets.GasSen, nil
	case "HHAR":
		return datasets.HHAR, nil
	default:
		return nil, fmt.Errorf("unknown task %q (BPEst, NYCommute, GasSen, HHAR)", task)
	}
}

func pick(d *datasets.Dataset, split string) ([]train.Sample, error) {
	switch split {
	case "train":
		return d.Train, nil
	case "val":
		return d.Val, nil
	case "test":
		return d.Test, nil
	default:
		return nil, fmt.Errorf("unknown split %q (train, val, test)", split)
	}
}
