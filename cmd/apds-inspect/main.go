// Command apds-inspect prints a serialized model's architecture, parameter
// counts, and the modeled Intel Edison cost of every uncertainty estimator
// over it — the quick "what will this cost on-device?" check.
//
// Usage:
//
//	apds-inspect -model models/BPEst-relu-dropout-default.gob
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/edison"
	"github.com/apdeepsense/apdeepsense/internal/mcdrop"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("apds-inspect: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("apds-inspect", flag.ContinueOnError)
	modelPath := fs.String("model", "", "path to a serialized network (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" {
		return fmt.Errorf("-model is required")
	}
	net, err := nn.LoadFile(*modelPath)
	if err != nil {
		return err
	}
	return inspect(net, out)
}

func inspect(net *nn.Network, out *os.File) error {
	fmt.Fprintf(out, "architecture: %s\n", net.Summary())
	fmt.Fprintf(out, "parameters:   %d\n", net.Params())
	fmt.Fprintf(out, "forward FLOPs: %d (deterministic), %d (one dropout sample)\n\n",
		net.ForwardFLOPs(), net.SampleFLOPs())

	layers := &report.Table{
		Title:   "Layers",
		Headers: []string{"#", "shape", "activation", "keep", "params"},
	}
	for i, l := range net.Layers() {
		layers.AddRow(
			fmt.Sprint(i),
			fmt.Sprintf("%dx%d", l.InDim(), l.OutDim()),
			l.Act.String(),
			fmt.Sprintf("%g", l.KeepProb),
			fmt.Sprint(l.W.Rows*l.W.Cols+len(l.B)),
		)
	}
	text, err := layers.Render()
	if err != nil {
		return err
	}
	fmt.Fprintln(out, text)

	device := edison.NewEdison()
	costs := &report.Table{
		Title:   fmt.Sprintf("Modeled per-inference cost (%s)", device.Name),
		Headers: []string{"estimator", "time ms", "energy mJ", "vs MCDrop-50"},
	}
	apds, err := core.NewApDeepSense(net, core.Options{}, 0)
	if err != nil {
		return err
	}
	ests := []core.Estimator{apds}
	for _, k := range []int{3, 5, 10, 30, 50} {
		mc, err := mcdrop.New(net, k, 0, 1)
		if err != nil {
			return err
		}
		ests = append(ests, mc)
	}
	ref := device.TimeMillis(ests[len(ests)-1].Cost())
	for _, est := range ests {
		t := device.TimeMillis(est.Cost())
		costs.AddRow(
			est.Name(),
			fmt.Sprintf("%.2f", t),
			fmt.Sprintf("%.2f", device.EnergyMillijoules(est.Cost())),
			fmt.Sprintf("%.1f%%", 100*t/ref),
		)
	}
	text, err = costs.Render()
	if err != nil {
		return err
	}
	fmt.Fprintln(out, text)
	return nil
}
