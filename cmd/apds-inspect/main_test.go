package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/apdeepsense/apdeepsense/internal/nn"
)

func TestRunInspect(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.gob")
	net, err := nn.New(nn.Config{
		InputDim: 3, Hidden: []int{8, 8}, OutputDim: 2,
		Activation: nn.ActTanh, OutputActivation: nn.ActIdentity,
		KeepProb: 0.9, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	out, err := os.CreateTemp(dir, "out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	if err := run([]string{"-model", path}, out); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{"architecture:", "parameters:", "ApDeepSense", "MCDrop-50", "8x8", "tanh"} {
		if !strings.Contains(text, want) {
			t.Errorf("inspect output missing %q", want)
		}
	}
}

func TestRunInspectErrors(t *testing.T) {
	if err := run(nil, os.Stdout); err == nil {
		t.Error("expected error without -model")
	}
	if err := run([]string{"-model", "/nonexistent.gob"}, os.Stdout); err == nil {
		t.Error("expected error for missing model")
	}
}
