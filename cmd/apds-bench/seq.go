package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"github.com/apdeepsense/apdeepsense/internal/conv"
	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/report"
	"github.com/apdeepsense/apdeepsense/internal/rnn"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// seqDenseEntry is the exact-versus-PWL cost-parity row of BENCH_seq.json:
// the same rectifier network propagated under both activation backends. The
// backends compute the same function (proven bit-tight in proptest), so
// this records that choosing exact costs nothing — the acceptance criterion
// for defaulting rectifiers to the exact closed form.
type seqDenseEntry struct {
	Network          string  `json:"network"`
	ExactNsPerSample float64 `json:"exact_ns_per_sample"`
	PWLNsPerSample   float64 `json:"pwl_ns_per_sample"`
	ExactVsPWLRatio  float64 `json:"exact_vs_pwl_ratio"`
}

// seqPathEntry is one sequence-workload row: the conv, Elman, and GRU
// moment-propagation fast paths on representative IoT-scale models.
type seqPathEntry struct {
	Path           string  `json:"path"`
	Shape          string  `json:"shape"`
	Steps          int     `json:"steps"`
	NsPerSample    float64 `json:"ns_per_sample"`
	NsPerStep      float64 `json:"ns_per_step"`
	SamplesPerSec  float64 `json:"samples_per_sec"`
	DenseFLOPs     int64   `json:"dense_flops"`
	ElementOps     int64   `json:"element_ops"`
	MomentsBackend string  `json:"moments_backend"`
}

type seqBenchReport struct {
	GOMAXPROCS int             `json:"gomaxprocs"`
	Timestamp  string          `json:"timestamp"`
	Dense      []seqDenseEntry `json:"dense_cost_parity"`
	Paths      []seqPathEntry  `json:"sequence_paths"`
}

// emitSeqBench measures (a) exact-versus-PWL activation backend cost parity
// on dense rectifier reference nets and (b) the conv/RNN/GRU sequence
// moment-propagation paths. Results print as a table and land in
// BENCH_seq.json under dir.
func emitSeqBench(dir string) error {
	rep := seqBenchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
	tbl := &report.Table{
		Title:   "Sequence paths and exact-vs-PWL activation backend",
		Headers: []string{"path", "shape", "µs/sample", "ns/step", "samples/s"},
	}
	rng := rand.New(rand.NewSource(11))

	// --- Dense cost parity: same weights, both backends. ---
	for _, cfg := range []struct {
		name   string
		hidden []int
	}{
		{"5-64-64-1", []int{64, 64}},
		{"5-256-256-1", []int{256, 256}},
	} {
		net, err := nn.New(nn.Config{
			InputDim: 5, Hidden: cfg.hidden, OutputDim: 1,
			Activation: nn.ActReLU, OutputActivation: nn.ActIdentity,
			KeepProb: 0.9, Seed: 1,
		})
		if err != nil {
			return fmt.Errorf("seq bench: %w", err)
		}
		g := core.NewGaussianVec(net.InputDim())
		for i := range g.Mean {
			g.Mean[i] = rng.NormFloat64()
			g.Var[i] = rng.Float64()
		}
		perMode := map[nn.MomentMode]float64{}
		for _, mode := range []nn.MomentMode{nn.MomentsExact, nn.MomentsPWL} {
			prop, err := core.NewPropagator(net, core.Options{ActivationMoments: mode})
			if err != nil {
				return fmt.Errorf("seq bench: %w", err)
			}
			perMode[mode] = timePerBatch(func() error {
				_, err := prop.PropagateFrom(g.Clone())
				return err
			})
		}
		e := seqDenseEntry{
			Network:          cfg.name,
			ExactNsPerSample: perMode[nn.MomentsExact],
			PWLNsPerSample:   perMode[nn.MomentsPWL],
			ExactVsPWLRatio:  perMode[nn.MomentsExact] / perMode[nn.MomentsPWL],
		}
		rep.Dense = append(rep.Dense, e)
		tbl.AddRow("dense/exact", cfg.name, fmt.Sprintf("%.1f", e.ExactNsPerSample/1e3), "-",
			fmt.Sprintf("%.0f", 1e9/e.ExactNsPerSample))
		tbl.AddRow("dense/pwl", cfg.name, fmt.Sprintf("%.1f", e.PWLNsPerSample/1e3), "-",
			fmt.Sprintf("%.0f", 1e9/e.PWLNsPerSample))
	}

	// --- Conv path. ---
	const convSteps = 64
	convNet, err := buildSeqConvNet()
	if err != nil {
		return err
	}
	x := conv.NewSeq(convSteps, 3)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	convNs := timePerBatch(func() error {
		_, err := convNet.PropagateMoments(x)
		return err
	})
	convCost, err := convNet.Cost(convSteps)
	if err != nil {
		return err
	}
	rep.Paths = append(rep.Paths, seqPathEntry{
		Path: "conv1d", Shape: "3ch k3/s1·32 + k3/s2·48 + head 48-64-4", Steps: convSteps,
		NsPerSample: convNs, NsPerStep: convNs / convSteps, SamplesPerSec: 1e9 / convNs,
		DenseFLOPs: convCost.DenseFLOPs, ElementOps: convCost.ElementOps,
		MomentsBackend: "exact",
	})

	// --- Elman cell path. ---
	const rnnSteps = 64
	cell, err := rnn.NewCell(8, 64, 4, nn.ActReLU, 0.9, rng)
	if err != nil {
		return err
	}
	xs := make([]tensor.Vector, rnnSteps)
	for t := range xs {
		xs[t] = make(tensor.Vector, 8)
		for i := range xs[t] {
			xs[t][i] = rng.NormFloat64()
		}
	}
	cellNs := timePerBatch(func() error {
		_, err := cell.PropagateMoments(xs)
		return err
	})
	cellProp, err := cell.NewProp()
	if err != nil {
		return err
	}
	cellCost, err := rnn.NewEstimator(cell, rnnSteps, 0)
	if err != nil {
		return err
	}
	rep.Paths = append(rep.Paths, seqPathEntry{
		Path: "rnn-cell", Shape: "8-64-4 relu", Steps: rnnSteps,
		NsPerSample: cellNs, NsPerStep: cellNs / rnnSteps, SamplesPerSec: 1e9 / cellNs,
		DenseFLOPs: cellCost.Cost().DenseFLOPs, ElementOps: cellCost.Cost().ElementOps,
		MomentsBackend: map[bool]string{true: "exact", false: "pwl"}[cellProp.MomentsExact()],
	})

	// --- GRU path. ---
	gru, err := rnn.NewGRU(8, 48, 4, 0.9, rng)
	if err != nil {
		return err
	}
	gruNs := timePerBatch(func() error {
		_, err := gru.PropagateMoments(xs)
		return err
	})
	gruCost, err := rnn.NewGRUEstimator(gru, rnnSteps, 0)
	if err != nil {
		return err
	}
	rep.Paths = append(rep.Paths, seqPathEntry{
		Path: "gru", Shape: "8-48-4", Steps: rnnSteps,
		NsPerSample: gruNs, NsPerStep: gruNs / rnnSteps, SamplesPerSec: 1e9 / gruNs,
		DenseFLOPs: gruCost.Cost().DenseFLOPs, ElementOps: gruCost.Cost().ElementOps,
		MomentsBackend: "pwl",
	})

	for _, e := range rep.Paths {
		tbl.AddRow(e.Path, e.Shape, fmt.Sprintf("%.1f", e.NsPerSample/1e3),
			fmt.Sprintf("%.0f", e.NsPerStep), fmt.Sprintf("%.0f", e.SamplesPerSec))
	}
	for _, d := range rep.Dense {
		tbl.Notes = append(tbl.Notes, fmt.Sprintf(
			"%s: exact/PWL cost ratio %.2fx (parity by construction: both are O(1) closed forms per unit)",
			d.Network, d.ExactVsPWLRatio))
	}

	text, err := tbl.Render()
	if err != nil {
		return err
	}
	fmt.Println(text)
	js, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "BENCH_seq.json"), append(js, '\n'), 0o644)
}

// buildSeqConvNet is the representative IoT conv stack for the sequence
// benchmark: two strided conv layers over a 3-channel signal and a small
// dense head.
func buildSeqConvNet() (*conv.Net, error) {
	rng := rand.New(rand.NewSource(13))
	c1, err := conv.NewConv1D(3, 3, 32, 1, nn.ActReLU, 0.9, rng)
	if err != nil {
		return nil, err
	}
	c2, err := conv.NewConv1D(3, 32, 48, 2, nn.ActLeakyReLU, 0.9, rng)
	if err != nil {
		return nil, err
	}
	head, err := nn.New(nn.Config{
		InputDim: 48, Hidden: []int{64}, OutputDim: 4,
		Activation: nn.ActReLU, OutputActivation: nn.ActIdentity,
		KeepProb: 0.9, Seed: 17,
	})
	if err != nil {
		return nil, err
	}
	return conv.NewNet([]*conv.Conv1D{c1, c2}, head)
}
