// Command apds-bench regenerates the paper's evaluation artifacts: Tables
// I–IV (model quality) and Figures 1–9 (distribution evidence, inference
// time/energy, energy-vs-NLL tradeoffs). Results print to stdout and are
// also written under -results as .txt and .csv files.
//
// Usage:
//
//	apds-bench -all                      # everything (trains models on first run)
//	apds-bench -table 1                  # one table
//	apds-bench -fig 2                    # one figure
//	apds-bench -scale quick -all         # fast smoke run
//	apds-bench -batch                    # batched-vs-sequential propagation benchmark
//	apds-bench -batch -obs               # same, plus a metrics snapshot (BENCH_obs.prom)
//	apds-bench -serve                    # coalesced-vs-per-request serving benchmark
//	apds-bench -registry                 # registry serving under continuous hot-swap
//	apds-bench -sessions                 # resident session fleet: 1M sessions, snapshot/restore, churn
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/apdeepsense/apdeepsense/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("apds-bench: ")
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("apds-bench", flag.ContinueOnError)
	scaleName := fs.String("scale", "default", "experiment scale: quick, default, or paper")
	modelDir := fs.String("models", "models", "directory of trained model files")
	resultDir := fs.String("results", "results", "directory for result artifacts")
	tableN := fs.Int("table", 0, "regenerate one table (1-4)")
	figN := fs.Int("fig", 0, "regenerate one figure (1-9)")
	all := fs.Bool("all", false, "regenerate every table and figure")
	ablations := fs.Bool("ablations", false, "also run the ablation studies (PWL pieces, softmax link, variance bias)")
	verify := fs.Bool("verify", false, "check the paper's qualitative claims against measured results")
	batch := fs.Bool("batch", false, "benchmark batched vs per-sample moment propagation (writes BENCH_batch.json)")
	serveBench := fs.Bool("serve", false, "benchmark coalesced vs per-request serving under closed-loop load (writes BENCH_serve.json)")
	serveCell := fs.Duration("serve-duration", 2*time.Second, "with -serve: measured wall time per (concurrency, mode) cell")
	registryBench := fs.Bool("registry", false, "benchmark registry serving under continuous hot-swap/reload/shadow (writes BENCH_registry.json)")
	compileBench := fs.Bool("compile", false, "benchmark the load-time compiled propagator vs the interpreted one, plus a hot-reload-while-serving measurement (writes BENCH_compile.json)")
	quantBench := fs.Bool("quant", false, "benchmark the int8 fixed-point propagator vs the float paths, plus model-size and Edison projections (writes BENCH_quant.json)")
	seqBench := fs.Bool("seq", false, "benchmark the conv/RNN/GRU sequence moment paths and exact-vs-PWL activation backend parity (writes BENCH_seq.json)")
	clusterBench := fs.Bool("cluster", false, "benchmark the sharded multi-replica serving tier under open-loop load (writes BENCH_cluster.json)")
	sessionsBench := fs.Bool("sessions", false, "benchmark the resident session fleet: create/ingest/window throughput, snapshot/restore, idle churn (writes BENCH_stream.json)")
	sessionCount := fs.Int("session-count", 1_000_000, "with -sessions: resident sessions to hold")
	sessionStream := fs.Int("session-stream", 200_000, "with -sessions: devices streamed to window completion")
	clusterReplicas := fs.Int("cluster-replicas", 4, "with -cluster: replica-count ceiling for the scale sweep (failure scenarios need 4)")
	clusterCell := fs.Duration("cluster-duration", 2*time.Second, "with -cluster: steady-state measurement window per scenario cell")
	clusterReplica := fs.Bool("cluster-replica", false, "internal: run as one cluster bench replica (spawned by -cluster)")
	clusterBudget := fs.Float64("cluster-budget", 0, "internal: admission budget in requests/second for -cluster-replica (0 = unlimited)")
	clusterListen := fs.String("cluster-listen", "127.0.0.1:0", "internal: listen address for -cluster-replica")
	registryCell := fs.Duration("registry-duration", 2*time.Second, "with -registry: measured wall time per mode cell")
	obsMode := fs.Bool("obs", false, "with -batch: attach propagator observability hooks and dump the metrics registry snapshot (BENCH_obs.prom)")
	verbose := fs.Bool("v", false, "log progress")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *clusterReplica {
		// Child mode: this process IS one replica of the cluster bench.
		return runClusterReplica(*clusterBudget, *clusterListen)
	}
	if *obsMode && !*batch {
		// -obs instruments the batch benchmark; alone it has nothing to
		// observe, so imply -batch rather than fail.
		*batch = true
	}
	if !*all && *tableN == 0 && *figN == 0 && !*ablations && !*verify && !*batch && !*serveBench && !*registryBench && !*compileBench && !*quantBench && !*seqBench && !*clusterBench && !*sessionsBench {
		return fmt.Errorf("nothing to do: pass -all, -table N, -fig N, -ablations, -verify, -batch, -serve, -registry, -compile, -quant, -seq, -cluster, -sessions, or -obs")
	}

	scale, err := scaleByName(*scaleName)
	if err != nil {
		return err
	}
	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, a ...any) {
			if !strings.HasPrefix(format, "epoch") {
				log.Printf(format, a...)
			}
		}
	}
	runner, err := experiments.NewRunner(scale,
		experiments.WithModelDir(*modelDir),
		experiments.WithLogf(logf),
	)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*resultDir, 0o755); err != nil {
		return fmt.Errorf("results dir: %w", err)
	}

	var tables []int
	var figs []int
	switch {
	case *all:
		tables = []int{1, 2, 3, 4}
		figs = []int{1, 2, 3, 4, 5, 6, 7, 8, 9}
	default:
		if *tableN != 0 {
			tables = []int{*tableN}
		}
		if *figN != 0 {
			figs = []int{*figN}
		}
	}

	start := time.Now()
	for _, n := range tables {
		if err := emitTable(runner, n, *resultDir); err != nil {
			return err
		}
	}
	for _, n := range figs {
		if err := emitFigure(runner, n, *resultDir); err != nil {
			return err
		}
	}
	if *ablations {
		if err := emitAblations(runner, *resultDir); err != nil {
			return err
		}
	}
	if *verify {
		if err := emitVerify(runner, *resultDir); err != nil {
			return err
		}
	}
	if *batch {
		if err := emitBatchBench(*resultDir, *obsMode); err != nil {
			return err
		}
	}
	if *serveBench {
		if err := emitServeBench(*resultDir, *serveCell); err != nil {
			return err
		}
	}
	if *registryBench {
		if err := emitRegistryBench(*resultDir, *registryCell); err != nil {
			return err
		}
	}
	if *compileBench {
		if err := emitCompileBench(*resultDir); err != nil {
			return err
		}
	}
	if *quantBench {
		if err := emitQuantBench(*resultDir); err != nil {
			return err
		}
	}
	if *seqBench {
		if err := emitSeqBench(*resultDir); err != nil {
			return err
		}
	}
	if *clusterBench {
		if err := emitClusterBench(*resultDir, *clusterReplicas, *clusterCell); err != nil {
			return err
		}
	}
	if *sessionsBench {
		if err := emitSessionsBench(*resultDir, *sessionCount, *sessionStream); err != nil {
			return err
		}
	}
	log.Printf("done in %.1fs (artifacts in %s)", time.Since(start).Seconds(), *resultDir)
	return nil
}

// emitVerify checks the paper's qualitative claims on every task.
func emitVerify(runner *experiments.Runner, dir string) error {
	var all []experiments.ShapeCheck
	for _, task := range experiments.TaskNames {
		checks, err := runner.VerifyShapes(task)
		if err != nil {
			return fmt.Errorf("verify %s: %w", task, err)
		}
		all = append(all, checks...)
	}
	tbl, err := experiments.ShapeReport(all)
	if err != nil {
		return err
	}
	text, err := tbl.Render()
	if err != nil {
		return err
	}
	fmt.Println(text)
	return os.WriteFile(filepath.Join(dir, "shape-checks.txt"), []byte(text), 0o644)
}

// emitAblations runs the three ablation studies of DESIGN.md §5.
func emitAblations(runner *experiments.Runner, dir string) error {
	pieces, err := runner.AblationPieces("GasSen", nil)
	if err != nil {
		return fmt.Errorf("ablation pieces: %w", err)
	}
	link, err := runner.AblationSoftmaxLink(nil)
	if err != nil {
		return fmt.Errorf("ablation softmax link: %w", err)
	}
	bias, err := runner.AblationVarianceBias("NYCommute", 20, 2000)
	if err != nil {
		return fmt.Errorf("ablation variance bias: %w", err)
	}
	sens, err := runner.AblationDeviceSensitivity("NYCommute", nil)
	if err != nil {
		return fmt.Errorf("ablation device sensitivity: %w", err)
	}
	var b strings.Builder
	for _, tbl := range []interface {
		Render() (string, error)
	}{pieces, link, bias, sens} {
		out, err := tbl.Render()
		if err != nil {
			return err
		}
		b.WriteString(out)
		b.WriteByte('\n')
	}
	text := b.String()
	fmt.Println(text)
	return os.WriteFile(filepath.Join(dir, "ablations.txt"), []byte(text), 0o644)
}

func emitTable(runner *experiments.Runner, n int, dir string) error {
	tbl, err := runner.Table(n)
	if err != nil {
		return fmt.Errorf("table %d: %w", n, err)
	}
	text, err := tbl.Render()
	if err != nil {
		return err
	}
	fmt.Println(text)
	if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("table%d.txt", n)), []byte(text), 0o644); err != nil {
		return err
	}
	csv, err := tbl.CSV()
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, fmt.Sprintf("table%d.csv", n)), []byte(csv), 0o644)
}

func emitFigure(runner *experiments.Runner, n int, dir string) error {
	fig, err := runner.Figure(n)
	if err != nil {
		return fmt.Errorf("figure %d: %w", n, err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", fig.Title)
	if fig.Text != "" {
		b.WriteString(fig.Text)
		b.WriteByte('\n')
	}
	for _, chart := range fig.Charts {
		out, err := chart.Render(50)
		if err != nil {
			return err
		}
		b.WriteString(out)
		b.WriteByte('\n')
	}
	if fig.Scatter != nil {
		out, err := fig.Scatter.Render(64, 16)
		if err != nil {
			return err
		}
		b.WriteString(out)
		b.WriteByte('\n')
	}
	if fig.Data != nil {
		out, err := fig.Data.Render()
		if err != nil {
			return err
		}
		b.WriteString(out)
	}
	text := b.String()
	fmt.Println(text)
	if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("fig%d.txt", n)), []byte(text), 0o644); err != nil {
		return err
	}
	if fig.Data != nil {
		csv, err := fig.Data.CSV()
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dir, fmt.Sprintf("fig%d.csv", n)), []byte(csv), 0o644)
	}
	return nil
}

func scaleByName(name string) (experiments.Scale, error) {
	switch name {
	case "quick":
		return experiments.QuickScale, nil
	case "default":
		return experiments.DefaultScale, nil
	case "paper":
		return experiments.PaperScale, nil
	default:
		return experiments.Scale{}, fmt.Errorf("unknown scale %q (quick, default, paper)", name)
	}
}
