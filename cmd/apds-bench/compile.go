package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"time"

	"github.com/apdeepsense/apdeepsense/internal/compile"
	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/obs"
	"github.com/apdeepsense/apdeepsense/internal/registry"
	"github.com/apdeepsense/apdeepsense/internal/report"
	"github.com/apdeepsense/apdeepsense/internal/serve"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// compileBenchBatches is the sweep recorded by -compile: the latency point
// (1), the coalescer's typical partial flush (8), and the full flush (64).
var compileBenchBatches = []int{1, 8, 64}

// compileBenchEntry is one batch-size row of BENCH_compile.json. Both paths
// produce bit-identical outputs (proven by the proptest gate), so the row is
// purely a performance comparison.
type compileBenchEntry struct {
	Batch                 int     `json:"batch"`
	InterpretedNsPerOp    float64 `json:"interpreted_ns_per_sample"`
	CompiledNsPerOp       float64 `json:"compiled_ns_per_sample"`
	Speedup               float64 `json:"speedup"`
	CompiledSamplesPerSec float64 `json:"compiled_samples_per_sec"`
}

// compileReloadStats records the registry hot-reload measurement: a new
// version (fresh weights, so a real compile) is added while batch-1 requests
// stream against the routed current version. Compilation happening off the
// serving path shows up as serving latency during the reload staying at its
// steady-state scale rather than the reload's.
type compileReloadStats struct {
	ReloadMillis          float64 `json:"reload_millis"`
	RequestsDuringReload  int64   `json:"requests_during_reload"`
	MaxServeMicrosDuring  float64 `json:"max_serve_micros_during_reload"`
	SteadyP50ServeMicros  float64 `json:"steady_p50_serve_micros"`
	CompilesOK            float64 `json:"compiles_ok"`
	CompilesCacheHit      float64 `json:"compiles_cache_hit"`
	ReloadVsServeP50Ratio float64 `json:"reload_vs_serve_p50_ratio"`
}

type compileBenchReport struct {
	Network    string              `json:"network"`
	KeepProb   float64             `json:"keep_prob"`
	MaxBatch   int                 `json:"max_batch"`
	GOMAXPROCS int                 `json:"gomaxprocs"`
	Timestamp  string              `json:"timestamp"`
	Entries    []compileBenchEntry `json:"entries"`
	Reload     compileReloadStats  `json:"reload"`
}

// emitCompileBench measures the load-time-compiled propagator against the
// interpreted one on the reference network at batch 1/8/64, then measures a
// registry hot-reload (which compiles the incoming version) under live
// traffic. Results print as a table and land in BENCH_compile.json under dir.
func emitCompileBench(dir string) error {
	const maxBatch = 64
	rep := compileBenchReport{
		Network:    "5-256-256-1",
		KeepProb:   0.9,
		MaxBatch:   maxBatch,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
	net, err := nn.New(nn.Config{
		InputDim: 5, Hidden: []int{256, 256}, OutputDim: 1,
		Activation: nn.ActReLU, OutputActivation: nn.ActIdentity,
		KeepProb: rep.KeepProb, Seed: 1,
	})
	if err != nil {
		return fmt.Errorf("compile bench: %w", err)
	}
	prop, err := core.NewPropagator(net, core.Options{})
	if err != nil {
		return fmt.Errorf("compile bench: %w", err)
	}
	prog, err := compile.Compile(prop, maxBatch)
	if err != nil {
		return fmt.Errorf("compile bench: %w", err)
	}
	if err := prog.Warm(prop); err != nil {
		return fmt.Errorf("compile bench warm: %w", err)
	}
	prop.SetCompiled(prog)

	tbl := &report.Table{
		Title:   "Compiled vs interpreted moment propagation (5-256-256-1)",
		Headers: []string{"batch", "interp µs/sample", "compiled µs/sample", "speedup", "compiled samples/s"},
	}
	rng := rand.New(rand.NewSource(7))
	for _, b := range compileBenchBatches {
		in := core.NewGaussianBatch(b, net.InputDim())
		for i := range in.Mean.Data {
			in.Mean.Data[i] = rng.NormFloat64()
			in.Var.Data[i] = rng.Float64()
		}
		interp := timePerBatch(func() error {
			_, err := prop.PropagateBatchReference(in)
			return err
		})
		compiled := timePerBatch(func() error {
			_, err := prop.PropagateBatchFrom(in) // dispatches the compiled program
			return err
		})
		e := compileBenchEntry{
			Batch:                 b,
			InterpretedNsPerOp:    interp / float64(b),
			CompiledNsPerOp:       compiled / float64(b),
			Speedup:               interp / compiled,
			CompiledSamplesPerSec: float64(b) * 1e9 / compiled,
		}
		rep.Entries = append(rep.Entries, e)
		tbl.AddRow(fmt.Sprint(b),
			fmt.Sprintf("%.1f", e.InterpretedNsPerOp/1e3),
			fmt.Sprintf("%.1f", e.CompiledNsPerOp/1e3),
			fmt.Sprintf("%.2fx", e.Speedup),
			fmt.Sprintf("%.0f", e.CompiledSamplesPerSec),
		)
	}
	tbl.Notes = append(tbl.Notes,
		"interpreted = PropagateBatchReference; compiled = the load-time specialized program (bit-identical outputs)")

	reload, err := measureCompileReload()
	if err != nil {
		return err
	}
	rep.Reload = reload
	tbl.Notes = append(tbl.Notes, fmt.Sprintf(
		"hot reload (compile included): %.1f ms while serving; max in-reload request latency %.0f µs (steady p50 %.0f µs)",
		reload.ReloadMillis, reload.MaxServeMicrosDuring, reload.SteadyP50ServeMicros))

	text, err := tbl.Render()
	if err != nil {
		return err
	}
	fmt.Println(text)
	js, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "BENCH_compile.json"), append(js, '\n'), 0o644)
}

// measureCompileReload serves batch-1 requests through a registry while a
// new version — fresh weights, so a genuine compile + warm — loads and takes
// the route. The request loop never pauses; the max latency it observes
// during the reload window bounds how much of the compile leaked onto the
// serving path.
func measureCompileReload() (compileReloadStats, error) {
	mkNet := func(seed int64) (*nn.Network, error) {
		return nn.New(nn.Config{
			InputDim: 5, Hidden: []int{256, 256}, OutputDim: 1,
			Activation: nn.ActReLU, OutputActivation: nn.ActIdentity,
			KeepProb: 0.9, Seed: seed,
		})
	}
	obsReg := obs.NewRegistry()
	met := registry.NewMetrics(obsReg)
	r := registry.New(registry.Config{
		Serve:   serve.Config{MaxBatch: 64, MaxWait: time.Millisecond, QueueDepth: 1024},
		Metrics: met,
	})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = r.Close(ctx)
	}()

	netA, err := mkNet(1)
	if err != nil {
		return compileReloadStats{}, err
	}
	if _, err := r.AddVersion("m", "v1", netA); err != nil {
		return compileReloadStats{}, err
	}
	if err := r.SetRoutes("m", "v1", "", 0, ""); err != nil {
		return compileReloadStats{}, err
	}

	x := make(tensor.Vector, netA.InputDim())
	for i := range x {
		x[i] = 0.5
	}
	ctx := context.Background()

	// Steady-state p50 over a short warm window.
	var steady []time.Duration
	for i := 0; i < 200; i++ {
		t0 := time.Now()
		if _, _, err := r.Predict(ctx, "m", "bench", x); err != nil {
			return compileReloadStats{}, err
		}
		steady = append(steady, time.Since(t0))
	}
	p50 := percentileDur(steady, 50)

	// Serve continuously while the reload runs; record the worst latency and
	// how many requests completed inside the reload window.
	var reloading atomic.Bool
	var maxDuring atomic.Int64
	var during atomic.Int64
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stop:
				done <- nil
				return
			default:
			}
			t0 := time.Now()
			if _, _, err := r.Predict(ctx, "m", "bench", x); err != nil {
				done <- err
				return
			}
			if d := time.Since(t0); reloading.Load() {
				during.Add(1)
				for {
					cur := maxDuring.Load()
					if int64(d) <= cur || maxDuring.CompareAndSwap(cur, int64(d)) {
						break
					}
				}
			}
		}
	}()

	// Several back-to-back reloads: each loads fresh weights (a genuine
	// compile, never a cache hit) and takes the route. Multiple rounds give
	// the serving goroutine scheduler slices inside the reload window even on
	// a single-core box, so the in-reload latency bound is backed by real
	// requests.
	const reloads = 5
	reloading.Store(true)
	t0 := time.Now()
	for i := 0; i < reloads; i++ {
		id := fmt.Sprintf("v%d", i+2)
		netB, err := mkNet(int64(i + 2))
		if err != nil {
			return compileReloadStats{}, err
		}
		if _, err := r.AddVersion("m", id, netB); err != nil {
			return compileReloadStats{}, err
		}
		if err := r.SetRoutes("m", id, "", 0, ""); err != nil {
			return compileReloadStats{}, err
		}
	}
	reloadDur := time.Since(t0) / reloads
	reloading.Store(false)
	close(stop)
	if err := <-done; err != nil {
		return compileReloadStats{}, err
	}

	maxD := time.Duration(maxDuring.Load())
	st := compileReloadStats{
		ReloadMillis:         float64(reloadDur.Nanoseconds()) / 1e6,
		RequestsDuringReload: during.Load(),
		MaxServeMicrosDuring: float64(maxD.Nanoseconds()) / 1e3,
		SteadyP50ServeMicros: float64(p50.Nanoseconds()) / 1e3,
		CompilesOK:           met.Compiles("ok"),
		CompilesCacheHit:     met.Compiles("cache_hit"),
	}
	if p50 > 0 {
		st.ReloadVsServeP50Ratio = float64(reloadDur) / float64(p50)
	}
	return st, nil
}

// percentileDur returns the pth percentile of ds (nearest-rank, ds reordered).
func percentileDur(ds []time.Duration, p int) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	// insertion sort: n is small and this avoids pulling in sort for one call
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j] < ds[j-1]; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
	idx := (p*len(ds) + 99) / 100
	if idx > 0 {
		idx--
	}
	return ds[idx]
}
