package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/report"
	"github.com/apdeepsense/apdeepsense/internal/serve"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// serveConcurrencies is the closed-loop client sweep recorded by -serve.
var serveConcurrencies = []int{1, 8, 64}

// serveBenchEntry is one (concurrency, mode) cell of BENCH_serve.json. The
// closed loop keeps exactly Concurrency requests in flight: each simulated
// client issues a single-row predict, waits for the answer, and immediately
// issues the next.
type serveBenchEntry struct {
	Concurrency int     `json:"concurrency"`
	Mode        string  `json:"mode"` // "per_request" or "coalesced"
	Requests    int64   `json:"requests"`
	QPS         float64 `json:"qps"`
	P50Micros   float64 `json:"p50_micros"`
	P95Micros   float64 `json:"p95_micros"`
	P99Micros   float64 `json:"p99_micros"`
	// Speedup is coalesced QPS over per-request QPS at the same concurrency
	// (set on coalesced rows only).
	Speedup float64 `json:"speedup,omitempty"`
	// MeanBatchRows is the average rows per coalescer flush (coalesced only):
	// how much batching the load actually produced.
	MeanBatchRows float64 `json:"mean_batch_rows,omitempty"`
}

type serveBenchReport struct {
	Network    string            `json:"network"`
	KeepProb   float64           `json:"keep_prob"`
	MaxBatch   int               `json:"max_batch"`
	MaxWaitMs  float64           `json:"max_wait_ms"`
	CellSecs   float64           `json:"cell_seconds"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Timestamp  string            `json:"timestamp"`
	Entries    []serveBenchEntry `json:"entries"`
}

// emitServeBench measures the dynamic micro-batching serving path: closed-loop
// clients at each concurrency level drive single-row predictions either
// straight into Estimator.Predict (per_request) or through the request
// coalescer (coalesced, flushing via the matrix-level PropagateBatch fast
// path). Results print as a table and land in BENCH_serve.json under dir.
// cell is the measured wall time per (concurrency, mode) cell.
func emitServeBench(dir string, cell time.Duration) error {
	net, err := nn.New(nn.Config{
		InputDim: 5, Hidden: []int{256, 256}, OutputDim: 1,
		Activation: nn.ActReLU, OutputActivation: nn.ActIdentity,
		KeepProb: 0.9, Seed: 1,
	})
	if err != nil {
		return fmt.Errorf("serve bench: %w", err)
	}
	est, err := core.NewApDeepSense(net, core.Options{}, 0)
	if err != nil {
		return fmt.Errorf("serve bench: %w", err)
	}

	rep := serveBenchReport{
		Network:    "5-256-256-1",
		KeepProb:   0.9,
		MaxBatch:   64,
		MaxWaitMs:  2,
		CellSecs:   cell.Seconds(),
		GOMAXPROCS: maxprocs(),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
	tbl := &report.Table{
		Title: "Dynamic micro-batching: coalesced vs per-request serving (5-256-256-1)",
		Headers: []string{"clients", "mode", "qps", "p50 µs", "p95 µs", "p99 µs",
			"speedup", "rows/flush"},
	}

	for _, c := range serveConcurrencies {
		direct := runServeCell(c, cell, func(x tensor.Vector) error {
			_, err := est.Predict(x)
			return err
		})
		direct.Concurrency, direct.Mode = c, "per_request"
		rep.Entries = append(rep.Entries, directRow(tbl, direct))

		// Fresh coalescer per cell so flush/row counters are cell-local.
		var flushes, rows atomic.Int64
		coal, err := serve.New(serve.Config{MaxBatch: rep.MaxBatch, MaxWait: 2 * time.Millisecond,
			QueueDepth: 4 * rep.MaxBatch},
			func(batch []tensor.Vector) ([]core.GaussianVec, error) {
				flushes.Add(1)
				rows.Add(int64(len(batch)))
				return core.PredictBatch(est, batch, 0)
			})
		if err != nil {
			return fmt.Errorf("serve bench: %w", err)
		}
		ctx := context.Background()
		coalesced := runServeCell(c, cell, func(x tensor.Vector) error {
			_, err := coal.Do(ctx, x)
			return err
		})
		if err := coal.Close(ctx); err != nil {
			return fmt.Errorf("serve bench: drain: %w", err)
		}
		coalesced.Concurrency, coalesced.Mode = c, "coalesced"
		if direct.QPS > 0 {
			coalesced.Speedup = coalesced.QPS / direct.QPS
		}
		if f := flushes.Load(); f > 0 {
			coalesced.MeanBatchRows = float64(rows.Load()) / float64(f)
		}
		rep.Entries = append(rep.Entries, coalesced)
		tbl.AddRow(fmt.Sprint(c), coalesced.Mode,
			fmt.Sprintf("%.0f", coalesced.QPS),
			fmt.Sprintf("%.0f", coalesced.P50Micros),
			fmt.Sprintf("%.0f", coalesced.P95Micros),
			fmt.Sprintf("%.0f", coalesced.P99Micros),
			fmt.Sprintf("%.2fx", coalesced.Speedup),
			fmt.Sprintf("%.1f", coalesced.MeanBatchRows),
		)
	}
	tbl.Notes = append(tbl.Notes,
		"closed loop: each client waits for its answer before sending the next request",
		"per_request = Estimator.Predict per call; coalesced = serve.Coalescer onto PredictBatch",
	)

	text, err := tbl.Render()
	if err != nil {
		return err
	}
	fmt.Println(text)
	js, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "BENCH_serve.json"), append(js, '\n'), 0o644)
}

func maxprocs() int { return runtime.GOMAXPROCS(0) }

// directRow records the per-request baseline row in the table and returns the
// entry unchanged (so the caller appends exactly what was printed).
func directRow(tbl *report.Table, e serveBenchEntry) serveBenchEntry {
	tbl.AddRow(fmt.Sprint(e.Concurrency), e.Mode,
		fmt.Sprintf("%.0f", e.QPS),
		fmt.Sprintf("%.0f", e.P50Micros),
		fmt.Sprintf("%.0f", e.P95Micros),
		fmt.Sprintf("%.0f", e.P99Micros),
		"", "")
	return e
}

// runServeCell drives one closed-loop cell: c clients issue requests through
// call back-to-back for roughly d, after a short warmup. It returns the
// request count, throughput, and latency percentiles.
func runServeCell(c int, d time.Duration, call func(tensor.Vector) error) serveBenchEntry {
	inputs := benchBatchInputs(256, 5)
	run := func(d time.Duration, record bool) (int64, []float64) {
		var (
			wg   sync.WaitGroup
			lats = make([][]float64, c)
		)
		start := time.Now()
		for w := 0; w < c; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				x := inputs[w%len(inputs)]
				for time.Since(start) < d {
					t0 := time.Now()
					if err := call(x); err != nil {
						panic(fmt.Sprintf("apds-bench serve: %v", err))
					}
					if record {
						lats[w] = append(lats[w], float64(time.Since(t0).Microseconds()))
					}
				}
			}(w)
		}
		wg.Wait()
		var all []float64
		for _, l := range lats {
			all = append(all, l...)
		}
		return int64(len(all)), all
	}

	run(d/10+10*time.Millisecond, false) // warmup: prime scratch pools and scheduler
	start := time.Now()
	n, lats := run(d, true)
	elapsed := time.Since(start).Seconds()
	sort.Float64s(lats)
	return serveBenchEntry{
		Requests:  n,
		QPS:       float64(n) / elapsed,
		P50Micros: percentile(lats, 0.50),
		P95Micros: percentile(lats, 0.95),
		P99Micros: percentile(lats, 0.99),
	}
}

// percentile returns the q-quantile of sorted (nearest-rank).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
