package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/obs"
	"github.com/apdeepsense/apdeepsense/internal/registry"
	"github.com/apdeepsense/apdeepsense/internal/report"
	"github.com/apdeepsense/apdeepsense/internal/serve"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// registryBenchClients is the closed-loop client count for every registry
// cell: enough concurrency to keep the coalescer pools batching.
const registryBenchClients = 16

// registryBenchEntry is one mode cell of BENCH_registry.json.
type registryBenchEntry struct {
	Mode      string  `json:"mode"` // steady | swapping | reloading | shadow
	Requests  int64   `json:"requests"`
	QPS       float64 `json:"qps"`
	P50Micros float64 `json:"p50_micros"`
	P95Micros float64 `json:"p95_micros"`
	P99Micros float64 `json:"p99_micros"`
	// QPSvsSteady is this cell's throughput relative to the steady cell
	// (set on non-steady rows): the cost of continuous swaps / shadowing.
	QPSvsSteady float64 `json:"qps_vs_steady,omitempty"`
	// Swaps counts route-table swaps (swapping) or full hot-reloads
	// (reloading) applied during the cell.
	Swaps int64 `json:"swaps,omitempty"`
	// SwapP50Micros / SwapP99Micros are latency percentiles of one swap:
	// SetRoutes alone (swapping) or load+warmup+register+route (reloading).
	SwapP50Micros float64 `json:"swap_p50_micros,omitempty"`
	SwapP99Micros float64 `json:"swap_p99_micros,omitempty"`
	// ShadowCompleted / ShadowDropped count duplicate comparisons in the
	// shadow cell (dropped = shadow pool saturated; never blocks primary).
	ShadowCompleted int64 `json:"shadow_completed,omitempty"`
	ShadowDropped   int64 `json:"shadow_dropped,omitempty"`
}

type registryBenchReport struct {
	Network    string               `json:"network"`
	KeepProb   float64              `json:"keep_prob"`
	MaxBatch   int                  `json:"max_batch"`
	Clients    int                  `json:"clients"`
	CellSecs   float64              `json:"cell_seconds"`
	GOMAXPROCS int                  `json:"gomaxprocs"`
	Timestamp  string               `json:"timestamp"`
	Entries    []registryBenchEntry `json:"entries"`
}

// emitRegistryBench measures the model-registry serving path under a closed
// loop: steady single-version serving (the baseline), serving while route
// tables swap continuously, serving while whole versions hot-reload
// (load + warmup + register + route), and serving with shadow duplication to
// a candidate version. Results print as a table and land in
// BENCH_registry.json under dir.
func emitRegistryBench(dir string, cell time.Duration) error {
	mkNet := func(seed int64) (*nn.Network, error) {
		return nn.New(nn.Config{
			InputDim: 5, Hidden: []int{256, 256}, OutputDim: 1,
			Activation: nn.ActReLU, OutputActivation: nn.ActIdentity,
			KeepProb: 0.9, Seed: seed,
		})
	}
	obsReg := obs.NewRegistry()
	met := registry.NewMetrics(obsReg)
	r := registry.New(registry.Config{
		Serve:   serve.Config{MaxBatch: 64, MaxWait: 2 * time.Millisecond, QueueDepth: 1024},
		Metrics: met,
	})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = r.Close(ctx)
	}()
	for seed, id := range map[int64]string{1: "v1", 2: "v2"} {
		net, err := mkNet(seed)
		if err != nil {
			return fmt.Errorf("registry bench: %w", err)
		}
		if _, err := r.AddVersion("m", id, net); err != nil {
			return fmt.Errorf("registry bench: %w", err)
		}
	}
	if err := r.SetRoutes("m", "v1", "", 0, ""); err != nil {
		return fmt.Errorf("registry bench: %w", err)
	}

	rep := registryBenchReport{
		Network:    "5-256-256-1",
		KeepProb:   0.9,
		MaxBatch:   64,
		Clients:    registryBenchClients,
		CellSecs:   cell.Seconds(),
		GOMAXPROCS: maxprocs(),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
	tbl := &report.Table{
		Title: "Model registry: serving under hot-swap / reload / shadow (5-256-256-1)",
		Headers: []string{"mode", "qps", "p50 µs", "p95 µs", "p99 µs",
			"vs steady", "swaps", "swap p50 µs", "swap p99 µs"},
	}
	ctx := context.Background()
	var seq atomic.Int64
	predict := func(x tensor.Vector) error {
		key := fmt.Sprintf("r%d", seq.Add(1))
		_, _, err := r.Predict(ctx, "m", key, x)
		return err
	}

	addRow := func(e registryBenchEntry) {
		rep.Entries = append(rep.Entries, e)
		vs, sw, p50, p99 := "", "", "", ""
		if e.QPSvsSteady > 0 {
			vs = fmt.Sprintf("%.2fx", e.QPSvsSteady)
		}
		if e.Swaps > 0 {
			sw = fmt.Sprint(e.Swaps)
			p50 = fmt.Sprintf("%.0f", e.SwapP50Micros)
			p99 = fmt.Sprintf("%.0f", e.SwapP99Micros)
		}
		tbl.AddRow(e.Mode, fmt.Sprintf("%.0f", e.QPS),
			fmt.Sprintf("%.0f", e.P50Micros), fmt.Sprintf("%.0f", e.P95Micros),
			fmt.Sprintf("%.0f", e.P99Micros), vs, sw, p50, p99)
	}

	// Cell 1: steady — one routed version, no mutations.
	steady := runServeCell(registryBenchClients, cell, predict)
	entry := registryBenchEntry{Mode: "steady", Requests: steady.Requests, QPS: steady.QPS,
		P50Micros: steady.P50Micros, P95Micros: steady.P95Micros, P99Micros: steady.P99Micros}
	addRow(entry)
	baseQPS := steady.QPS

	// mutateCell runs one cell with a background mutator invoking step in a
	// loop (spaced by gap) and returns the cell entry plus swap latencies.
	mutateCell := func(mode string, gap time.Duration, step func(i int) error) (registryBenchEntry, error) {
		stop := make(chan struct{})
		var mu sync.Mutex
		var swapLats []float64
		var swaps int64
		var mutErr error
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				t0 := time.Now()
				if err := step(i); err != nil {
					mutErr = err
					return
				}
				mu.Lock()
				swapLats = append(swapLats, float64(time.Since(t0).Microseconds()))
				swaps++
				mu.Unlock()
				time.Sleep(gap)
			}
		}()
		res := runServeCell(registryBenchClients, cell, predict)
		close(stop)
		wg.Wait()
		if mutErr != nil {
			return registryBenchEntry{}, fmt.Errorf("registry bench %s: %w", mode, mutErr)
		}
		sort.Float64s(swapLats)
		e := registryBenchEntry{Mode: mode, Requests: res.Requests, QPS: res.QPS,
			P50Micros: res.P50Micros, P95Micros: res.P95Micros, P99Micros: res.P99Micros,
			Swaps: swaps, SwapP50Micros: percentile(swapLats, 0.50), SwapP99Micros: percentile(swapLats, 0.99)}
		if baseQPS > 0 {
			e.QPSvsSteady = res.QPS / baseQPS
		}
		return e, nil
	}

	// Cell 2: swapping — the route table flips between two standing versions
	// continuously while clients predict. Swap latency is SetRoutes alone.
	entry, err := mutateCell("swapping", 10*time.Millisecond, func(i int) error {
		target := "v1"
		if i%2 == 1 {
			target = "v2"
		}
		return r.SetRoutes("m", target, "", 0, "")
	})
	if err != nil {
		return err
	}
	addRow(entry)

	// Cell 3: reloading — a full hot-reload per step: build a fresh network
	// (standing in for loading new weights from disk), warm it, register it
	// under a constant ID, and route to it. The displaced version drains in
	// the background while clients keep predicting.
	entry, err = mutateCell("reloading", 50*time.Millisecond, func(i int) error {
		net, err := mkNet(int64(100 + i))
		if err != nil {
			return err
		}
		if _, err := r.AddVersion("m", "hot", net); err != nil {
			return err
		}
		return r.SetRoutes("m", "hot", "", 0, "")
	})
	if err != nil {
		return err
	}
	addRow(entry)

	// Cell 4: shadow — every primary answer is duplicated to a candidate
	// version in the background. The check: primary-path latency and QPS stay
	// at the steady cell's level (shadow work must never block admission).
	if err := r.SetRoutes("m", "v1", "", 0, "v2"); err != nil {
		return fmt.Errorf("registry bench: %w", err)
	}
	shadowRes := runServeCell(registryBenchClients, cell, predict)
	entry = registryBenchEntry{Mode: "shadow", Requests: shadowRes.Requests, QPS: shadowRes.QPS,
		P50Micros: shadowRes.P50Micros, P95Micros: shadowRes.P95Micros, P99Micros: shadowRes.P99Micros,
		ShadowCompleted: int64(met.ShadowCompleted("m")), ShadowDropped: int64(met.ShadowDropped("m"))}
	if baseQPS > 0 {
		entry.QPSvsSteady = shadowRes.QPS / baseQPS
	}
	addRow(entry)

	// Cells 5+6: paced open-loop pair — the shadow-overhead claim proper.
	// The closed-loop cells saturate the CPU, where any duplicated compute
	// must cost throughput; the design claim is about latency at normal
	// utilization. Requests arrive at ~10% of steady capacity with shadow
	// off, then again with shadow on: the primary-path percentiles should
	// move only within scheduler noise because shadow jobs run strictly
	// behind a bounded queue that drops rather than delays.
	pacedRate := baseQPS * 0.10
	if err := r.SetRoutes("m", "v1", "", 0, ""); err != nil {
		return fmt.Errorf("registry bench: %w", err)
	}
	pacedOff := runOpenLoopCell(pacedRate, cell, predict)
	pacedOff.Mode = "paced"
	addRow(pacedOff)
	shadowBefore := met.ShadowCompleted("m")
	if err := r.SetRoutes("m", "v1", "", 0, "v2"); err != nil {
		return fmt.Errorf("registry bench: %w", err)
	}
	pacedOn := runOpenLoopCell(pacedRate, cell, predict)
	pacedOn.Mode = "paced_shadow"
	pacedOn.ShadowCompleted = int64(met.ShadowCompleted("m") - shadowBefore)
	if pacedOff.P50Micros > 0 {
		pacedOn.QPSvsSteady = 0 // rate-matched; the comparison is the percentiles
	}
	addRow(pacedOn)

	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("closed loop, %d clients; every request flows through the registry's per-version coalescer pools", registryBenchClients),
		"swapping = SetRoutes flips between two standing versions; reloading = build+warm+register+route a new version each step",
		fmt.Sprintf("shadow cell duplicated %d requests to the candidate (%d dropped); at closed-loop saturation the duplicate compute necessarily costs throughput",
			entry.ShadowCompleted, entry.ShadowDropped),
		fmt.Sprintf("paced pair arrives open-loop at %.0f req/s (~10%% of steady capacity): paced_shadow p50 vs paced p50 is the true primary-path shadow overhead (%.0f vs %.0f µs)",
			pacedRate, pacedOn.P50Micros, pacedOff.P50Micros),
	)

	text, err := tbl.Render()
	if err != nil {
		return err
	}
	fmt.Println(text)
	js, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "BENCH_registry.json"), append(js, '\n'), 0o644)
}

// runOpenLoopCell issues requests at a fixed arrival rate (open loop: a slow
// answer does not slow the arrival process) for roughly d and returns the
// achieved throughput and latency percentiles. Queue-full rejections under
// arrival bursts are dropped from the sample rather than failing the cell.
func runOpenLoopCell(rate float64, d time.Duration, call func(tensor.Vector) error) registryBenchEntry {
	if rate <= 0 {
		return registryBenchEntry{}
	}
	inputs := benchBatchInputs(256, 5)
	interval := time.Duration(float64(time.Second) / rate)
	var (
		mu   sync.Mutex
		lats []float64
		wg   sync.WaitGroup
	)
	// Absolute-schedule pacing: each arrival slot is start + i*interval, so a
	// slow slot doesn't push every later slot back (and unlike a ticker, no
	// slots are silently dropped under scheduler jitter).
	start := time.Now()
	for i := 0; time.Since(start) < d; i++ {
		next := start.Add(time.Duration(i) * interval)
		if wait := time.Until(next); wait > 0 {
			time.Sleep(wait)
		}
		x := inputs[i%len(inputs)]
		wg.Add(1)
		go func(x tensor.Vector) {
			defer wg.Done()
			t0 := time.Now()
			if err := call(x); err != nil {
				return
			}
			lat := float64(time.Since(t0).Microseconds())
			mu.Lock()
			lats = append(lats, lat)
			mu.Unlock()
		}(x)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	sort.Float64s(lats)
	return registryBenchEntry{
		Requests:  int64(len(lats)),
		QPS:       float64(len(lats)) / elapsed,
		P50Micros: percentile(lats, 0.50),
		P95Micros: percentile(lats, 0.95),
		P99Micros: percentile(lats, 0.99),
	}
}
