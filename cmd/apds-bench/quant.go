package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"github.com/apdeepsense/apdeepsense/internal/compile"
	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/edison"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/qprop"
	"github.com/apdeepsense/apdeepsense/internal/quantize"
	"github.com/apdeepsense/apdeepsense/internal/report"
)

// quantBenchBatches is the sweep recorded by -quant: the latency point (1),
// the coalescer's typical partial flush (8), and the full flush (64).
var quantBenchBatches = []int{1, 8, 64}

// quantBenchEntry is one batch-size row of BENCH_quant.json. Unlike the
// compiled path, the quantized path is an approximation — its accuracy is
// held to the oracle's a-priori quantization error budget by the proptest
// gate, so this row is purely a performance comparison.
type quantBenchEntry struct {
	Batch                  int     `json:"batch"`
	FloatNsPerSample       float64 `json:"float_ns_per_sample"`
	CompiledNsPerSample    float64 `json:"compiled_ns_per_sample"`
	QuantizedNsPerSample   float64 `json:"quantized_ns_per_sample"`
	Speedup                float64 `json:"speedup"` // float interpreted / quantized
	QuantizedSamplesPerSec float64 `json:"quantized_samples_per_sec"`
}

// quantSizeStats compares model footprint. Ratios are quantized/float, so
// smaller is better and the benchdiff gate guards them in the right
// direction. File bytes compare the serialized formats (8 B/weight float64
// vs 1 B/weight int8 code + per-column scales); resident bytes compare what
// propagation actually touches per weight (float: W plus the W² panel, 16 B;
// quantized: the pair-interleaved int16 code panel, 4 B).
type quantSizeStats struct {
	FloatFileBytes     int64   `json:"float_file_bytes"`
	QuantFileBytes     int64   `json:"quantized_file_bytes"`
	FileBytesRatio     float64 `json:"file_bytes_ratio"`
	FloatResidentBytes int64   `json:"float_resident_bytes"`
	QuantResidentBytes int64   `json:"quantized_resident_bytes"`
	ResidentBytesRatio float64 `json:"resident_bytes_ratio"`
}

// quantEdisonStats projects one inference onto the Edison cost model: the
// float path pays dense FLOPs at the device's streaming rate, the quantized
// path pays int16 MACs at the integer SIMD rate (see edison.Device).
type quantEdisonStats struct {
	FloatMillis      float64 `json:"float_millis"`
	QuantizedMillis  float64 `json:"quantized_millis"`
	EdisonSpeedup    float64 `json:"edison_speedup"`
	FloatMillijoules float64 `json:"float_millijoules"`
	QuantMillijoules float64 `json:"quantized_millijoules"`
}

type quantBenchReport struct {
	Network    string            `json:"network"`
	KeepProb   float64           `json:"keep_prob"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Timestamp  string            `json:"timestamp"`
	Entries    []quantBenchEntry `json:"entries"`
	Size       quantSizeStats    `json:"size"`
	Edison     quantEdisonStats  `json:"edison"`
}

// emitQuantBench measures the int8 fixed-point propagator against the float
// interpreted and compiled paths on the reference network at batch 1/8/64,
// plus the model-size and Edison-projection comparisons. Results print as a
// table and land in BENCH_quant.json under dir.
func emitQuantBench(dir string) error {
	const maxBatch = 64
	rep := quantBenchReport{
		Network:    "5-256-256-1",
		KeepProb:   0.9,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
	net, err := nn.New(nn.Config{
		InputDim: 5, Hidden: []int{256, 256}, OutputDim: 1,
		Activation: nn.ActReLU, OutputActivation: nn.ActIdentity,
		KeepProb: rep.KeepProb, Seed: 1,
	})
	if err != nil {
		return fmt.Errorf("quant bench: %w", err)
	}
	prop, err := core.NewPropagator(net, core.Options{}, core.WithWorkers(1))
	if err != nil {
		return fmt.Errorf("quant bench: %w", err)
	}
	prog, err := compile.Compile(prop, maxBatch)
	if err != nil {
		return fmt.Errorf("quant bench compile: %w", err)
	}
	if err := prog.Warm(prop); err != nil {
		return fmt.Errorf("quant bench warm: %w", err)
	}
	qp, _, err := qprop.Build(net, core.Options{}, qprop.WithWorkers(1))
	if err != nil {
		return fmt.Errorf("quant bench quantize: %w", err)
	}

	tbl := &report.Table{
		Title:   "Quantized vs float moment propagation (5-256-256-1, single core)",
		Headers: []string{"batch", "float µs/sample", "compiled µs/sample", "quantized µs/sample", "speedup", "quantized samples/s"},
	}
	rng := rand.New(rand.NewSource(7))
	for _, b := range quantBenchBatches {
		in := core.NewGaussianBatch(b, net.InputDim())
		for i := range in.Mean.Data {
			in.Mean.Data[i] = rng.NormFloat64()
			in.Var.Data[i] = rng.Float64()
		}
		interp := timePerBatch(func() error {
			_, err := prop.PropagateBatchReference(in)
			return err
		})
		prop.SetCompiled(prog)
		compiled := timePerBatch(func() error {
			_, err := prop.PropagateBatchFrom(in) // dispatches the compiled program
			return err
		})
		prop.SetQuantized(qp)
		quantized := timePerBatch(func() error {
			_, err := prop.PropagateBatchFrom(in) // quantized takes dispatch priority
			return err
		})
		prop.SetQuantized(nil)
		prop.SetCompiled(nil)
		e := quantBenchEntry{
			Batch:                  b,
			FloatNsPerSample:       interp / float64(b),
			CompiledNsPerSample:    compiled / float64(b),
			QuantizedNsPerSample:   quantized / float64(b),
			Speedup:                interp / quantized,
			QuantizedSamplesPerSec: float64(b) * 1e9 / quantized,
		}
		rep.Entries = append(rep.Entries, e)
		tbl.AddRow(fmt.Sprint(b),
			fmt.Sprintf("%.1f", e.FloatNsPerSample/1e3),
			fmt.Sprintf("%.1f", e.CompiledNsPerSample/1e3),
			fmt.Sprintf("%.1f", e.QuantizedNsPerSample/1e3),
			fmt.Sprintf("%.2fx", e.Speedup),
			fmt.Sprintf("%.0f", e.QuantizedSamplesPerSec),
		)
	}

	rep.Size = quantSizeStats{
		FloatFileBytes:     quantize.Float64SizeBytes(net),
		QuantFileBytes:     qp.Model().SizeBytes(),
		FloatResidentBytes: 16 * net.Params(), // W + W² panels, 8 B each
		QuantResidentBytes: qp.ResidentBytes(),
	}
	rep.Size.FileBytesRatio = float64(rep.Size.QuantFileBytes) / float64(rep.Size.FloatFileBytes)
	rep.Size.ResidentBytesRatio = float64(rep.Size.QuantResidentBytes) / float64(rep.Size.FloatResidentBytes)

	dev := edison.NewEdison()
	fCost, qCost := prop.Cost(), qp.Cost()
	rep.Edison = quantEdisonStats{
		FloatMillis:      dev.TimeMillis(fCost),
		QuantizedMillis:  dev.TimeMillis(qCost),
		FloatMillijoules: dev.EnergyMillijoules(fCost),
		QuantMillijoules: dev.EnergyMillijoules(qCost),
	}
	if rep.Edison.QuantizedMillis > 0 {
		rep.Edison.EdisonSpeedup = rep.Edison.FloatMillis / rep.Edison.QuantizedMillis
	}

	tbl.Notes = append(tbl.Notes,
		"float = PropagateBatchReference (interpreted); quantized = int8/int16 fixed-point path (accuracy held to the oracle quantization budget by proptest)",
		fmt.Sprintf("model bytes: file %d -> %d (%.2fx of float), resident %d -> %d (%.2fx of float)",
			rep.Size.FloatFileBytes, rep.Size.QuantFileBytes, rep.Size.FileBytesRatio,
			rep.Size.FloatResidentBytes, rep.Size.QuantResidentBytes, rep.Size.ResidentBytesRatio),
		fmt.Sprintf("edison projection: %.2f ms float vs %.2f ms quantized per inference (%.2fx)",
			rep.Edison.FloatMillis, rep.Edison.QuantizedMillis, rep.Edison.EdisonSpeedup))

	text, err := tbl.Render()
	if err != nil {
		return err
	}
	fmt.Println(text)
	js, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "BENCH_quant.json"), append(js, '\n'), 0o644)
}
