package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/apdeepsense/apdeepsense/internal/cluster"
	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/obs"
	"github.com/apdeepsense/apdeepsense/internal/report"
	"github.com/apdeepsense/apdeepsense/internal/serve"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// The cluster benchmark measures the sharded serving tier end to end: N
// replica processes (this same binary re-exec'd with -cluster-replica), a
// cluster.Router front door, and an open-loop load generator. Each replica
// carries a token-bucket admission budget, which is what makes replica
// scaling measurable on a small box: the replicas share cores, so raw CPU
// cannot distinguish 1 process from 4, but aggregate *admitted* throughput
// is budget-bound and scales with healthy replica count — exactly the
// production property the router exists to provide (scaling admission
// capacity, shedding the rest with honest Retry-After pricing).

// clusterScales is the replica-count sweep; the offered load stays fixed
// across the sweep so qps growth is pure scaling.
var clusterScales = []int{1, 2, 4}

// clusterScenario is one scenario row of BENCH_cluster.json. Field naming is
// benchdiff-aware: qps/speedup gate higher-is-better, *_micros gate
// lower-is-better, and counts/loads/offsets use neutral names so they stay
// informational.
type clusterScenario struct {
	Name        string  `json:"name"`
	Replicas    int     `json:"replicas"`
	OfferedLoad float64 `json:"offered_load"` // requests/second offered by the open loop
	DurationSec float64 `json:"window_sec"`
	Sent        int64   `json:"sent"`
	OK          int64   `json:"ok"`
	Failed      int64   `json:"failed"` // non-2xx plus transport errors seen by the client
	QPS         float64 `json:"qps"`    // successful requests per second
	// Speedup is this row's QPS over the 1-replica row's (scale rows only).
	Speedup    float64 `json:"speedup,omitempty"`
	P50Micros  float64 `json:"p50_micros"`
	P99Micros  float64 `json:"p99_micros"`
	P999Micros float64 `json:"p999_micros"`
	// Router-side event counts over the scenario window.
	Spills  float64 `json:"spills,omitempty"`
	Retries float64 `json:"retries,omitempty"`
	Shed    float64 `json:"shed,omitempty"`
	// Node-kill bookkeeping: the kill offset, the health-probe window after
	// it, and the failures falling before/after that window. The acceptance
	// property is FailedAfterWindow == 0.
	KillAtSec          float64 `json:"kill_at_sec,omitempty"`
	ProbeWindowSec     float64 `json:"probe_window_sec,omitempty"`
	FailedBeforeWindow int64   `json:"failed_before_window"`
	FailedAfterWindow  int64   `json:"failed_after_window"`
}

type clusterBenchReport struct {
	Network            string            `json:"network"`
	ReplicasMax        int               `json:"replicas_max"`
	CalibratedCapacity float64           `json:"calibrated_capacity"` // closed-loop rps of one unthrottled replica
	BudgetPerReplica   float64           `json:"budget_per_replica"`  // token-bucket rate per replica
	OfferedLoad        float64           `json:"offered_load"`        // fixed offered load for the scale sweep
	CellSec            float64           `json:"cell_sec"`
	GOMAXPROCS         int               `json:"gomaxprocs"`
	Timestamp          string            `json:"timestamp"`
	Scenarios          []clusterScenario `json:"scenarios"`
	// Speedup1To4 is the headline scaling number (4-replica qps over
	// 1-replica qps at fixed offered load); omitted on smaller sweeps.
	Speedup1To4 float64 `json:"speedup_1_to_4,omitempty"`
}

// --- replica child process ---------------------------------------------------

// runClusterReplica is the hidden -cluster-replica entry point: one serving
// replica (untrained 5-256-256-1 network behind the request coalescer) with
// an optional admission budget, speaking the same /predict + /readyz
// contract as examples/server. It prints "ADDR <url>" on stdout once
// listening and drains gracefully on SIGTERM/SIGINT.
func runClusterReplica(budgetRate float64, listen string) error {
	net5, err := nn.New(nn.Config{
		InputDim: 5, Hidden: []int{256, 256}, OutputDim: 1,
		Activation: nn.ActReLU, OutputActivation: nn.ActIdentity,
		KeepProb: 0.9, Seed: 1,
	})
	if err != nil {
		return fmt.Errorf("cluster replica: %w", err)
	}
	est, err := core.NewApDeepSense(net5, core.Options{}, 0)
	if err != nil {
		return fmt.Errorf("cluster replica: %w", err)
	}
	coal, err := serve.New(serve.Config{MaxBatch: 64, MaxWait: 2 * time.Millisecond, QueueDepth: 256},
		func(batch []tensor.Vector) ([]core.GaussianVec, error) {
			return core.PredictBatch(est, batch, 0)
		})
	if err != nil {
		return fmt.Errorf("cluster replica: %w", err)
	}
	var budget *cluster.Budget
	if budgetRate > 0 {
		burst := math.Max(1, budgetRate/4)
		if budget, err = cluster.NewBudget(budgetRate, burst); err != nil {
			return fmt.Errorf("cluster replica: %w", err)
		}
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	predict := func(w http.ResponseWriter, r *http.Request) {
		if budget != nil {
			if ok, wait := budget.Allow(); !ok {
				w.Header().Set("Retry-After", strconv.FormatInt(ceilSecs(wait), 10))
				http.Error(w, "replica budget exhausted", http.StatusTooManyRequests)
				return
			}
		}
		var in struct {
			Input []float64 `json:"input"`
		}
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&in); err != nil || len(in.Input) != 5 {
			http.Error(w, "want JSON {\"input\": [5 floats]}", http.StatusBadRequest)
			return
		}
		g, err := coal.Do(r.Context(), tensor.Vector(in.Input))
		if err != nil {
			status := http.StatusInternalServerError
			switch {
			case errors.Is(err, serve.ErrQueueFull):
				status = http.StatusTooManyRequests
			case errors.Is(err, serve.ErrClosed):
				status = http.StatusServiceUnavailable
			}
			if hint, ok := serve.RetryAfter(err); ok {
				secs := ceilSecs(hint)
				if secs < 1 {
					secs = 1
				}
				w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
			}
			http.Error(w, err.Error(), status)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"mean": g.Mean, "std": g.Std(0)})
	}
	mux.HandleFunc("POST /predict", predict)
	mux.HandleFunc("POST /v1/models/{name}/predict", predict)
	mux.HandleFunc("GET /v1/models", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"models":[{"name":"default","network":"5-256-256-1"}]}`)
	})

	// A rolling reload respawns on the predecessor's exact port; the old
	// process may hold the socket for a beat after SIGTERM, so binding
	// retries briefly instead of failing.
	ln, err := listenRetry(listen, 3*time.Second)
	if err != nil {
		return fmt.Errorf("cluster replica: %w", err)
	}
	srv := &http.Server{Handler: mux}
	fmt.Printf("ADDR http://%s\n", ln.Addr())
	os.Stdout.Sync()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case <-sig:
	case err := <-errc:
		return fmt.Errorf("cluster replica: %w", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(ctx)
	return coal.Close(ctx)
}

func listenRetry(addr string, within time.Duration) (net.Listener, error) {
	deadline := time.Now().Add(within)
	for {
		ln, err := net.Listen("tcp", addr)
		if err == nil {
			return ln, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(40 * time.Millisecond)
	}
}

func ceilSecs(d time.Duration) int64 { return int64(math.Ceil(d.Seconds())) }

// --- replica process management ---------------------------------------------

type replicaProc struct {
	cmd  *exec.Cmd
	url  string // http://host:port
	addr string // host:port, reused on respawn
}

// spawnReplica re-execs this binary as one replica and waits for its ADDR
// handshake. addr "127.0.0.1:0" picks a free port; a concrete addr reuses it.
func spawnReplica(budget float64, addr string) (*replicaProc, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(exe,
		"-cluster-replica",
		"-cluster-budget", strconv.FormatFloat(budget, 'g', -1, 64),
		"-cluster-listen", addr,
	)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	lines := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if s, ok := strings.CutPrefix(sc.Text(), "ADDR "); ok {
				lines <- s
				break
			}
		}
		io.Copy(io.Discard, stdout)
		close(lines)
	}()
	select {
	case u, ok := <-lines:
		if !ok || u == "" {
			cmd.Process.Kill()
			cmd.Wait()
			return nil, fmt.Errorf("replica exited before ADDR handshake")
		}
		return &replicaProc{cmd: cmd, url: u, addr: strings.TrimPrefix(u, "http://")}, nil
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("replica did not report ADDR within 15s")
	}
}

// stop terminates the replica gracefully (SIGTERM, then SIGKILL after grace).
func (p *replicaProc) stop() {
	if p == nil || p.cmd.Process == nil {
		return
	}
	p.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() { p.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		p.cmd.Process.Kill()
		<-done
	}
}

// kill is the node-kill scenario's hard stop: SIGKILL, no drain.
func (p *replicaProc) kill() {
	p.cmd.Process.Kill()
	p.cmd.Wait()
}

// --- load generation ---------------------------------------------------------

// loadSample is one request's outcome: offset of its start into the
// scenario, latency, and success.
type loadSample struct {
	offsetSec float64
	micros    float64
	ok        bool
}

type loadStats struct {
	mu      sync.Mutex
	samples []loadSample
}

func (s *loadStats) add(offsetSec, micros float64, ok bool) {
	s.mu.Lock()
	s.samples = append(s.samples, loadSample{offsetSec, micros, ok})
	s.mu.Unlock()
}

// openLoop offers requests at a fixed rate regardless of completion times
// (open loop: arrivals are independent of service, so saturation shows up as
// shed load, not as a silently slowed client). Each arrival runs in its own
// goroutine; keys come from keyFn. The loop runs for at least minDur and
// until stopAfter (nil means stop exactly at minDur).
func openLoop(client *http.Client, baseURL string, offered float64, minDur time.Duration,
	stopAfter <-chan struct{}, keyFn func(i int64) string) (*loadStats, time.Duration) {
	stats := &loadStats{}
	body := []byte(`{"input":[0.1,-0.2,0.3,0.05,-0.4]}`)
	interval := time.Duration(float64(time.Second) / offered)
	var wg sync.WaitGroup
	start := time.Now()
	done := func() bool {
		if time.Since(start) < minDur {
			return false
		}
		if stopAfter == nil {
			return true
		}
		select {
		case <-stopAfter:
			return true
		default:
			return false
		}
	}
	var i int64
	for next := start; !done(); next = next.Add(interval) {
		if wait := time.Until(next); wait > 0 {
			time.Sleep(wait)
		}
		wg.Add(1)
		go func(i int64) {
			defer wg.Done()
			t0 := time.Now()
			ok := doPredict(client, baseURL, keyFn(i), body)
			stats.add(t0.Sub(start).Seconds(), float64(time.Since(t0).Microseconds()), ok)
		}(i)
		i++
	}
	wg.Wait()
	return stats, time.Since(start)
}

func doPredict(client *http.Client, baseURL, key string, body []byte) bool {
	req, err := http.NewRequest(http.MethodPost, baseURL+"/predict", bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Shard-Key", key)
	resp, err := client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 64<<10))
	resp.Body.Close()
	return resp.StatusCode >= 200 && resp.StatusCode < 300
}

// summarize folds raw samples into a scenario row.
func summarize(sc *clusterScenario, stats *loadStats, elapsed time.Duration) {
	var okLats []float64
	for _, s := range stats.samples {
		sc.Sent++
		if s.ok {
			sc.OK++
			okLats = append(okLats, s.micros)
		} else {
			sc.Failed++
		}
	}
	sc.DurationSec = elapsed.Seconds()
	if sc.DurationSec > 0 {
		sc.QPS = float64(sc.OK) / sc.DurationSec
	}
	sort.Float64s(okLats)
	sc.P50Micros = percentile(okLats, 0.50)
	sc.P99Micros = percentile(okLats, 0.99)
	sc.P999Micros = percentile(okLats, 0.999)
}

// calibrateReplica measures one unthrottled replica's closed-loop capacity:
// the budget rate derives from it, so the sweep's offered load lands in a
// regime this box can actually generate and absorb.
func calibrateReplica(client *http.Client, url string) float64 {
	const workers = 8
	body := []byte(`{"input":[0.1,-0.2,0.3,0.05,-0.4]}`)
	run := func(d time.Duration) float64 {
		var n atomic.Int64
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				key := fmt.Sprintf("cal-%d", w)
				for time.Since(start) < d {
					if doPredict(client, url, key, body) {
						n.Add(1)
					}
				}
			}(w)
		}
		wg.Wait()
		return float64(n.Load()) / time.Since(start).Seconds()
	}
	run(200 * time.Millisecond) // warmup
	return run(500 * time.Millisecond)
}

// --- orchestration -----------------------------------------------------------

// emitClusterBench runs the cluster scenarios and writes BENCH_cluster.json.
// maxReplicas bounds the sweep (4 is the full run; 2 is the CI smoke); cell
// is the steady-state measurement window per scale cell.
func emitClusterBench(dir string, maxReplicas int, cell time.Duration) error {
	if maxReplicas < 1 {
		return fmt.Errorf("cluster bench: need at least 1 replica")
	}
	client := &http.Client{
		Timeout:   5 * time.Second,
		Transport: &http.Transport{MaxIdleConnsPerHost: 256, IdleConnTimeout: 30 * time.Second},
	}

	log.Printf("cluster: calibrating single-replica capacity")
	cal, err := spawnReplica(0, "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("cluster bench: %w", err)
	}
	capacity := calibrateReplica(client, cal.url)
	cal.stop()
	if capacity <= 0 {
		return fmt.Errorf("cluster bench: calibration measured zero capacity")
	}
	// The budget is a tenth of raw capacity, clamped: low enough that N
	// budget-bound replicas plus the router and the load generator all fit
	// on this box's cores, high enough to be statistically stable.
	budget := math.Max(50, math.Min(capacity/10, 250))
	offered := 1.15 * float64(maxReplicas) * budget
	log.Printf("cluster: capacity %.0f rps/replica, budget %.0f rps, offered load %.0f rps",
		capacity, budget, offered)

	rep := clusterBenchReport{
		Network:            "5-256-256-1",
		ReplicasMax:        maxReplicas,
		CalibratedCapacity: capacity,
		BudgetPerReplica:   budget,
		OfferedLoad:        offered,
		CellSec:            cell.Seconds(),
		GOMAXPROCS:         maxprocs(),
		Timestamp:          time.Now().UTC().Format(time.RFC3339),
	}
	tbl := &report.Table{
		Title: fmt.Sprintf("Sharded serving tier: open loop at %.0f rps offered, %.0f rps budget/replica", offered, budget),
		Headers: []string{"scenario", "replicas", "qps", "speedup", "p50 µs", "p99 µs", "p999 µs",
			"ok", "failed", "shed"},
	}

	var scaleQPS = map[int]float64{}
	for _, n := range clusterScales {
		if n > maxReplicas {
			log.Printf("cluster: skipping scale_%d (max %d replicas requested)", n, maxReplicas)
			continue
		}
		sc, err := runScaleScenario(client, n, budget, offered, cell)
		if err != nil {
			return fmt.Errorf("cluster bench: scale_%d: %w", n, err)
		}
		scaleQPS[n] = sc.QPS
		if base := scaleQPS[1]; base > 0 {
			sc.Speedup = sc.QPS / base
		}
		rep.Scenarios = append(rep.Scenarios, *sc)
		addClusterRow(tbl, sc)
	}
	if q1, q4 := scaleQPS[1], scaleQPS[4]; q1 > 0 && q4 > 0 {
		rep.Speedup1To4 = q4 / q1
	}

	if maxReplicas >= 4 {
		for _, s := range []struct {
			name string
			run  func(*http.Client, float64, time.Duration) (*clusterScenario, error)
		}{
			{"node_kill", runNodeKillScenario},
			{"rolling_reload", runRollingReloadScenario},
			{"hot_key", runHotKeyScenario},
		} {
			sc, err := s.run(client, budget, cell)
			if err != nil {
				return fmt.Errorf("cluster bench: %s: %w", s.name, err)
			}
			rep.Scenarios = append(rep.Scenarios, *sc)
			addClusterRow(tbl, sc)
		}
	} else {
		log.Printf("cluster: skipping node_kill/rolling_reload/hot_key (need 4 replicas, have %d)", maxReplicas)
	}

	tbl.Notes = append(tbl.Notes,
		"open loop: arrivals at the offered rate regardless of completions; failures are shed load, not slowdown",
		fmt.Sprintf("budget %.0f rps/replica (= min(capacity/10, 250)); offered load fixed at 1.15 x %d x budget", budget, maxReplicas),
	)
	text, err := tbl.Render()
	if err != nil {
		return err
	}
	fmt.Println(text)
	js, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "BENCH_cluster.json"), append(js, '\n'), 0o644)
}

func addClusterRow(tbl *report.Table, sc *clusterScenario) {
	speedup := ""
	if sc.Speedup > 0 {
		speedup = fmt.Sprintf("%.2fx", sc.Speedup)
	}
	tbl.AddRow(sc.Name, fmt.Sprint(sc.Replicas),
		fmt.Sprintf("%.0f", sc.QPS), speedup,
		fmt.Sprintf("%.0f", sc.P50Micros),
		fmt.Sprintf("%.0f", sc.P99Micros),
		fmt.Sprintf("%.0f", sc.P999Micros),
		fmt.Sprint(sc.OK), fmt.Sprint(sc.Failed), fmt.Sprintf("%.0f", sc.Shed))
}

// clusterFleet spawns n budget-bound replicas and a router over them,
// served on a real loopback port.
type clusterFleet struct {
	replicas []*replicaProc
	router   *cluster.Router
	metrics  *cluster.Metrics
	srv      *http.Server
	url      string
}

func startFleet(n int, budget float64) (*clusterFleet, error) {
	f := &clusterFleet{}
	urls := make([]string, 0, n)
	for i := 0; i < n; i++ {
		p, err := spawnReplica(budget, "127.0.0.1:0")
		if err != nil {
			f.close()
			return nil, err
		}
		f.replicas = append(f.replicas, p)
		urls = append(urls, p.url)
	}
	f.metrics = cluster.NewMetrics(obs.NewRegistry())
	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Replicas:      urls,
		ProbeInterval: 100 * time.Millisecond,
		ProbeTimeout:  500 * time.Millisecond,
		MaxSpill:      1,
		Metrics:       f.metrics,
	})
	if err != nil {
		f.close()
		return nil, err
	}
	f.router = rt
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		f.close()
		return nil, err
	}
	f.srv = &http.Server{Handler: rt}
	go f.srv.Serve(ln)
	f.url = "http://" + ln.Addr().String()
	return f, nil
}

func (f *clusterFleet) close() {
	if f.srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		f.srv.Shutdown(ctx)
		cancel()
	}
	if f.router != nil {
		f.router.Close()
	}
	for _, p := range f.replicas {
		p.stop()
	}
}

func uniformKeys(i int64) string { return "dev-" + strconv.FormatInt(i%4096, 10) }

func runScaleScenario(client *http.Client, n int, budget, offered float64, cell time.Duration) (*clusterScenario, error) {
	log.Printf("cluster: scale_%d (%d replicas, offered %.0f rps)", n, n, offered)
	f, err := startFleet(n, budget)
	if err != nil {
		return nil, err
	}
	defer f.close()
	openLoop(client, f.url, offered, cell/4+50*time.Millisecond, nil, uniformKeys) // warmup
	stats, elapsed := openLoop(client, f.url, offered, cell, nil, uniformKeys)
	sc := &clusterScenario{Name: fmt.Sprintf("scale_%d", n), Replicas: n, OfferedLoad: offered,
		Shed: f.metrics.Shed()}
	summarize(sc, stats, elapsed)
	return sc, nil
}

// runNodeKillScenario SIGKILLs one replica mid-load. The offered load is
// sized for the survivors (0.6 x 4 x budget < 3 x budget), so the acceptance
// property is clean: after the health-probe window the router must drop
// nothing — and during the window the transport-error retry path should
// already be healing.
func runNodeKillScenario(client *http.Client, budget float64, cell time.Duration) (*clusterScenario, error) {
	offered := 0.6 * 4 * budget
	total := 3 * cell
	log.Printf("cluster: node_kill (4 replicas, offered %.0f rps, kill at %v)", offered, cell)
	f, err := startFleet(4, budget)
	if err != nil {
		return nil, err
	}
	defer f.close()

	victim := f.replicas[3]
	var killAt atomic.Int64 // microseconds into the run
	start := time.Now()
	go func() {
		time.Sleep(cell)
		killAt.Store(time.Since(start).Microseconds())
		victim.kill()
	}()
	stats, elapsed := openLoop(client, f.url, offered, total, nil, uniformKeys)

	// The probe window: FailAfter consecutive probes (100ms apart) each up
	// to the 500ms probe timeout, plus slack for the ring swap.
	const probeWindow = 2*0.1 + 0.5 + 0.2
	killSec := float64(killAt.Load()) / 1e6
	sc := &clusterScenario{Name: "node_kill", Replicas: 4, OfferedLoad: offered,
		KillAtSec: killSec, ProbeWindowSec: probeWindow,
		Spills: spillTotal(f), Retries: retryTotal(f), Shed: f.metrics.Shed()}
	for _, s := range stats.samples {
		if !s.ok {
			if s.offsetSec > killSec+probeWindow {
				sc.FailedAfterWindow++
			} else {
				sc.FailedBeforeWindow++
			}
		}
	}
	summarize(sc, stats, elapsed)
	return sc, nil
}

// runRollingReloadScenario drains, restarts, and rejoins every replica in
// sequence while load runs. Zero non-2xx is the acceptance property: the
// drain removes the shard before its process dies, and the respawned process
// re-enters only after the readmit warmup.
func runRollingReloadScenario(client *http.Client, budget float64, cell time.Duration) (*clusterScenario, error) {
	offered := 0.6 * 4 * budget
	log.Printf("cluster: rolling_reload (4 replicas, offered %.0f rps)", offered)
	f, err := startFleet(4, budget)
	if err != nil {
		return nil, err
	}
	defer f.close()

	reloadDone := make(chan struct{})
	var reloadErr error
	go func() {
		defer close(reloadDone)
		for i := range f.replicas {
			if reloadErr = rollOne(f, i, budget); reloadErr != nil {
				return
			}
		}
	}()
	stats, elapsed := openLoop(client, f.url, offered, cell, reloadDone, uniformKeys)
	if reloadErr != nil {
		return nil, reloadErr
	}
	sc := &clusterScenario{Name: "rolling_reload", Replicas: 4, OfferedLoad: offered,
		Spills: spillTotal(f), Retries: retryTotal(f), Shed: f.metrics.Shed()}
	summarize(sc, stats, elapsed)
	return sc, nil
}

// rollOne reloads replica i: drain (router-side, waits in-flight), SIGTERM,
// respawn on the same port, wait for readiness, rejoin, wait for the ring.
func rollOne(f *clusterFleet, i int, budget float64) error {
	p := f.replicas[i]
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := f.router.Drain(ctx, p.url); err != nil {
		return fmt.Errorf("drain %s: %w", p.url, err)
	}
	p.stop()
	np, err := spawnReplica(budget, p.addr)
	if err != nil {
		return fmt.Errorf("respawn %s: %w", p.addr, err)
	}
	f.replicas[i] = np
	if err := f.router.Rejoin(np.url); err != nil {
		return fmt.Errorf("rejoin %s: %w", np.url, err)
	}
	// Wait until the probe loop has readmitted it (warmup: 2 consecutive
	// probes at 100ms), so the next roll never leaves the ring at 2 shards.
	deadline := time.Now().Add(10 * time.Second)
	for {
		for _, n := range f.router.Ring().Nodes() {
			if n == np.url {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("replica %s not readmitted within 10s", np.url)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// runHotKeyScenario offers Zipf(1.5) traffic: ~38% of requests carry the
// single hottest key, overdriving one shard's budget. The router's
// saturation spillover moves the overflow to the ring successor instead of
// shedding it, so the property to watch is spills > 0 with qps close to
// offered.
func runHotKeyScenario(client *http.Client, budget float64, cell time.Duration) (*clusterScenario, error) {
	offered := 0.8 * 4 * budget
	log.Printf("cluster: hot_key (4 replicas, offered %.0f rps, zipf s=1.5)", offered)
	f, err := startFleet(4, budget)
	if err != nil {
		return nil, err
	}
	defer f.close()
	z, err := cluster.NewZipf(20260808, 1.5, 1, 1<<16)
	if err != nil {
		return nil, err
	}
	var zmu sync.Mutex
	keyFn := func(i int64) string {
		zmu.Lock()
		defer zmu.Unlock()
		return z.NextKey()
	}
	openLoop(client, f.url, offered, cell/4+50*time.Millisecond, nil, keyFn)
	stats, elapsed := openLoop(client, f.url, offered, cell, nil, keyFn)
	sc := &clusterScenario{Name: "hot_key", Replicas: 4, OfferedLoad: offered,
		Spills: spillTotal(f), Retries: retryTotal(f), Shed: f.metrics.Shed()}
	summarize(sc, stats, elapsed)
	return sc, nil
}

func spillTotal(f *clusterFleet) float64 {
	var total float64
	for _, p := range f.replicas {
		total += f.metrics.Spills(p.url)
	}
	return total
}

func retryTotal(f *clusterFleet) float64 {
	var total float64
	for _, p := range f.replicas {
		total += f.metrics.Retries(p.url)
	}
	return total
}
