package main

import "testing"

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"quick", "default", "paper"} {
		s, err := scaleByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Name != name {
			t.Errorf("scale %q has name %q", name, s.Name)
		}
	}
	if _, err := scaleByName("huge"); err == nil {
		t.Error("expected error for unknown scale")
	}
}
