package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/obs"
	"github.com/apdeepsense/apdeepsense/internal/report"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// batchSizes is the sweep recorded by -batch.
var batchSizes = []int{1, 8, 16, 32, 64, 128, 256}

// batchBenchEntry is one row of BENCH_batch.json.
type batchBenchEntry struct {
	Activation        string  `json:"activation"`
	Batch             int     `json:"batch"`
	SequentialNsPerOp float64 `json:"sequential_ns_per_sample"`
	BatchNsPerOp      float64 `json:"batch_ns_per_sample"`
	Speedup           float64 `json:"speedup"`
	SequentialPerSec  float64 `json:"sequential_samples_per_sec"`
	BatchPerSec       float64 `json:"batch_samples_per_sec"`
}

type batchBenchReport struct {
	Network   string            `json:"network"`
	KeepProb  float64           `json:"keep_prob"`
	Timestamp string            `json:"timestamp"`
	Entries   []batchBenchEntry `json:"entries"`
}

// benchObs is the -obs instrumentation: a metrics registry fed by
// propagator hooks during the benchmark, snapshotted to
// results/BENCH_obs.prom next to BENCH_batch.json so the per-layer time
// distribution and scratch-pool behavior ship with the throughput numbers.
type benchObs struct {
	reg       *obs.Registry
	layerTime *obs.HistogramVec
	batchRows *obs.Histogram
	scratch   *obs.CounterVec
}

func newBenchObs() *benchObs {
	reg := obs.NewRegistry()
	return &benchObs{
		reg: reg,
		layerTime: reg.HistogramVec("apds_propagate_layer_seconds",
			"Wall time per network layer per propagation chunk.",
			obs.ExpBuckets(1e-6, 2, 16), "activation", "layer"),
		batchRows: reg.Histogram("apds_propagate_batch_rows",
			"Rows per PropagateBatch call.", obs.ExpBuckets(1, 2, 12)),
		scratch: reg.CounterVec("apds_scratch_pool_gets_total",
			"Batch scratch-buffer acquisitions by pool outcome.", "result"),
	}
}

// hooks returns the propagator callbacks for one activation's runs.
func (o *benchObs) hooks(act string) *core.Hooks {
	if o == nil {
		return nil
	}
	hit := o.scratch.With("hit")
	miss := o.scratch.With("miss")
	return &core.Hooks{
		BatchStart: func(rows int) { o.batchRows.Observe(float64(rows)) },
		LayerTime: func(layer, rows int, d time.Duration) {
			o.layerTime.With(act, strconv.Itoa(layer)).Observe(d.Seconds())
		},
		ScratchGet: func(ok bool) {
			if ok {
				hit.Inc()
			} else {
				miss.Inc()
			}
		},
	}
}

// emitBatchBench measures per-sample Propagate against the matrix-level
// PropagateBatch on the 2-hidden-layer 256-unit network across batch sizes,
// prints the comparison, and records it as BENCH_batch.json under dir. With
// withObs it also attaches observability hooks and writes the registry
// snapshot as BENCH_obs.prom.
func emitBatchBench(dir string, withObs bool) error {
	var ob *benchObs
	if withObs {
		ob = newBenchObs()
	}
	rep := batchBenchReport{
		Network:   "5-256-256-1",
		KeepProb:  0.9,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}
	tbl := &report.Table{
		Title:   "Batched moment propagation vs per-sample loop (5-256-256-1)",
		Headers: []string{"act", "batch", "seq µs/sample", "batch µs/sample", "speedup", "batch samples/s"},
	}
	for _, act := range []nn.Activation{nn.ActReLU, nn.ActTanh} {
		net, err := nn.New(nn.Config{
			InputDim: 5, Hidden: []int{256, 256}, OutputDim: 1,
			Activation: act, OutputActivation: nn.ActIdentity,
			KeepProb: rep.KeepProb, Seed: 1,
		})
		if err != nil {
			return fmt.Errorf("batch bench: %w", err)
		}
		prop, err := core.NewPropagator(net, core.Options{})
		if err != nil {
			return fmt.Errorf("batch bench: %w", err)
		}
		prop.SetHooks(ob.hooks(act.String()))
		for _, b := range batchSizes {
			inputs := benchBatchInputs(b, net.InputDim())
			seq := timePerBatch(func() error {
				for _, x := range inputs {
					if _, err := prop.Propagate(x); err != nil {
						return err
					}
				}
				return nil
			})
			bat := timePerBatch(func() error {
				_, err := prop.PropagateBatch(inputs)
				return err
			})
			e := batchBenchEntry{
				Activation:        act.String(),
				Batch:             b,
				SequentialNsPerOp: seq / float64(b),
				BatchNsPerOp:      bat / float64(b),
				Speedup:           seq / bat,
				SequentialPerSec:  float64(b) * 1e9 / seq,
				BatchPerSec:       float64(b) * 1e9 / bat,
			}
			rep.Entries = append(rep.Entries, e)
			tbl.AddRow(e.Activation, fmt.Sprint(b),
				fmt.Sprintf("%.1f", e.SequentialNsPerOp/1e3),
				fmt.Sprintf("%.1f", e.BatchNsPerOp/1e3),
				fmt.Sprintf("%.2fx", e.Speedup),
				fmt.Sprintf("%.0f", e.BatchPerSec),
			)
		}
	}
	tbl.Notes = append(tbl.Notes,
		"sequential = Propagate per sample; batch = PropagateBatch over the whole batch")

	text, err := tbl.Render()
	if err != nil {
		return err
	}
	fmt.Println(text)
	js, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_batch.json"), append(js, '\n'), 0o644); err != nil {
		return err
	}
	if ob != nil {
		snap := ob.reg.Snapshot()
		if err := os.WriteFile(filepath.Join(dir, "BENCH_obs.prom"), []byte(snap), 0o644); err != nil {
			return err
		}
		fmt.Printf("observability snapshot (%d bytes) written to %s\n",
			len(snap), filepath.Join(dir, "BENCH_obs.prom"))
	}
	return nil
}

func benchBatchInputs(n, dim int) []tensor.Vector {
	rng := rand.New(rand.NewSource(7))
	out := make([]tensor.Vector, n)
	for i := range out {
		v := make(tensor.Vector, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		out[i] = v
	}
	return out
}

// timePerBatch returns the nanoseconds one call of fn takes, measured over
// enough repetitions to amortize timer noise (at least 5 calls and 200 ms
// after a warmup call). fn errors panic: benchmark inputs are well-formed by
// construction.
func timePerBatch(fn func() error) float64 {
	check := func(err error) {
		if err != nil {
			panic(fmt.Sprintf("apds-bench batch: %v", err))
		}
	}
	check(fn()) // warmup
	const (
		minReps = 5
		minTime = 200 * time.Millisecond
	)
	var reps int
	var elapsed time.Duration
	for start := time.Now(); reps < minReps || elapsed < minTime; elapsed = time.Since(start) {
		check(fn())
		reps++
	}
	return float64(elapsed.Nanoseconds()) / float64(reps)
}
