package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/report"
	"github.com/apdeepsense/apdeepsense/internal/session"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// Sessions bench shape: 3-channel samples, 8-sample windows, stride 4 — the
// stream example's geometry, giving 24-dim model inputs.
const (
	sessChannels = 3
	sessLength   = 8
	sessStride   = 4
)

// sessionBenchReport is BENCH_stream.json. Key naming follows the benchdiff
// contract: *_per_sec rates are gated (scale-independent per-item costs),
// *_sec absolute durations and raw counts are informational (they scale with
// -session-count, which differs between the committed run and CI smoke).
type sessionBenchReport struct {
	Shape      string `json:"shape"`
	Network    string `json:"network"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Timestamp  string `json:"timestamp"`

	// Fleet scale and footprint.
	ResidentSessions int     `json:"resident_sessions"`
	SessionBytes     float64 `json:"session_bytes"` // heap bytes per resident session

	// Arena throughput.
	CreatePerSec  float64 `json:"create_per_sec"`
	IngestPerSec  float64 `json:"ingest_per_sec"`
	WindowsPerSec float64 `json:"windows_per_sec"`
	StreamDevices int     `json:"stream_devices"`

	// Whole-fleet persistence.
	SnapshotSec      float64 `json:"snapshot_sec"`
	SnapshotBytes    int64   `json:"snapshot_bytes"`
	RestoreSec       float64 `json:"restore_sec"`
	RestoredSessions int     `json:"restored_sessions"`

	// Timing-wheel idle eviction over the whole fleet.
	ChurnEvicted int     `json:"churn_evicted"`
	ChurnPerSec  float64 `json:"churn_per_sec"`

	// VerdictContinuity: restored fleet's continuation verdicts are
	// bit-identical to the never-restarted fleet's.
	VerdictContinuity bool `json:"verdict_continuity"`
}

// sessSample derives a deterministic 3-channel sample from (device, step):
// cheap arithmetic instead of an RNG so the hot loops measure the arena, and
// reproducible so the continuity check can replay identical streams.
func sessSample(dev, step int) []float64 {
	v := math.Sin(float64(dev)*0.001+float64(step)*0.37) + float64(step%5)*0.2
	return []float64{v, v * 0.5, 1 - v}
}

// emitSessionsBench measures the resident session fleet (internal/session)
// end to end: create `count` sessions, stream windows through a subset,
// snapshot the whole fleet to disk, restore it into a second manager, prove
// verdict continuity, and churn the fleet through the idle-eviction wheel.
// Results land in BENCH_stream.json under dir.
func emitSessionsBench(dir string, count, streamDevs int) error {
	if count < 1 {
		return fmt.Errorf("sessions bench: -session-count %d < 1", count)
	}
	if streamDevs > count {
		streamDevs = count
	}
	net, err := nn.New(nn.Config{
		InputDim: sessChannels * sessLength, Hidden: []int{32}, OutputDim: 1,
		Activation: nn.ActReLU, OutputActivation: nn.ActIdentity,
		KeepProb: 0.9, Seed: 1,
	})
	if err != nil {
		return fmt.Errorf("sessions bench: %w", err)
	}
	est, err := core.NewApDeepSense(net, core.Options{}, 0)
	if err != nil {
		return fmt.Errorf("sessions bench: %w", err)
	}
	predict := func(_ context.Context, rows []tensor.Vector) ([]core.GaussianVec, error) {
		return core.PredictBatch(est, rows, 0)
	}

	// A controllable clock: the fleet stays untouched by wall time, and the
	// churn phase advances it past the idle timeout on demand.
	const idle = time.Hour
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time { return now }
	cfg := session.Config{
		Channels: sessChannels, Length: sessLength, Stride: sessStride,
		Standardize: true, WarmupWindows: 2,
		Shards: 1024, IdleTimeout: idle, Clock: clock,
	}
	m, err := session.NewManager(cfg, predict)
	if err != nil {
		return fmt.Errorf("sessions bench: %w", err)
	}
	ctx := context.Background()
	dev := func(i int) string { return fmt.Sprintf("f%d/d%d", i&1023, i) }

	rep := sessionBenchReport{
		Shape:      fmt.Sprintf("%dch x %d len / stride %d", sessChannels, sessLength, sessStride),
		Network:    fmt.Sprintf("%d-32-1", sessChannels*sessLength),
		GOMAXPROCS: maxprocs(),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}

	// Phase 1 — create: first ingest of every device allocates its slot.
	heapBefore := heapInUse()
	start := time.Now()
	for i := 0; i < count; i++ {
		if _, err := m.Ingest(ctx, dev(i), sessSample(i, 0)); err != nil {
			return fmt.Errorf("sessions bench: create: %w", err)
		}
	}
	createSecs := time.Since(start).Seconds()
	rep.ResidentSessions = m.Resident()
	rep.CreatePerSec = float64(count) / createSecs
	rep.SessionBytes = float64(heapInUse()-heapBefore) / float64(count)

	// Phase 2 — stream: a subset of devices runs to window completion
	// (Length-1 more samples fill the first window, Stride more cut the
	// second), measuring steady-state ingest and window throughput.
	perDev := sessLength - 1 + sessStride
	start = time.Now()
	for i := 0; i < streamDevs; i++ {
		d := dev(i)
		for step := 1; step <= perDev; step++ {
			if _, err := m.Ingest(ctx, d, sessSample(i, step)); err != nil {
				return fmt.Errorf("sessions bench: stream: %w", err)
			}
		}
	}
	streamSecs := time.Since(start).Seconds()
	st := m.Stats()
	rep.StreamDevices = streamDevs
	rep.IngestPerSec = float64(streamDevs*perDev) / streamSecs
	rep.WindowsPerSec = float64(st.Windows) / streamSecs

	// Phase 3 — snapshot the whole resident fleet to disk.
	snapPath := filepath.Join(os.TempDir(), fmt.Sprintf("apds-bench-fleet-%d.apsf", os.Getpid()))
	defer os.Remove(snapPath)
	f, err := os.Create(snapPath)
	if err != nil {
		return fmt.Errorf("sessions bench: %w", err)
	}
	start = time.Now()
	info, err := m.Snapshot(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("sessions bench: snapshot: %w", err)
	}
	rep.SnapshotSec = time.Since(start).Seconds()
	rep.SnapshotBytes = info.Bytes

	// Phase 4 — restore into a fresh manager (the "restarted node").
	m2, err := session.NewManager(cfg, predict)
	if err != nil {
		return fmt.Errorf("sessions bench: %w", err)
	}
	rf, err := os.Open(snapPath)
	if err != nil {
		return fmt.Errorf("sessions bench: %w", err)
	}
	start = time.Now()
	rinfo, err := m2.Restore(rf)
	rf.Close()
	if err != nil {
		return fmt.Errorf("sessions bench: restore: %w", err)
	}
	rep.RestoreSec = time.Since(start).Seconds()
	rep.RestoredSessions = rinfo.Sessions

	// Phase 5 — verdict continuity: identical continuation streams into the
	// original and the restored fleet must gate identically, bit for bit.
	rep.VerdictContinuity = true
	contDevs := streamDevs
	if contDevs > 1000 {
		contDevs = 1000
	}
	for i := 0; i < contDevs; i++ {
		d := dev(i)
		for step := perDev + 1; step <= perDev+sessStride; step++ {
			v1, err := m.Ingest(ctx, d, sessSample(i, step))
			if err != nil {
				return fmt.Errorf("sessions bench: continuity: %w", err)
			}
			v2, err := m2.Ingest(ctx, d, sessSample(i, step))
			if err != nil {
				return fmt.Errorf("sessions bench: continuity: %w", err)
			}
			if !sessVerdictsEqual(v1, v2) {
				rep.VerdictContinuity = false
			}
		}
	}

	// Phase 6 — churn: advance the clock past the idle timeout and drain
	// the whole fleet through the timing wheel.
	now = now.Add(idle + idle/16)
	start = time.Now()
	evicted := m.AdvanceTo(now)
	churnSecs := time.Since(start).Seconds()
	rep.ChurnEvicted = evicted
	rep.ChurnPerSec = float64(evicted) / churnSecs

	tbl := &report.Table{
		Title:   fmt.Sprintf("Resident session fleet: %d sessions (%s, net %s)", count, rep.Shape, rep.Network),
		Headers: []string{"metric", "value"},
		Rows: [][]string{
			{"resident sessions", fmt.Sprintf("%d", rep.ResidentSessions)},
			{"heap bytes/session", fmt.Sprintf("%.0f", rep.SessionBytes)},
			{"create/s", fmt.Sprintf("%.0f", rep.CreatePerSec)},
			{"ingest/s", fmt.Sprintf("%.0f", rep.IngestPerSec)},
			{"windows/s", fmt.Sprintf("%.0f", rep.WindowsPerSec)},
			{"snapshot", fmt.Sprintf("%.2fs (%d bytes)", rep.SnapshotSec, rep.SnapshotBytes)},
			{"restore", fmt.Sprintf("%.2fs (%d sessions)", rep.RestoreSec, rep.RestoredSessions)},
			{"idle churn", fmt.Sprintf("%d evicted @ %.0f/s", rep.ChurnEvicted, rep.ChurnPerSec)},
			{"verdict continuity", fmt.Sprintf("%v", rep.VerdictContinuity)},
		},
	}
	text, err := tbl.Render()
	if err != nil {
		return err
	}
	fmt.Println(text)
	if !rep.VerdictContinuity {
		return fmt.Errorf("sessions bench: restored fleet verdicts diverged from the original")
	}

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "BENCH_stream.json"), append(raw, '\n'), 0o644)
}

func sessVerdictsEqual(a, b session.Verdict) bool {
	if a.Window != b.Window || a.Decision != b.Decision || a.Degenerate != b.Degenerate ||
		math.Float64bits(a.MeanStd) != math.Float64bits(b.MeanStd) ||
		math.Float64bits(a.Z) != math.Float64bits(b.Z) ||
		math.Float64bits(a.Score) != math.Float64bits(b.Score) ||
		len(a.Pred.Mean) != len(b.Pred.Mean) || len(a.Pred.Var) != len(b.Pred.Var) {
		return false
	}
	for i := range a.Pred.Mean {
		if math.Float64bits(a.Pred.Mean[i]) != math.Float64bits(b.Pred.Mean[i]) {
			return false
		}
	}
	for i := range a.Pred.Var {
		if math.Float64bits(a.Pred.Var[i]) != math.Float64bits(b.Pred.Var[i]) {
			return false
		}
	}
	return true
}

// heapInUse forces a collection and reports live heap bytes, the basis of
// the bytes-per-session figure.
func heapInUse() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapInuse
}
