package main

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/apdeepsense/apdeepsense/internal/nn"
)

func TestParseVector(t *testing.T) {
	v, err := parseVector("1, 2.5 ,-3")
	if err != nil {
		t.Fatalf("parseVector: %v", err)
	}
	if len(v) != 3 || v[0] != 1 || v[1] != 2.5 || v[2] != -3 {
		t.Errorf("parsed %v", v)
	}
	if _, err := parseVector("1,abc"); err == nil {
		t.Error("expected error for bad value")
	}
	if _, err := parseVector(""); err == nil {
		t.Error("expected error for empty input")
	}
	sci, err := parseVector("1e-3,2E4")
	if err != nil {
		t.Fatalf("scientific notation: %v", err)
	}
	if math.Abs(sci[0]-1e-3) > 1e-15 || sci[1] != 2e4 {
		t.Errorf("parsed %v", sci)
	}
}

func testNet(t *testing.T) *nn.Network {
	t.Helper()
	net, err := nn.New(nn.Config{
		InputDim: 2, Hidden: []int{4}, OutputDim: 2,
		Activation: nn.ActReLU, OutputActivation: nn.ActIdentity,
		KeepProb: 0.9, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestBuildEstimator(t *testing.T) {
	net := testNet(t)
	est, err := buildEstimator(net, "apdeepsense")
	if err != nil {
		t.Fatalf("apdeepsense: %v", err)
	}
	if est.Name() != "ApDeepSense" {
		t.Errorf("Name = %q", est.Name())
	}
	est, err = buildEstimator(net, "mcdrop-30")
	if err != nil {
		t.Fatalf("mcdrop-30: %v", err)
	}
	if est.Name() != "MCDrop-30" {
		t.Errorf("Name = %q", est.Name())
	}
	if _, err := buildEstimator(net, "mcdrop-x"); err == nil {
		t.Error("expected error for bad k")
	}
	if _, err := buildEstimator(net, "magic"); err == nil {
		t.Error("expected error for unknown estimator")
	}
	if _, err := buildEstimator(net, "mcdrop-1"); err == nil {
		t.Error("expected error for k < 2")
	}
}

func TestRunInferEndToEnd(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.gob")
	net := testNet(t)
	if err := net.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	out, err := os.CreateTemp(dir, "out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	if err := run([]string{"-model", path, "-input", "0.5,-1"}, out); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{"estimator: ApDeepSense", "output 0:", "output 1:", "±"} {
		if !strings.Contains(text, want) {
			t.Errorf("infer output missing %q in:\n%s", want, text)
		}
	}
	// Probability mode with MCDrop.
	if err := run([]string{"-model", path, "-input", "0.5,-1", "-estimator", "mcdrop-5", "-probs"}, out); err != nil {
		t.Fatalf("probs run: %v", err)
	}
	// Error paths.
	if err := run([]string{"-input", "1,2"}, out); err == nil {
		t.Error("expected error without -model")
	}
	if err := run([]string{"-model", path, "-input", "1"}, out); err == nil {
		t.Error("expected error for wrong input dim")
	}
}
