// Command apds-infer runs one uncertainty-aware inference: it loads a
// dropout-trained model, reads a comma-separated input vector, and prints
// the predictive mean ± standard deviation per output, with the modeled
// Intel Edison cost of the chosen estimator.
//
// Usage:
//
//	apds-infer -model models/NYCommute-relu-dropout-default.gob -input "0.1,0.2,-0.3,0.4,0.5"
//	apds-infer -model m.gob -input "..." -estimator mcdrop-30
//	echo "0.1,0.2" | apds-infer -model m.gob
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/edison"
	"github.com/apdeepsense/apdeepsense/internal/mcdrop"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("apds-infer: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("apds-infer", flag.ContinueOnError)
	modelPath := fs.String("model", "", "path to a serialized dropout network (required)")
	input := fs.String("input", "", "comma-separated input vector; read from stdin if empty")
	estimatorName := fs.String("estimator", "apdeepsense", "apdeepsense or mcdrop-K (e.g. mcdrop-30)")
	probs := fs.Bool("probs", false, "treat outputs as class logits and print probabilities")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" {
		return fmt.Errorf("-model is required")
	}

	net, err := nn.LoadFile(*modelPath)
	if err != nil {
		return err
	}

	raw := *input
	if raw == "" {
		scanner := bufio.NewScanner(os.Stdin)
		scanner.Buffer(make([]byte, 1<<20), 1<<20)
		if !scanner.Scan() {
			return fmt.Errorf("no input on stdin")
		}
		raw = scanner.Text()
	}
	x, err := parseVector(raw)
	if err != nil {
		return err
	}
	if len(x) != net.InputDim() {
		return fmt.Errorf("input has %d values, model expects %d", len(x), net.InputDim())
	}

	est, err := buildEstimator(net, *estimatorName)
	if err != nil {
		return err
	}

	device := edison.NewEdison()
	cost := est.Cost()
	fmt.Fprintf(out, "model: %s\n", net.Summary())
	fmt.Fprintf(out, "estimator: %s (modeled %s: %.1f ms, %.1f mJ)\n",
		est.Name(), device.Name, device.TimeMillis(cost), device.EnergyMillijoules(cost))

	if *probs {
		p, err := est.PredictProbs(x)
		if err != nil {
			return err
		}
		for i, v := range p {
			fmt.Fprintf(out, "class %d: %.4f\n", i, v)
		}
		return nil
	}
	g, err := est.Predict(x)
	if err != nil {
		return err
	}
	for i := range g.Mean {
		fmt.Fprintf(out, "output %d: %.6f ± %.6f\n", i, g.Mean[i], g.Std(i))
	}
	return nil
}

func buildEstimator(net *nn.Network, name string) (core.Estimator, error) {
	switch {
	case name == "apdeepsense":
		return core.NewApDeepSense(net, core.Options{}, 0)
	case strings.HasPrefix(name, "mcdrop-"):
		k, err := strconv.Atoi(strings.TrimPrefix(name, "mcdrop-"))
		if err != nil {
			return nil, fmt.Errorf("bad estimator %q: %w", name, err)
		}
		return mcdrop.New(net, k, 0, 1)
	default:
		return nil, fmt.Errorf("unknown estimator %q (apdeepsense, mcdrop-K)", name)
	}
}

func parseVector(s string) (tensor.Vector, error) {
	fields := strings.Split(s, ",")
	out := make(tensor.Vector, 0, len(fields))
	for i, f := range fields {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("value %d %q: %w", i, f, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty input vector")
	}
	return out, nil
}
