// Command apds-train trains the "pre-trained" dropout networks and the
// RDeepSense baselines for the paper's four IoT tasks and caches them on
// disk, where apds-bench (and any user of the library) can load them.
//
// Usage:
//
//	apds-train [-scale default|paper|quick] [-models DIR] [-task NAME] [-act relu|tanh] [-v]
//
// With no -task/-act it trains the full 4×2 grid.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"github.com/apdeepsense/apdeepsense/internal/experiments"
	"github.com/apdeepsense/apdeepsense/internal/nn"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("apds-train: ")
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("apds-train", flag.ContinueOnError)
	scaleName := fs.String("scale", "default", "experiment scale: quick, default, or paper")
	modelDir := fs.String("models", "models", "directory for trained model files")
	task := fs.String("task", "", "train only this task (BPEst, NYCommute, GasSen, HHAR)")
	act := fs.String("act", "", "train only this activation (relu or tanh)")
	verbose := fs.Bool("v", false, "log per-epoch training progress")
	if err := fs.Parse(args); err != nil {
		return err
	}

	scale, err := scaleByName(*scaleName)
	if err != nil {
		return err
	}
	logf := func(format string, a ...any) {
		if *verbose || !strings.HasPrefix(format, "epoch") {
			log.Printf(format, a...)
		}
	}
	runner, err := experiments.NewRunner(scale,
		experiments.WithModelDir(*modelDir),
		experiments.WithLogf(logf),
	)
	if err != nil {
		return err
	}

	tasks := experiments.TaskNames
	if *task != "" {
		tasks = []string{*task}
	}
	acts := []string{"relu", "tanh"}
	if *act != "" {
		acts = []string{*act}
	}

	start := time.Now()
	for _, t := range tasks {
		for _, a := range acts {
			activation, err := nn.ParseActivation(a)
			if err != nil {
				return err
			}
			cellStart := time.Now()
			if _, err := runner.Models(t, activation); err != nil {
				return fmt.Errorf("train %s/%s: %w", t, a, err)
			}
			log.Printf("%s/%s ready in %.1fs", t, a, time.Since(cellStart).Seconds())
		}
	}
	log.Printf("all models ready in %.1fs (cache: %s)", time.Since(start).Seconds(), *modelDir)
	return nil
}

func scaleByName(name string) (experiments.Scale, error) {
	switch name {
	case "quick":
		return experiments.QuickScale, nil
	case "default":
		return experiments.DefaultScale, nil
	case "paper":
		return experiments.PaperScale, nil
	default:
		return experiments.Scale{}, fmt.Errorf("unknown scale %q (quick, default, paper)", name)
	}
}
