package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"quick", "default", "paper"} {
		if _, err := scaleByName(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := scaleByName("mega"); err == nil {
		t.Error("expected error for unknown scale")
	}
}

// TestRunTrainsAndCaches is the CLI integration test: train one quick-scale
// cell and verify the model files land in the cache directory.
func TestRunTrainsAndCaches(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-scale", "quick", "-models", dir,
		"-task", "NYCommute", "-act", "relu",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, name := range []string{
		"NYCommute-relu-dropout-quick.gob",
		"NYCommute-relu-rds-quick.gob",
	} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing cached model %s: %v", name, err)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-scale", "warp"}); err == nil {
		t.Error("expected error for unknown scale")
	}
	if err := run([]string{"-scale", "quick", "-models", t.TempDir(), "-task", "NYCommute", "-act", "swish"}); err == nil {
		t.Error("expected error for unknown activation")
	}
	if err := run([]string{"-scale", "quick", "-models", t.TempDir(), "-task", "Mars", "-act", "relu"}); err == nil {
		t.Error("expected error for unknown task")
	}
}
